#!/usr/bin/env python3
"""Usage category 3 (section 4.4): evaluate a new microarchitecture.

Compares the central-buffered (CB) router against the input-buffered
crossbar (XB) router on a chip-to-chip 4x4 torus at equal silicon area —
Figure 7: latency and power under uniform random and broadcast traffic,
plus both routers' power breakdowns and the area-parity check.

Run:  python examples/central_buffer_study.py
"""

from repro import Orion, PowerBinding, RunProtocol, preset
from repro.core.events import EnergyAccountant
from repro.core.report import breakdown_table, comparison_table
from repro.power import FIFOBufferPower, area

UNIFORM_RATES = (0.02, 0.05, 0.08, 0.11)
BROADCAST_RATES = (0.05, 0.10, 0.15, 0.19)
SAMPLE = 600
PROTOCOL = RunProtocol(warmup_cycles=800, sample_packets=SAMPLE)


def area_check() -> None:
    print("== Section 4.4 fair-area check ==")
    xb_binding = Orion(preset("XB")).power_models()
    cb_binding = Orion(preset("CB")).power_models()
    xb_area = area.xb_router_area_um2(
        xb_binding.buffer_model, xb_binding.crossbar_model, ports=5)
    cb_area = area.cb_router_area_um2(
        cb_binding.central_model, cb_binding.buffer_model, ports=5)
    print(f"XB router area: {xb_area / 1e6:.2f} mm^2 "
          f"(16 VC x 268-flit buffers + 5x5 crossbar)")
    print(f"CB router area: {cb_area / 1e6:.2f} mm^2 "
          f"(4 x 2560-row central buffer + 64-flit input buffers)")
    print(f"ratio: {cb_area / xb_area:.3f}")


def main() -> None:
    area_check()
    source = 9  # node (1, 2)

    for workload, rates in (("uniform random", UNIFORM_RATES),
                            ("broadcast", BROADCAST_RATES)):
        sweeps = []
        for name in ("XB", "CB"):
            orion = Orion(preset(name))
            print(f"\nsweeping {name} under {workload} ...")
            if workload == "uniform random":
                sweeps.append(orion.sweep_uniform(
                    rates, PROTOCOL, label=name))
            else:
                sweeps.append(orion.sweep_broadcast(
                    source, rates, PROTOCOL, label=name))
        panel = "7(a)" if workload == "uniform random" else "7(d)"
        print(f"\n== Figure {panel}: latency under {workload} (cycles) ==")
        print(comparison_table(sweeps))
        panel = "7(b)" if workload == "uniform random" else "7(e)"
        print(f"\n== Figure {panel}: total network power under "
              f"{workload} (W) ==")
        header = f"{'rate':>8}" + "".join(f"{s.label:>10}" for s in sweeps)
        print(header)
        for i, rate in enumerate(rates):
            print(f"{rate:>8.3f}" + "".join(
                f"{s.points[i].total_power_w:>10.1f}" for s in sweeps))

    print("\n== Figure 7(c): XB power breakdown (uniform, rate 0.08) ==")
    xb = Orion(preset("XB")).run_uniform(0.08, PROTOCOL)
    print(breakdown_table(xb))

    print("\n== Figure 7(f): CB power breakdown (uniform, rate 0.08) ==")
    cb = Orion(preset("CB")).run_uniform(0.08, PROTOCOL)
    print(breakdown_table(cb))


if __name__ == "__main__":
    main()
