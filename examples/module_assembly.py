#!/usr/bin/env python3
"""Plug-and-play module assembly: the Figure 2 / section 3.3 walkthrough.

Demonstrates Orion's construction methodology on the component
framework: build the simple wormhole-router testbench out of library
modules (source, buffer, arbiter, crossbar, link, sink), hook the
component power models to the event bus, inject a head flit and watch
the exact event sequence of section 3.3 unfold — finishing with
``E_flit = E_wrt + E_arb + E_read + E_xb + E_link``.

Run:  python examples/module_assembly.py
"""

from repro import Orion
from repro.core.presets import walkthrough_router
from repro.lse import Message, PowerHooks, build_walkthrough_router
from repro.power import (
    FIFOBufferPower,
    MatrixArbiterPower,
    MatrixCrossbarPower,
    OnChipLinkPower,
)
from repro.tech import Technology


def main() -> None:
    # 1. Assemble the Figure 2 testbench: 5 ports, 4-flit buffers,
    #    32-bit flits, a 5x5 crossbar and a 4:1 arbiter per output.
    system = build_walkthrough_router(
        [(0, Message(payload=0xCAFEF00D, out_port=0))])
    system.bus.record = True
    print("modules:", ", ".join(
        f"{m.name} ({type(m).__name__})" for m in system.modules))

    # 2. Hook the power models to the event bus (Figure 1's "power
    #    simulation library").
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    xbar = MatrixCrossbarPower(tech, inputs=5, outputs=5, width_bits=32)
    hooks = PowerHooks(
        system.bus,
        buffer_model=FIFOBufferPower(tech, depth_flits=4, flit_bits=32),
        arbiter_model=MatrixArbiterPower(
            tech, requesters=4,
            xbar_control_energy=xbar.control_line_energy),
        crossbar_model=xbar,
        link_model=OnChipLinkPower(tech, length_mm=3.0, width_bits=32),
    )

    # 3. Execute and replay the walkthrough.
    system.run(6)
    print("\nevent trace (cycle, event, module):")
    for cycle, event, context in system.bus.log:
        print(f"  {cycle}  {event:<16} {context['module']}")

    (arrival, flit), = system.module("Sink").received
    print(f"\nflit 0x{flit.payload:X} ejected at cycle {arrival}")

    print("\nenergy per event:")
    for event, joules in hooks.energy_by_event.items():
        print(f"  {event:<16} {joules * 1e12:9.4f} pJ")
    print(f"  {'E_flit':<16} {hooks.total_energy * 1e12:9.4f} pJ")

    # 4. Cross-check against the closed-form facade walkthrough.
    analytic = Orion(walkthrough_router()).flit_energy_walkthrough()
    print(f"\nanalytic E_flit: {analytic['E_flit'] * 1e12:.4f} pJ "
          f"(delta {abs(analytic['E_flit'] - hooks.total_energy):.2e} J)")


if __name__ == "__main__":
    main()
