#!/usr/bin/env python3
"""Quickstart: simulate one network and read its power and performance.

Builds the paper's VC16 configuration (4x4 on-chip torus, virtual-channel
routers with 2 VCs x 8 flits, 256-bit flits at 2 GHz / 1.2 V / 0.1 um),
runs uniform random traffic, and prints latency, total power, the
per-component breakdown and the section 3.3 per-flit energy walkthrough.

Run:  python examples/quickstart.py
"""

from repro import Orion, RunProtocol, preset
from repro.core.report import breakdown_table, format_power


def main() -> None:
    config = preset("VC16")
    orion = Orion(config)

    print("== Configuration ==")
    print(f"topology:   {config.width}x{config.height} {config.topology}")
    print(f"router:     {config.router.kind}, {config.router.num_vcs} VCs x "
          f"{config.router.buffer_depth} flits, "
          f"{config.router.flit_bits}-bit flits")
    print(f"technology: {config.tech.feature_size_um} um, "
          f"{config.tech.vdd} V, {config.tech.frequency_hz / 1e9:g} GHz")

    print("\n== Section 3.3 walkthrough: energy of one flit, one hop ==")
    for name, joules in orion.flit_energy_walkthrough().items():
        print(f"  {name:<8} {joules * 1e12:10.3f} pJ")

    rate = 0.05
    print(f"\n== Uniform random traffic at {rate} packets/cycle/node ==")
    result = orion.run_uniform(rate, RunProtocol(warmup_cycles=1000,
                                                 sample_packets=2000))
    print(f"sample packets:   {result.sample_packets}")
    print(f"average latency:  {result.avg_latency:.2f} cycles")
    print(f"99th percentile:  {result.latency.percentile(99):.0f} cycles")
    print(f"throughput:       {result.throughput_flits_per_cycle:.2f} "
          f"flits/cycle network-wide")
    print(f"total power:      {format_power(result.total_power_w)}")
    print("\nper-component average power:")
    print(breakdown_table(result))


if __name__ == "__main__":
    main()
