#!/usr/bin/env python3
"""Usage category 1 (section 4.2): trade off router configurations.

Sweeps the paper's four on-chip configurations — WH64, VC16, VC64,
VC128 — over packet injection rates under uniform random traffic and
prints the latency and power curves of Figures 5(a)/5(b) plus the VC64
power breakdown of Figure 5(c).

Run:  python examples/wormhole_vs_vc.py [--full]

--full uses the paper's 10,000-packet samples (slow); the default uses
1,000-packet samples, which preserves every trend.
"""

import argparse

from repro import Orion, RunProtocol, preset
from repro.core.report import breakdown_table, comparison_table

CONFIGS = ("WH64", "VC16", "VC64", "VC128")
RATES = (0.02, 0.06, 0.10, 0.13, 0.15, 0.17)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale 10,000-packet samples")
    args = parser.parse_args()
    sample = 10_000 if args.full else 1_000
    protocol = RunProtocol(warmup_cycles=1000, sample_packets=sample)

    sweeps = []
    for name in CONFIGS:
        orion = Orion(preset(name))
        print(f"sweeping {name} ...")
        sweeps.append(orion.sweep_uniform(RATES, protocol, label=name))

    print("\n== Figure 5(a): average packet latency (cycles) ==")
    print(comparison_table(sweeps))
    for sweep in sweeps:
        sat = sweep.saturation_rate()
        print(f"{sweep.label}: saturation at "
              f"{'>' + str(RATES[-1]) if sat is None else f'{sat:.3f}'} "
              f"packets/cycle/node")

    print("\n== Figure 5(b): total network power (W) ==")
    header = f"{'rate':>8}" + "".join(f"{s.label:>10}" for s in sweeps)
    print(header)
    for i, rate in enumerate(RATES):
        row = f"{rate:>8.3f}" + "".join(
            f"{s.points[i].total_power_w:>10.2f}" for s in sweeps)
        print(row)

    print("\n== Figure 5(c): VC64 average power breakdown at rate 0.10 ==")
    vc64 = Orion(preset("VC64")).run_uniform(0.10, protocol)
    print(breakdown_table(vc64))


if __name__ == "__main__":
    main()
