#!/usr/bin/env python3
"""Composing a multi-router fabric from library modules.

The paper's claim: "a relatively small library of modules is able to
represent an extensive range of architecture choices" (section 2.2).
This example composes the same six building blocks used in the Figure 2
walkthrough into a 6-router unidirectional ring, runs all-pairs
source-routed traffic, and charges power through event hooks — no
hand-written router anywhere.

Run:  python examples/ring_fabric.py
"""

from collections import Counter

from repro.core import events as ev
from repro.lse import Message, PowerHooks, build_ring_network, ring_route
from repro.power import (
    FIFOBufferPower,
    MatrixArbiterPower,
    MatrixCrossbarPower,
    OnChipLinkPower,
)
from repro.tech import Technology

SIZE = 6


def main() -> None:
    schedules = [[] for _ in range(SIZE)]
    expected = 0
    for src in range(SIZE):
        for dst in range(SIZE):
            if src != dst:
                schedules[src].append((src, Message(
                    payload=src * 100 + dst,
                    route=ring_route(src, dst, SIZE))))
                expected += 1

    system = build_ring_network(schedules)
    system.bus.record = True

    tech = Technology(0.1, vdd=1.2, frequency_hz=1e9)
    xbar = MatrixCrossbarPower(tech, inputs=2, outputs=2, width_bits=32)
    hooks = PowerHooks(
        system.bus,
        buffer_model=FIFOBufferPower(tech, depth_flits=8, flit_bits=32),
        arbiter_model=MatrixArbiterPower(
            tech, requesters=2,
            xbar_control_energy=xbar.control_line_energy),
        crossbar_model=xbar,
        link_model=OnChipLinkPower(tech, length_mm=2.0, width_bits=32),
    )

    cycles = 0
    while cycles < 200:
        system.step()
        cycles += 1
        delivered = sum(len(system.module(f"R{r}.Sink").received)
                        for r in range(SIZE))
        if delivered == expected:
            break

    print(f"ring of {SIZE} routers, {expected} source-routed messages, "
          f"all delivered in {cycles} cycles")
    counts = Counter(name for _, name, _ in system.bus.log)
    print("\nevent totals:")
    for name, count in sorted(counts.items()):
        print(f"  {name:<16} {count}")
    visits = counts[ev.BUFFER_WRITE]
    hops = counts[ev.LINK_TRAVERSAL]
    print(f"\nrouter visits {visits} = hops {hops} + messages "
          f"{expected}  ({visits == hops + expected})")
    print("\nenergy per event class:")
    for name, joules in sorted(hooks.energy_by_event.items()):
        print(f"  {name:<16} {joules * 1e12:10.3f} pJ")
    print(f"  {'total':<16} {hooks.total_energy * 1e12:10.3f} pJ")


if __name__ == "__main__":
    main()
