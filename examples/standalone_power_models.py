#!/usr/bin/env python3
"""The power models as a standalone analysis tool (section 3.2).

Orion's release plan lets the component power models be used
"independently from the simulator, either as a separate power analysis
tool, or as a plug-in to other network simulators".  This example uses
them directly — no network, no simulation:

* per-operation energies of each building block across process nodes;
* buffer energy versus geometry (the SRAM scaling behind Figure 5);
* matrix versus multiplexer-tree crossbars;
* the three arbiter types.

Run:  python examples/standalone_power_models.py
"""

from repro.power import (
    FIFOBufferPower,
    MatrixArbiterPower,
    MatrixCrossbarPower,
    MuxTreeCrossbarPower,
    OnChipLinkPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.tech import Technology


def pj(joules: float) -> str:
    return f"{joules * 1e12:9.3f} pJ"


def technology_scaling() -> None:
    print("== Technology scaling: 64-flit x 256-bit buffer ==")
    print(f"{'node (um)':>10} {'Vdd (V)':>8} {'E_read':>12} {'E_write':>12}")
    for feature in (0.35, 0.25, 0.18, 0.13, 0.10, 0.07):
        tech = Technology(feature)
        buf = FIFOBufferPower(tech, depth_flits=64, flit_bits=256)
        print(f"{feature:>10} {tech.vdd:>8.2f} {pj(buf.read_energy()):>12} "
              f"{pj(buf.write_energy()):>12}")


def buffer_geometry() -> None:
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    print("\n== Buffer geometry at 0.1 um (per-port array, 256-bit) ==")
    print(f"{'depth':>6} {'E_read':>12} {'E_write':>12} "
          f"{'wordline um':>12} {'bitline um':>12}")
    for depth in (4, 16, 64, 128, 512):
        buf = FIFOBufferPower(tech, depth_flits=depth, flit_bits=256)
        print(f"{depth:>6} {pj(buf.read_energy()):>12} "
              f"{pj(buf.write_energy()):>12} "
              f"{buf.wordline_length_um:>12.1f} "
              f"{buf.bitline_length_um:>12.1f}")


def crossbar_styles() -> None:
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    print("\n== Crossbar implementations (5x5) ==")
    print(f"{'width':>6} {'matrix':>12} {'mux tree':>12}")
    for width in (32, 64, 128, 256):
        mx = MatrixCrossbarPower(tech, 5, 5, width)
        mt = MuxTreeCrossbarPower(tech, 5, 5, width)
        print(f"{width:>6} {pj(mx.traversal_energy()):>12} "
              f"{pj(mt.traversal_energy()):>12}")


def arbiter_types() -> None:
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    print("\n== Arbiter types (energy per arbitration, all requesting) ==")
    print(f"{'requesters':>10} {'matrix':>12} {'round-robin':>12} "
          f"{'queuing':>12}")
    for r in (2, 4, 8, 16):
        row = [f"{r:>10}"]
        for cls in (MatrixArbiterPower, RoundRobinArbiterPower,
                    QueuingArbiterPower):
            arb = cls(tech, requesters=r)
            row.append(pj(arb.arbitration_energy(r)).rjust(12))
        print(" ".join(row))


def link_energy() -> None:
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    print("\n== On-chip link energy per flit (256-bit) ==")
    print(f"{'length mm':>10} {'E_link':>12}")
    for mm in (1.5, 3.0, 6.0, 12.0):
        link = OnChipLinkPower(tech, length_mm=mm, width_bits=256)
        print(f"{mm:>10} {pj(link.traversal_energy()):>12}")


if __name__ == "__main__":
    technology_scaling()
    buffer_geometry()
    crossbar_styles()
    arbiter_types()
    link_energy()
