#!/usr/bin/env python3
"""Beyond the paper: scaling the network and checking the clock.

Uses the library's generality knobs: an 8x8 torus with dateline VC
classes (required for deadlock freedom at radix > 4), a mesh of the
same size, the speculative VC router, and the Peh-Dally delay model's
verdict on what clock each router supports.

Run:  python examples/scaling_study.py
"""

from repro import Orion, RunProtocol, preset
from repro.core.config import NetworkConfig, RouterConfig
from repro.core.presets import ON_CHIP_LINK, ON_CHIP_TECH
from repro.delay import RouterDelayModel

SAMPLE = 400
RATE = 0.03
PROTOCOL = RunProtocol(warmup_cycles=600, sample_packets=SAMPLE)


def config(topology: str, width: int, kind: str = "vc") -> NetworkConfig:
    router = RouterConfig(
        kind=kind, flit_bits=128, buffer_depth=4, num_vcs=4,
        vc_class_mode="dateline" if topology == "torus" else "none",
    )
    return NetworkConfig(
        topology=topology, width=width, height=width, router=router,
        link=ON_CHIP_LINK, tech=ON_CHIP_TECH, packet_length_flits=5,
        tie_break="even",
    )


def main() -> None:
    print("== Topology/size scaling (VC router, 4 VCs x 4 flits, "
          "128-bit) ==")
    print(f"{'network':<16} {'latency':>9} {'power':>9} {'W/node':>8}")
    for topology, width in (("torus", 4), ("torus", 8), ("mesh", 8)):
        cfg = config(topology, width)
        result = Orion(cfg).run_uniform(RATE, PROTOCOL)
        nodes = cfg.num_nodes
        print(f"{topology + ' ' + str(width) + 'x' + str(width):<16} "
              f"{result.avg_latency:>9.2f} {result.total_power_w:>8.2f}W "
              f"{result.total_power_w / nodes:>7.3f}W")

    print("\n== Speculative router on the 8x8 torus ==")
    for kind in ("vc", "speculative_vc"):
        cfg = config("torus", 8, kind=kind)
        result = Orion(cfg).run_uniform(RATE, PROTOCOL)
        print(f"{kind:<16} latency {result.avg_latency:6.2f}  power "
              f"{result.total_power_w:6.2f} W")

    print("\n== Delay-model clock check (Peh-Dally) ==")
    for name in ("WH64", "VC16", "VC64", "CB", "XB"):
        cfg = preset(name)
        model = RouterDelayModel(cfg)
        target = cfg.tech.frequency_hz / 1e9
        verdict = "fits" if model.fits_frequency() else "misses"
        print(f"{name:<6} {model.pipeline_depth}-stage, max "
              f"{model.max_frequency_hz() / 1e9:5.2f} GHz -> {verdict} "
              f"the configured {target:.1f} GHz clock")


if __name__ == "__main__":
    main()
