#!/usr/bin/env python3
"""Evaluating a power-efficiency technique: bus-invert link coding.

The paper positions Orion as the platform for exactly this kind of study
(usage category 3, and its conclusion: "enabling research in
power-efficient hardware ... techniques").  Here we bolt a new link
power model — bus-invert coding, which sends each flit or its complement
(whichever toggles fewer wires) plus one invert wire — onto the same
network and measure the link-energy saving under payload-tracked
simulation.

Run:  python examples/bus_invert_links.py
"""

from repro import Orion, RunProtocol, preset
from repro.core import events as ev
from repro.core.config import LinkConfig
from repro.power import BusInvertLinkPower, OnChipLinkPower
from repro.tech import Technology

SAMPLE = 800
RATE = 0.08
PROTOCOL = RunProtocol(warmup_cycles=800, sample_packets=SAMPLE)


def model_level_comparison() -> None:
    print("== Model level: expected switching per 256-bit traversal ==")
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    plain = OnChipLinkPower(tech, length_mm=3.0, width_bits=256)
    coded = BusInvertLinkPower(tech, length_mm=3.0, width_bits=256)
    print(f"uncoded:    {128.0:7.2f} wires, "
          f"{plain.traversal_energy() * 1e12:7.2f} pJ")
    print(f"bus-invert: {coded.expected_coded_switches:7.2f} wires, "
          f"{coded.traversal_energy() * 1e12:7.2f} pJ  "
          f"(random data: savings scale with sqrt(W))")
    # The technique shines on strongly anti-correlated consecutive data:
    worst = plain.bit_energy * 256
    coded_worst = coded.traversal_energy(0, 2 ** 256 - 1)
    print(f"complementary consecutive flits: uncoded "
          f"{worst * 1e12:.2f} pJ, coded {coded_worst * 1e12:.2f} pJ")


def network_level_comparison() -> None:
    print("\n== Network level: payload-tracked simulation (VC16) ==")
    base = preset("VC16").with_(activity_mode="data")
    coded = base.with_(link=LinkConfig(kind="on_chip", length_mm=3.0,
                                       encoding="bus_invert"))
    results = {}
    for label, cfg in (("uncoded", base), ("bus-invert", coded)):
        results[label] = Orion(cfg).run_uniform(RATE, PROTOCOL)
    print(f"{'':<12} {'link power':>12} {'total power':>12} "
          f"{'latency':>9}")
    for label, result in results.items():
        link_w = result.power_breakdown_w()[ev.LINK]
        print(f"{label:<12} {link_w:>10.3f} W {result.total_power_w:>10.3f} W "
              f"{result.avg_latency:>9.2f}")
    saving = 1 - (results["bus-invert"].power_breakdown_w()[ev.LINK]
                  / results["uncoded"].power_breakdown_w()[ev.LINK])
    print(f"link energy saving under random payloads: {saving:.1%}")
    print("(random data is bus-invert's worst case; correlated real "
          "traces save far more)")


if __name__ == "__main__":
    model_level_comparison()
    network_level_comparison()
