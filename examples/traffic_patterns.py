#!/usr/bin/env python3
"""Usage category 2 (section 4.3): explore workload impact.

Fixes the network (4x4 on-chip torus, VC routers with 2 VCs x 8 flits)
and compares the power spatial distribution under:

* uniform random traffic (each node at 0.2/16 packets/cycle), and
* broadcast traffic (node (1,2) alone at 0.2 packets/cycle),

reproducing Figure 6, then goes beyond the paper with transpose and
hotspot patterns at the same total injection.

Run:  python examples/traffic_patterns.py
"""

from repro import Orion, RunProtocol, preset
from repro.core.report import spatial_table
from repro.sim.topology import Torus
from repro.sim.traffic import HotspotTraffic, TransposeTraffic

TOTAL_RATE = 0.2
SAMPLE = 1_000
PROTOCOL = RunProtocol(warmup_cycles=1000, sample_packets=SAMPLE)


def show(title, result):
    print(f"\n== {title} ==")
    print(spatial_table(result))
    powers = result.node_power_w()
    mean = sum(powers) / len(powers)
    print(f"mean node power {mean * 1e3:.2f} mW, "
          f"max/mean {max(powers) / mean:.2f}, "
          f"min/mean {min(powers) / mean:.2f}")


def main() -> None:
    # Balanced ("even") tie-breaks keep the torus symmetric, so spatial
    # structure reflects the workload rather than the routing function.
    config = preset("VC16").with_(tie_break="even")
    orion = Orion(config)
    topo = Torus(config.width, config.height)
    source = topo.node_at(1, 2)

    uniform = orion.run_uniform(TOTAL_RATE / 16, PROTOCOL)
    show("Figure 6(a): uniform random, 0.2/16 per node", uniform)

    broadcast = orion.run_broadcast(source, TOTAL_RATE, PROTOCOL)
    show("Figure 6(b): broadcast from (1,2) at 0.2", broadcast)
    powers = broadcast.node_power_w()
    by_distance = {}
    for node, power in enumerate(powers):
        d = topo.manhattan_distance(source, node)
        by_distance.setdefault(d, []).append(power)
    print("\npower versus Manhattan distance from the source:")
    for d in sorted(by_distance):
        mean = sum(by_distance[d]) / len(by_distance[d])
        print(f"  distance {d}: {mean * 1e3:8.2f} mW "
              f"({len(by_distance[d])} nodes)")

    transpose = orion.run(
        TransposeTraffic(topo, TOTAL_RATE / 16, seed=1), PROTOCOL)
    show("Beyond the paper: transpose traffic", transpose)

    hotspot = orion.run(
        HotspotTraffic(topo, TOTAL_RATE / 16, hotspot=source,
                       hot_fraction=0.5, seed=1), PROTOCOL)
    show("Beyond the paper: hotspot traffic (50% to (1,2))", hotspot)


if __name__ == "__main__":
    main()
