"""The windowed telemetry recorder and its data model.

:class:`TelemetryRecorder` is driven by the simulation engine: once at
the end of warm-up (:meth:`~TelemetryRecorder.begin`), once per
measured cycle (:meth:`~TelemetryRecorder.on_cycle` — a single integer
comparison until a window boundary is crossed), and once at run end
(:meth:`~TelemetryRecorder.finalize`, after the power binding deposits
its traffic-insensitive energy).  At each window boundary it reads the
binding's cumulative per-node energy/event view and the network's
per-node injection/ejection counters, and stores the deltas since the
previous boundary — so the cost is O(nodes) *per window*, not per
cycle, and summed windows telescope back to the run-end accountant
totals exactly (up to float re-summation).

Buffer occupancy is sampled at window boundaries (the routers' O(1)
maintained counters), so the per-router watermark is a boundary-sampled
peak, not a per-cycle one — per-cycle peaks are the
:class:`repro.sim.monitor.NetworkMonitor`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import events as ev

#: Window size the CLI uses when telemetry output is requested without
#: an explicit ``--telemetry-window``.
DEFAULT_WINDOW = 100

#: Engine phases profiled into :attr:`TelemetryRecord.spans_s`.  The
#: router-step span covers the whole network step (arrival/channel
#: drain, traversal, allocation and injection are fused per cycle).
SPAN_NAMES = ("inject", "router_step", "observe", "finalize")


@dataclass
class TelemetryWindow:
    """One window's deltas: per-router × per-component/per-event.

    ``energy_j`` and ``events`` are column-major — component (or event
    kind) to a per-node list — and carry only columns with at least one
    non-zero entry.  ``occupancy`` is the flits buffered per router at
    the instant the window closed.
    """

    index: int
    #: Absolute simulation cycles spanned: [cycle_start, cycle_end).
    cycle_start: int
    cycle_end: int
    energy_j: Dict[str, List[float]] = field(default_factory=dict)
    events: Dict[str, List[int]] = field(default_factory=dict)
    injected: List[int] = field(default_factory=list)
    ejected: List[int] = field(default_factory=list)
    occupancy: List[int] = field(default_factory=list)
    #: Per-node flits dropped / packets misrouted in this window
    #: (fault-injection runs; empty lists on healthy fabrics predate
    #: the columns and read as zero).
    dropped: List[int] = field(default_factory=list)
    misrouted: List[int] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.cycle_end - self.cycle_start

    def total_energy_j(self) -> float:
        return sum(sum(col) for col in self.energy_j.values())

    def node_energy_j(self) -> List[float]:
        """Per-node energy (J) in this window."""
        n = len(self.occupancy)
        out = [0.0] * n
        for col in self.energy_j.values():
            for node, energy in enumerate(col):
                out[node] += energy
        return out


@dataclass
class TelemetryRecord:
    """A recorded run: window series plus metadata and phase spans."""

    window: int
    num_nodes: int
    width: int
    height: int
    frequency_hz: float
    warmup_cycles: int
    kernel: str = "sparse"
    router_kind: str = ""
    activity_mode: str = "average"
    windows: List[TelemetryWindow] = field(default_factory=list)
    #: Wall-clock seconds per engine phase (see ``SPAN_NAMES``).
    spans_s: Dict[str, float] = field(default_factory=dict)

    # --- aggregate queries (must reproduce the run-end accounting) ----------

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    @property
    def measured_cycles(self) -> int:
        """Cycles covered by the recorded windows."""
        if not self.windows:
            return 0
        return self.windows[-1].cycle_end - self.windows[0].cycle_start

    def component_energy_totals(self) -> Dict[str, float]:
        """Network-wide energy (J) per component, summed over windows —
        the Figure 5c data, reproducing the accountant's breakdown."""
        totals = dict.fromkeys(ev.COMPONENTS, 0.0)
        for window in self.windows:
            for component, col in window.energy_j.items():
                totals[component] += sum(col)
        return totals

    def node_energy_totals(self) -> List[float]:
        """Per-node energy (J) summed over windows — the Figure 6 data,
        reproducing the accountant's spatial map."""
        totals = [0.0] * self.num_nodes
        for window in self.windows:
            for col in window.energy_j.values():
                for node, energy in enumerate(col):
                    totals[node] += energy
        return totals

    def event_totals(self) -> Dict[str, int]:
        """Network-wide event counts summed over windows."""
        totals = dict.fromkeys(ev.EVENT_TYPES, 0)
        for window in self.windows:
            for event, col in window.events.items():
                totals[event] += sum(col)
        return totals

    def total_energy_j(self) -> float:
        return sum(self.component_energy_totals().values())

    def power_breakdown_w(self) -> Dict[str, float]:
        """Average power per component (W) over the measured window."""
        cycles = self.measured_cycles
        if cycles == 0:
            return dict.fromkeys(ev.COMPONENTS, 0.0)
        scale = self.frequency_hz / cycles
        return {component: energy * scale for component, energy
                in self.component_energy_totals().items()}

    def total_power_w(self) -> float:
        return sum(self.power_breakdown_w().values())

    def node_power_w(self) -> List[float]:
        """Average power per node (W) over the measured window."""
        cycles = self.measured_cycles
        if cycles == 0:
            return [0.0] * self.num_nodes
        scale = self.frequency_hz / cycles
        return [energy * scale for energy in self.node_energy_totals()]

    # --- time series ---------------------------------------------------------

    def window_power_w(self) -> List[float]:
        """Total network power (W) per window — the time series."""
        out = []
        for window in self.windows:
            cycles = window.cycles
            out.append(window.total_energy_j() * self.frequency_hz / cycles
                       if cycles else 0.0)
        return out

    def occupancy_peaks(self) -> List[int]:
        """Per-router peak buffered flits across window-boundary
        samples (a boundary watermark, not a per-cycle peak)."""
        peaks = [0] * self.num_nodes
        for window in self.windows:
            for node, buffered in enumerate(window.occupancy):
                if buffered > peaks[node]:
                    peaks[node] = buffered
        return peaks

    def injected_totals(self) -> List[int]:
        """Per-node flits injected over the measured window."""
        totals = [0] * self.num_nodes
        for window in self.windows:
            for node, count in enumerate(window.injected):
                totals[node] += count
        return totals

    def ejected_totals(self) -> List[int]:
        """Per-node flits ejected over the measured window."""
        totals = [0] * self.num_nodes
        for window in self.windows:
            for node, count in enumerate(window.ejected):
                totals[node] += count
        return totals

    def dropped_totals(self) -> List[int]:
        """Per-node flits dropped (fault policy) over the measured
        window."""
        totals = [0] * self.num_nodes
        for window in self.windows:
            for node, count in enumerate(window.dropped):
                totals[node] += count
        return totals

    def misrouted_totals(self) -> List[int]:
        """Per-node packets misrouted around faults over the measured
        window."""
        totals = [0] * self.num_nodes
        for window in self.windows:
            for node, count in enumerate(window.misrouted):
                totals[node] += count
        return totals


class TelemetryRecorder:
    """Accumulates a :class:`TelemetryRecord` for one simulation run."""

    def __init__(self, network, binding, window: int) -> None:
        if window < 1:
            raise ValueError(f"telemetry window must be >= 1, got {window}")
        self.network = network
        self.binding = binding
        self.window = window
        config = network.config
        self.record = TelemetryRecord(
            window=window,
            num_nodes=config.num_nodes,
            width=config.width,
            height=config.height,
            frequency_hz=config.tech.frequency_hz,
            warmup_cycles=0,
            kernel=network.kernel,
            router_kind=config.router.kind,
            activity_mode=config.activity_mode,
        )
        self.spans = dict.fromkeys(SPAN_NAMES, 0.0)
        self._started = False
        self._window_start = 0
        self._prev_energy: Optional[List[Dict[str, float]]] = None
        self._prev_counts: Optional[List[Dict[str, int]]] = None
        self._prev_injected: List[int] = []
        self._prev_ejected: List[int] = []
        self._prev_dropped: List[int] = []
        self._prev_misrouted: List[int] = []

    # --- engine hooks --------------------------------------------------------

    def begin(self, cycle: int) -> None:
        """Start recording at the end of warm-up (after the binding
        reset, so the first window's deltas exclude warm-up energy)."""
        self._started = True
        self._window_start = cycle
        self.record.warmup_cycles = cycle
        self._prev_energy, self._prev_counts = \
            self.binding.telemetry_view()
        self._prev_injected = list(self.network.node_flits_injected)
        self._prev_ejected = list(self.network.node_flits_ejected)
        self._prev_dropped = list(self.network.node_flits_dropped)
        self._prev_misrouted = list(self.network.node_packets_misrouted)

    def on_cycle(self, now: int) -> None:
        """Called once per measured cycle, after the network stepped;
        ``now`` is the count of completed cycles."""
        if now - self._window_start >= self.window:
            self._close(now)

    def finalize(self, total_cycles: int) -> None:
        """Close the residual window after the binding's finalization
        deposits, so constant energy (idle links, leakage, clock) lands
        in the series and summed windows equal the run totals."""
        if not self._started:
            raise RuntimeError("telemetry recorder never started "
                               "(begin() was not called)")
        if total_cycles > self._window_start or not self.record.windows:
            self._close(total_cycles)
            return
        # The last window closed exactly at run end: fold the
        # finalization deposits into it rather than emitting a
        # zero-cycle window.
        window = self.record.windows[-1]
        delta = self._delta(total_cycles, total_cycles)
        for component, col in delta.energy_j.items():
            have = window.energy_j.get(component)
            if have is None:
                window.energy_j[component] = col
            else:
                for node, energy in enumerate(col):
                    have[node] += energy
        for event, col in delta.events.items():
            have = window.events.get(event)
            if have is None:
                window.events[event] = col
            else:
                for node, count in enumerate(col):
                    have[node] += count
        self.record.spans_s = dict(self.spans)

    def add_span(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time into one engine phase span and
        publish the spans onto the record."""
        self.spans[name] = self.spans.get(name, 0.0) + seconds
        self.record.spans_s = dict(self.spans)

    # --- window assembly -----------------------------------------------------

    def _delta(self, start: int, end: int) -> TelemetryWindow:
        """Snapshot the cumulative views and diff against the previous
        boundary; advances the previous-snapshot state."""
        network = self.network
        n = self.record.num_nodes
        window = TelemetryWindow(
            index=len(self.record.windows),
            cycle_start=start,
            cycle_end=end,
        )
        energy, counts = self.binding.telemetry_view()
        if energy is not None:
            prev = self._prev_energy
            for component in ev.COMPONENTS:
                col = [energy[node].get(component, 0.0)
                       - prev[node].get(component, 0.0)
                       for node in range(n)]
                if any(col):
                    window.energy_j[component] = col
            self._prev_energy = energy
        if counts is not None:
            prev = self._prev_counts
            for event in ev.EVENT_TYPES:
                col = [counts[node].get(event, 0)
                       - prev[node].get(event, 0)
                       for node in range(n)]
                if any(col):
                    window.events[event] = col
            self._prev_counts = counts
        injected = network.node_flits_injected
        ejected = network.node_flits_ejected
        window.injected = [injected[node] - self._prev_injected[node]
                           for node in range(n)]
        window.ejected = [ejected[node] - self._prev_ejected[node]
                          for node in range(n)]
        self._prev_injected = list(injected)
        self._prev_ejected = list(ejected)
        dropped = network.node_flits_dropped
        misrouted = network.node_packets_misrouted
        window.dropped = [dropped[node] - self._prev_dropped[node]
                          for node in range(n)]
        window.misrouted = [misrouted[node] - self._prev_misrouted[node]
                            for node in range(n)]
        self._prev_dropped = list(dropped)
        self._prev_misrouted = list(misrouted)
        window.occupancy = [router._buffered
                            for router in network.routers]
        return window

    def _close(self, now: int) -> None:
        self.record.windows.append(self._delta(self._window_start, now))
        self._window_start = now
        self.record.spans_s = dict(self.spans)
