"""Structured export of telemetry records: JSONL and CSV.

The JSONL layout is stream-friendly — one JSON object per line:

* a ``header`` line with run metadata (grid shape, frequency, window
  size, kernel, schema version);
* one ``window`` line per window, column-major (component/event kind to
  a per-node array);
* a ``footer`` line with the engine phase spans.

Python's JSON float serialisation round-trips exactly, so a record read
back from JSONL reproduces the run-end energy accounting bit-for-bit.
The CSV form is long-format (one row per window × node × component)
for spreadsheets and plotting libraries.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from repro.telemetry.recorder import TelemetryRecord, TelemetryWindow

#: Bump when the JSONL layout changes; readers reject other versions.
#: 2: window lines carry ``dropped``/``misrouted`` fault columns
#: (schema-1 files still read back, the columns defaulting to zero).
JSONL_SCHEMA = 2

#: Schema versions :func:`telemetry_from_jsonl` accepts.
_READABLE_SCHEMAS = (1, 2)

_HEADER_FIELDS = ("window", "num_nodes", "width", "height",
                  "frequency_hz", "warmup_cycles", "kernel",
                  "router_kind", "activity_mode")


def telemetry_to_jsonl(record: TelemetryRecord, path: str) -> None:
    """Write a record as JSONL (header, one line per window, footer)."""
    with open(path, "w") as f:
        header = {"type": "header", "schema": JSONL_SCHEMA}
        header.update({name: getattr(record, name)
                       for name in _HEADER_FIELDS})
        f.write(json.dumps(header) + "\n")
        for window in record.windows:
            f.write(json.dumps({
                "type": "window",
                "index": window.index,
                "cycle_start": window.cycle_start,
                "cycle_end": window.cycle_end,
                "energy_j": window.energy_j,
                "events": window.events,
                "injected": window.injected,
                "ejected": window.ejected,
                "occupancy": window.occupancy,
                "dropped": window.dropped,
                "misrouted": window.misrouted,
            }) + "\n")
        f.write(json.dumps({"type": "footer",
                            "spans_s": record.spans_s}) + "\n")


def telemetry_from_jsonl(path: str) -> TelemetryRecord:
    """Read a record back from JSONL (see :func:`telemetry_to_jsonl`)."""
    record = None
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            kind = entry.get("type")
            if kind == "header":
                schema = entry.get("schema")
                if schema not in _READABLE_SCHEMAS:
                    raise ValueError(
                        f"{path}: unsupported telemetry schema {schema!r} "
                        f"(expected one of {_READABLE_SCHEMAS})"
                    )
                record = TelemetryRecord(
                    **{name: entry[name] for name in _HEADER_FIELDS})
            elif kind == "window":
                if record is None:
                    raise ValueError(
                        f"{path}:{line_no}: window before header")
                record.windows.append(TelemetryWindow(
                    index=entry["index"],
                    cycle_start=entry["cycle_start"],
                    cycle_end=entry["cycle_end"],
                    energy_j=entry["energy_j"],
                    events=entry["events"],
                    injected=entry["injected"],
                    ejected=entry["ejected"],
                    occupancy=entry["occupancy"],
                    dropped=entry.get("dropped")
                    or [0] * len(entry["injected"]),
                    misrouted=entry.get("misrouted")
                    or [0] * len(entry["injected"]),
                ))
            elif kind == "footer":
                if record is None:
                    raise ValueError(
                        f"{path}:{line_no}: footer before header")
                record.spans_s = dict(entry.get("spans_s", {}))
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown entry type {kind!r}")
    if record is None:
        raise ValueError(f"{path}: no telemetry header found")
    return record


def telemetry_rows(record: TelemetryRecord) -> List[Dict]:
    """Long-format rows: one per window × node × active component.

    The ``events`` column counts the event occurrences charged to that
    component at that node within the window (via ``EVENT_COMPONENT``).
    """
    from repro.core.events import EVENT_COMPONENT

    rows = []
    for window in record.windows:
        events: Dict[tuple, int] = {}
        for event, col in window.events.items():
            component = EVENT_COMPONENT[event]
            for node, count in enumerate(col):
                if count:
                    key = (node, component)
                    events[key] = events.get(key, 0) + count
        for component, col in window.energy_j.items():
            for node, energy in enumerate(col):
                if not energy:
                    continue
                rows.append({
                    "window": window.index,
                    "cycle_start": window.cycle_start,
                    "cycle_end": window.cycle_end,
                    "node": node,
                    "x": node % record.width,
                    "y": node // record.width,
                    "component": component,
                    "energy_j": energy,
                    "events": events.get((node, component), 0),
                    "injected": window.injected[node],
                    "ejected": window.ejected[node],
                    "occupancy": window.occupancy[node],
                    "dropped": window.dropped[node]
                    if window.dropped else 0,
                    "misrouted": window.misrouted[node]
                    if window.misrouted else 0,
                })
    return rows


def telemetry_to_csv(record: TelemetryRecord, path: str) -> None:
    """Write the long-format window table as CSV."""
    rows = telemetry_rows(record)
    fieldnames = ["window", "cycle_start", "cycle_end", "node", "x", "y",
                  "component", "energy_j", "events", "injected",
                  "ejected", "occupancy", "dropped", "misrouted"]
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
