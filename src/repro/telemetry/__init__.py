"""Windowed telemetry: low-overhead energy/event time series.

The paper's headline artifacts — the per-component power breakdown
(Figure 5c) and the spatial energy map (Figure 6) — are observability
products: they need per-router, per-component event and energy
accounting over *time*, not just end-of-run totals.  This package adds
that layer without reintroducing the dense per-cycle scans the sparse
kernel was built to avoid:

* :class:`TelemetryRecorder` rides the existing counter-based
  accounting — every ``window`` cycles it snapshots the power binding's
  cumulative per-node energy/event view (integer counter reads for the
  sparse kernel's :class:`~repro.core.power_binding.CounterBinding`,
  accountant reads otherwise), per-router injection/ejection counts and
  buffer occupancy, and stores the per-window *deltas*;
* :class:`TelemetryRecord` is the picklable result: per-router ×
  per-component energy/event time series plus wall-clock profiling
  spans for the engine's phases.  Summed windows telescope back to the
  run-end totals exactly (up to float re-summation);
* :mod:`repro.telemetry.io` round-trips records through JSONL (one
  window per line) and flat CSV;
* :mod:`repro.telemetry.report` renders the Figure 5c-style component
  breakdown and Figure 6-style spatial map from a record — the
  ``repro report`` CLI command's engine.

Enable with ``RunProtocol(telemetry_window=N)`` (off by default)::

    from repro import Orion, RunProtocol, preset

    result = Orion(preset("VC16")).run_uniform(
        0.05, RunProtocol(telemetry_window=100))
    record = result.telemetry
    print(record.num_windows, record.total_energy_j())
"""

from repro.telemetry.recorder import (
    DEFAULT_WINDOW,
    TelemetryRecord,
    TelemetryRecorder,
    TelemetryWindow,
)
from repro.telemetry.io import (
    telemetry_from_jsonl,
    telemetry_to_csv,
    telemetry_to_jsonl,
)
from repro.telemetry.report import telemetry_report, telemetry_summary

__all__ = [
    "DEFAULT_WINDOW",
    "TelemetryRecord",
    "TelemetryRecorder",
    "TelemetryWindow",
    "telemetry_from_jsonl",
    "telemetry_report",
    "telemetry_summary",
    "telemetry_to_csv",
    "telemetry_to_jsonl",
]
