"""Render a telemetry record: Figure 5c breakdown, Figure 6 map, series.

These are the ``repro report`` CLI command's building blocks — the
same tables :mod:`repro.core.report` renders from a live
:class:`~repro.sim.engine.SimulationResult`, reproduced purely from a
recorded :class:`~repro.telemetry.recorder.TelemetryRecord` (summed
windows equal the run-end accounting).
"""

from __future__ import annotations

from repro.core.report import format_power
from repro.telemetry.recorder import TelemetryRecord


def breakdown_table(record: TelemetryRecord) -> str:
    """Per-component power with shares (Figure 5c), from summed
    windows."""
    breakdown = record.power_breakdown_w()
    total = sum(breakdown.values())
    lines = [f"{'component':<16} {'power':>12} {'share':>8}"]
    for component, power in sorted(breakdown.items(),
                                   key=lambda kv: -kv[1]):
        if power == 0.0:
            continue
        share = power / total if total > 0 else 0.0
        lines.append(
            f"{component:<16} {format_power(power):>12} {share:>7.1%}"
        )
    lines.append(f"{'total':<16} {format_power(total):>12} {'100.0%':>8}")
    return "\n".join(lines)


def spatial_table(record: TelemetryRecord) -> str:
    """Per-node power on the (x, y) grid, y descending (Figure 6)."""
    powers = record.node_power_w()
    lines = []
    for y in reversed(range(record.height)):
        row = []
        for x in range(record.width):
            node = y * record.width + x
            row.append(f"{powers[node] * 1e3:9.2f}")
        lines.append(f"y={y}  " + " ".join(row) + "  (mW)")
    lines.append("      " + " ".join(f"{'x=' + str(x):>9}"
                                     for x in range(record.width)))
    return "\n".join(lines)


def series_table(record: TelemetryRecord, max_rows: int = 20) -> str:
    """Per-window total power/activity time series (downsampled to at
    most ``max_rows`` rows for the terminal)."""
    windows = record.windows
    if not windows:
        return "(no windows recorded)"
    stride = max(1, (len(windows) + max_rows - 1) // max_rows)
    lines = [f"{'window':>7} {'cycles':>15} {'power':>12} "
             f"{'inj':>7} {'ej':>7} {'occ':>5}"]
    powers = record.window_power_w()
    for i in range(0, len(windows), stride):
        window = windows[i]
        lines.append(
            f"{window.index:>7} "
            f"{window.cycle_start:>7}-{window.cycle_end:<7} "
            f"{format_power(powers[i]):>12} "
            f"{sum(window.injected):>7} {sum(window.ejected):>7} "
            f"{sum(window.occupancy):>5}"
        )
    if stride > 1:
        lines.append(f"(every {stride}. of {len(windows)} windows)")
    return "\n".join(lines)


def spans_table(record: TelemetryRecord) -> str:
    """Wall-clock profiling spans of the engine phases."""
    if not record.spans_s:
        return "(no spans recorded)"
    total = sum(record.spans_s.values())
    lines = [f"{'phase':<12} {'seconds':>10} {'share':>8}"]
    for name, seconds in sorted(record.spans_s.items(),
                                key=lambda kv: -kv[1]):
        share = seconds / total if total > 0 else 0.0
        lines.append(f"{name:<12} {seconds:>10.4f} {share:>7.1%}")
    return "\n".join(lines)


def telemetry_summary(record: TelemetryRecord) -> dict:
    """A compact JSON-safe digest of one record — window counts,
    energy/power totals and fault counters, without the per-window
    series.  Small enough to embed in a job-service result or progress
    stream where the full record would be megabytes."""
    return {
        "windows": record.num_windows,
        "window_cycles": record.window,
        "measured_cycles": record.measured_cycles,
        "total_energy_j": record.total_energy_j(),
        "power_breakdown_w": record.power_breakdown_w(),
        "flits_dropped": sum(record.dropped_totals()),
        "packets_misrouted": sum(record.misrouted_totals()),
        "spans_s": dict(record.spans_s),
    }


def telemetry_report(record: TelemetryRecord, series: bool = True) -> str:
    """The full ``repro report`` rendering of one record."""
    grid = f"{record.width}x{record.height}"
    lines = [
        f"telemetry: {record.router_kind} {grid}, "
        f"{record.num_windows} windows of {record.window} cycles "
        f"({record.measured_cycles} measured cycles, "
        f"{record.kernel} kernel, {record.activity_mode} activity)",
        "",
        "power breakdown (summed windows):",
        breakdown_table(record),
        "",
        "per-node power (mW):",
        spatial_table(record),
    ]
    dropped = sum(record.dropped_totals())
    misrouted = sum(record.misrouted_totals())
    if dropped or misrouted:
        lines += ["", f"fault handling: {dropped} flits dropped, "
                      f"{misrouted} packets misrouted"]
    if series:
        lines += ["", "time series:", series_table(record)]
    lines += ["", "engine phase spans:", spans_table(record)]
    return "\n".join(lines)
