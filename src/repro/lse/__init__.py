"""Component-based simulation framework (the LSE substitute).

The paper builds Orion inside the Liberty Simulation Environment:
modules with ports, message passing, and an event subsystem that power
models hook into (sections 2.1-2.2, Figures 1-2).  LSE itself is
unavailable; this package provides the same construction — a small
module/port/event framework plus the interconnection-network building
blocks — so the paper's plug-and-play methodology can be demonstrated
end to end (see :mod:`repro.lse.assemblies` and the
``examples/module_assembly.py`` walkthrough).

The production simulator in :mod:`repro.sim` uses hand-wired routers
for speed; this framework is the faithful architectural statement.
"""

from repro.lse.assemblies import (
    NORTH_OUT,
    RING_EJECT,
    RING_FORWARD,
    build_full_router,
    build_ring_network,
    build_walkthrough_router,
    ring_route,
)
from repro.lse.events import EventBus
from repro.lse.hooks import PowerHooks
from repro.lse.library import (
    MESSAGE_PROCESSING,
    MESSAGE_TRANSPORTING,
    ArbiterModule,
    BufferModule,
    CrossbarModule,
    DemuxModule,
    LinkModule,
    MergeModule,
    Message,
    SinkModule,
    SourceModule,
)
from repro.lse.module import Module
from repro.lse.ports import InPort, OutPort, Port
from repro.lse.system import System

__all__ = [
    "NORTH_OUT",
    "build_walkthrough_router",
    "build_full_router",
    "build_ring_network",
    "ring_route",
    "RING_FORWARD",
    "RING_EJECT",
    "EventBus",
    "PowerHooks",
    "MESSAGE_PROCESSING",
    "MESSAGE_TRANSPORTING",
    "ArbiterModule",
    "BufferModule",
    "CrossbarModule",
    "DemuxModule",
    "MergeModule",
    "LinkModule",
    "Message",
    "SinkModule",
    "SourceModule",
    "Module",
    "InPort",
    "OutPort",
    "Port",
    "System",
]
