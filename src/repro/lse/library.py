"""The interconnection-network building blocks as framework modules.

Section 2.2 identifies "the basic components such as message sources and
sinks, router buffers, crossbars, arbiters and links", split into two
classes: *message transporting* modules that "do not store or modify
messages when delivering them" (links, crossbars) and *message
processing* modules that generate, store or modify them (sources, sinks,
buffers, arbiters).

These modules emit the event vocabulary of
:mod:`repro.core.events` — hook power models to the bus (see
:class:`repro.lse.hooks.PowerHooks`) and the section 3.3 walkthrough
falls out of the assembly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional, Tuple

from repro.core import events as ev
from repro.lse.module import Module
from repro.sim.arbiters import make_arbiter

#: Message-class tags (paper section 2.2).
MESSAGE_PROCESSING = "message_processing"
MESSAGE_TRANSPORTING = "message_transporting"


@dataclass
class Message:
    """A flit-like unit flowing between modules."""

    payload: Optional[int] = None
    #: Output port of the switch this message wants (routing decision).
    out_port: int = 0
    #: Originating requester/input id, stamped as it moves.
    input_id: int = 0
    #: Source route for multi-router fabrics: one output-port id per
    #: router visited; ``hop`` tracks progress (links increment it).
    route: Optional[List[int]] = None
    hop: int = 0
    tag: Any = None


class SourceModule(Module):
    """Injects scheduled messages (message processing).

    ``schedule`` parameter: list of ``(cycle, Message)`` pairs.
    """

    MESSAGE_CLASS = MESSAGE_PROCESSING

    def __init__(self, name: str, schedule: List[Tuple[int, Message]],
                 **params: Any) -> None:
        super().__init__(name, **params)
        self.out = self.out_port("out")
        self._schedule = sorted(schedule, key=lambda cm: cm[0])
        self.injected = 0

    def evaluate(self, cycle: int) -> None:
        while self._schedule and self._schedule[0][0] <= cycle:
            _, message = self._schedule.pop(0)
            self.out.send(message)
            self.injected += 1


class SinkModule(Module):
    """Consumes messages and records their arrival (message
    processing)."""

    MESSAGE_CLASS = MESSAGE_PROCESSING

    def __init__(self, name: str, **params: Any) -> None:
        super().__init__(name, **params)
        self.inp = self.in_port("in")
        self.received: List[Tuple[int, Message]] = []

    def evaluate(self, cycle: int) -> None:
        for message in self.inp.drain():
            self.received.append((cycle, message))


class BufferModule(Module):
    """FIFO buffer with write, grant-driven read and a request side
    channel (message processing).

    Ports: ``write`` in, ``grant`` in, ``read`` out, ``req`` out.  When
    a message sits at the FIFO head and no request is outstanding, the
    buffer requests its switch output; each grant releases one message.
    Parameters: ``depth`` (flits).
    """

    MESSAGE_CLASS = MESSAGE_PROCESSING

    def __init__(self, name: str, depth: int = 4, input_id: int = 0,
                 **params: Any) -> None:
        super().__init__(name, depth=depth, **params)
        if depth < 1:
            raise ValueError(f"{name}: depth must be >= 1, got {depth}")
        self.write = self.in_port("write")
        self.grant = self.in_port("grant", optional=True)
        self.read = self.out_port("read")
        self.req = self.out_port("req", optional=True)
        self.depth = depth
        self.input_id = input_id
        self.fifo: Deque[Message] = deque()
        self._requested = False

    def evaluate(self, cycle: int) -> None:
        for message in self.write.drain():
            if len(self.fifo) >= self.depth:
                raise RuntimeError(f"{self.name}: buffer overflow")
            if message.route is not None:
                if message.hop >= len(message.route):
                    raise RuntimeError(
                        f"{self.name}: message route exhausted"
                    )
                message.out_port = message.route[message.hop]
            message.input_id = self.input_id
            self.fifo.append(message)
            self.emit(ev.BUFFER_WRITE, payload=message.payload)
        grants = self.grant.drain()
        for _ in grants:
            if not self.fifo:
                raise RuntimeError(f"{self.name}: grant with empty FIFO")
            message = self.fifo.popleft()
            self.emit(ev.BUFFER_READ, payload=message.payload)
            self.read.send(message)
            self._requested = False
        if self.fifo and not self._requested and self.req.connected:
            head = self.fifo[0]
            self.req.send(Message(out_port=head.out_port,
                                  input_id=self.input_id))
            self._requested = True


class ArbiterModule(Module):
    """Arbitrates requests for one switch output (message processing).

    Request side: either the shared ``req`` input port (messages carry
    ``input_id``) or the per-requester ``req_<i>`` ports — both are
    optional, use whichever the assembly wires.  Grant side: one
    ``grant_<i>`` out per requester, and ``config`` out towards the
    crossbar.  Parameters: ``requesters``, ``policy``.
    """

    MESSAGE_CLASS = MESSAGE_PROCESSING

    def __init__(self, name: str, requesters: int = 4,
                 policy: str = "matrix", out_id: int = 0,
                 **params: Any) -> None:
        super().__init__(name, requesters=requesters, policy=policy,
                         **params)
        if requesters < 1:
            raise ValueError(
                f"{name}: requesters must be >= 1, got {requesters}"
            )
        self.req = self.in_port("req", optional=True)
        self.reqs = [self.in_port(f"req_{i}", optional=True)
                     for i in range(requesters)]
        self.grants = [self.out_port(f"grant_{i}", optional=True)
                       for i in range(requesters)]
        self.config = self.out_port("config")
        self.requesters = requesters
        self.out_id = out_id
        self._arbiter = make_arbiter(policy, requesters)
        self._pending: List[Message] = []

    def evaluate(self, cycle: int) -> None:
        self._pending.extend(self.req.drain())
        for i, port in enumerate(self.reqs):
            for message in port.drain():
                message.input_id = i
                self._pending.append(message)
        if not self._pending:
            return
        ids = sorted({m.input_id for m in self._pending})
        for rid in ids:
            if not 0 <= rid < self.requesters:
                raise RuntimeError(
                    f"{self.name}: request from unknown requester {rid}"
                )
        winner = self._arbiter.grant(ids)
        self.emit(ev.ARBITRATION, num_requests=len(ids))
        drop = True
        kept = []
        for m in self._pending:
            if m.input_id == winner and drop:
                drop = False  # release exactly one pending request
                continue
            kept.append(m)
        self._pending = kept
        if not self.grants[winner].connected:
            raise RuntimeError(
                f"{self.name}: granted requester {winner} has no grant "
                f"wire"
            )
        self.grants[winner].send(Message(input_id=winner,
                                         out_port=self.out_id))
        self.config.send(Message(input_id=winner, out_port=self.out_id))


class DemuxModule(Module):
    """Routes messages to one of several outputs by their ``out_port``
    field (message transporting) — the plumbing between an input
    buffer's request line and the per-output arbiters."""

    MESSAGE_CLASS = MESSAGE_TRANSPORTING

    def __init__(self, name: str, outputs: int = 5, **params: Any) -> None:
        super().__init__(name, outputs=outputs, **params)
        if outputs < 1:
            raise ValueError(f"{name}: outputs must be >= 1, got {outputs}")
        self.inp = self.in_port("in")
        self.outs = [self.out_port(f"out_{j}", optional=True)
                     for j in range(outputs)]

    def evaluate(self, cycle: int) -> None:
        for message in self.inp.drain():
            if not 0 <= message.out_port < len(self.outs):
                raise RuntimeError(
                    f"{self.name}: message targets unknown output "
                    f"{message.out_port}"
                )
            self.outs[message.out_port].send(message)


class MergeModule(Module):
    """Funnels several message streams into one output in arrival order
    (message transporting) — the plumbing that lets one buffer receive
    grants from any of the per-output arbiters."""

    MESSAGE_CLASS = MESSAGE_TRANSPORTING

    def __init__(self, name: str, inputs: int = 5, **params: Any) -> None:
        super().__init__(name, inputs=inputs, **params)
        if inputs < 1:
            raise ValueError(f"{name}: inputs must be >= 1, got {inputs}")
        self.ins = [self.in_port(f"in_{i}", optional=True)
                    for i in range(inputs)]
        self.out = self.out_port("out")

    def evaluate(self, cycle: int) -> None:
        for port in self.ins:
            for message in port.drain():
                self.out.send(message)


class CrossbarModule(Module):
    """Switch fabric: forwards messages per its configuration (message
    transporting — it neither stores nor modifies messages).

    Ports: ``in_<i>`` per input, ``config`` in, ``out_<j>`` per output.
    """

    MESSAGE_CLASS = MESSAGE_TRANSPORTING

    def __init__(self, name: str, inputs: int = 5, outputs: int = 5,
                 **params: Any) -> None:
        super().__init__(name, inputs=inputs, outputs=outputs, **params)
        if inputs < 1 or outputs < 1:
            raise ValueError(f"{name}: needs inputs and outputs")
        self.inputs = [self.in_port(f"in_{i}", optional=True)
                       for i in range(inputs)]
        self.outs = [self.out_port(f"out_{j}", optional=True)
                     for j in range(outputs)]
        self.config = self.in_port("config")
        #: input id -> configured output id (registered: a configuration
        #: received in cycle t steers traffic from cycle t+1 on, so a
        #: grant's data — which arrives one pipeline stage later — is
        #: never misrouted by a newer grant arriving alongside it).
        self._map = {}
        self._next_map = {}

    def evaluate(self, cycle: int) -> None:
        self._map.update(self._next_map)
        self._next_map = {}
        for message in self.config.drain():
            self._next_map[message.input_id] = message.out_port
        for i, port in enumerate(self.inputs):
            for message in port.drain():
                if i not in self._map:
                    raise RuntimeError(
                        f"{self.name}: input {i} has no configuration"
                    )
                out = self._map[i]
                self.emit(ev.XBAR_TRAVERSAL, payload=message.payload,
                          out=out)
                self.outs[out].send(message)


class LinkModule(Module):
    """Inter-router wire with fixed latency (message transporting)."""

    MESSAGE_CLASS = MESSAGE_TRANSPORTING

    def __init__(self, name: str, latency: int = 1, **params: Any) -> None:
        super().__init__(name, latency=latency, **params)
        if latency < 1:
            raise ValueError(
                f"{name}: latency must be >= 1, got {latency}"
            )
        self.inp = self.in_port("in")
        self.out = self.out_port("out")
        self.latency = latency
        self._in_flight: Deque[Tuple[int, Message]] = deque()

    def evaluate(self, cycle: int) -> None:
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, message = self._in_flight.popleft()
            self.out.send(message)
        for message in self.inp.drain():
            self.emit(ev.LINK_TRAVERSAL, payload=message.payload)
            if message.route is not None:
                message.hop += 1
            self._in_flight.append((cycle + self.latency, message))
