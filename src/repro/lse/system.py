"""System assembly and execution for the component framework.

Figure 1 of the paper: a simulator is built from "a unified structural
machine description" — modules are added, ports connected, the
construction validated, and the result executed cycle by cycle.

Evaluation semantics: modules are evaluated once per cycle **in the
order they were added**.  A message sent during cycle *t* is visible to
modules evaluated later in that same cycle, and to earlier modules at
*t + 1*.  Order the modules along the dataflow (source before buffer
before switch before link) and feedback paths (grants back to buffers)
naturally take the one-cycle hop the hardware has.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.lse.events import EventBus
from repro.lse.module import Module
from repro.lse.ports import InPort, OutPort


class System:
    """A set of connected modules sharing one event bus."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self.bus = EventBus()
        self._modules: Dict[str, Module] = {}
        self._order: List[Module] = []
        self.cycle = 0
        self._built = False

    # --- construction -----------------------------------------------------------

    def add(self, module: Module) -> Module:
        """Register a module (evaluation order = addition order)."""
        if self._built:
            raise RuntimeError("system already built; cannot add modules")
        if module.name in self._modules:
            raise ValueError(f"duplicate module name {module.name!r}")
        module.bus = self.bus
        self._modules[module.name] = module
        self._order.append(module)
        return module

    def module(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(
                f"no module {name!r}; have {sorted(self._modules)}"
            ) from None

    def connect(self, source: Union[OutPort, str],
                sink: Union[InPort, str]) -> None:
        """Wire an output port to an input port.

        Ports may be given as objects or as ``"module.port"`` strings.
        """
        if isinstance(source, str):
            source = self._lookup_port(source, output=True)
        if isinstance(sink, str):
            sink = self._lookup_port(sink, output=False)
        source.connect(sink)

    def _lookup_port(self, label: str, output: bool):
        try:
            module_name, port_name = label.split(".", 1)
        except ValueError:
            raise ValueError(
                f"port label {label!r} must be 'module.port'"
            ) from None
        module = self.module(module_name)
        ports = module.out_ports if output else module.in_ports
        try:
            return ports[port_name]
        except KeyError:
            kind = "output" if output else "input"
            raise KeyError(
                f"module {module_name!r} has no {kind} port "
                f"{port_name!r}; have {sorted(ports)}"
            ) from None

    def build(self) -> "System":
        """Validate connectivity and freeze the structure."""
        problems = []
        for module in self._order:
            problems.extend(module.unconnected_ports())
        if problems:
            raise ValueError(
                "unconnected ports: " + ", ".join(sorted(problems))
            )
        self._built = True
        return self

    # --- execution ----------------------------------------------------------------

    def step(self) -> None:
        """Advance one cycle."""
        if not self._built:
            raise RuntimeError("call build() before stepping")
        self.bus.now = self.cycle
        for module in self._order:
            module.evaluate(self.cycle)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        for _ in range(cycles):
            self.step()

    @property
    def modules(self) -> List[Module]:
        return list(self._order)
