"""The event subsystem of the component framework.

Section 2.1: "The integration of power models is based on the event
subsystem of LSE ... Users define events associated with each module.
Power models in the power simulation library are hooked to these events
so when an event occurs during the execution, it triggers the specific
power model, which calculates and accumulates the energy consumed."

Modules emit named events with a context dict; any number of hooks may
subscribe, by event name or to everything.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

Hook = Callable[[str, Dict[str, Any]], None]


class EventBus:
    """Publish/subscribe hub shared by one assembled system."""

    def __init__(self) -> None:
        self._hooks: Dict[str, List[Hook]] = {}
        self._global_hooks: List[Hook] = []
        self._log: List[Tuple[int, str, Dict[str, Any]]] = []
        self.record = False
        self.now = 0

    def subscribe(self, event: str, hook: Hook) -> None:
        """Call ``hook(event, context)`` on each occurrence of
        ``event``."""
        self._hooks.setdefault(event, []).append(hook)

    def subscribe_all(self, hook: Hook) -> None:
        """Call ``hook`` on every event."""
        self._global_hooks.append(hook)

    def emit(self, event: str, **context: Any) -> None:
        """Fire one event occurrence."""
        if self.record:
            self._log.append((self.now, event, context))
        for hook in self._hooks.get(event, ()):
            hook(event, context)
        for hook in self._global_hooks:
            hook(event, context)

    @property
    def log(self) -> List[Tuple[int, str, Dict[str, Any]]]:
        """Recorded ``(cycle, event, context)`` tuples (when
        ``record`` is enabled)."""
        return list(self._log)

    def clear_log(self) -> None:
        self._log = []
