"""Ports and connections for the component framework.

In LSE, "physical hardware blocks are modeled as logical functional
modules that communicate through ports.  Data is sent between module
ports via message passing" (section 2.1).  A :class:`OutPort` connects
to exactly one :class:`InPort`; messages sent during a cycle are
readable by the receiving module when it evaluates later in the same
cycle (modules evaluate in dataflow order — see
:mod:`repro.lse.system`).
"""

from __future__ import annotations

from typing import Any, List, Optional


class Port:
    """Base port: belongs to a module, has a name.

    ``optional`` ports may be left unconnected (build-time validation
    skips them); sends on unconnected optional output ports are
    guarded by the owning module.
    """

    def __init__(self, module, name: str, optional: bool = False) -> None:
        self.module = module
        self.name = name
        self.optional = optional

    @property
    def label(self) -> str:
        return f"{self.module.name}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label})"


class InPort(Port):
    """Receiving end: buffers messages until the module drains them."""

    def __init__(self, module, name: str, optional: bool = False) -> None:
        super().__init__(module, name, optional)
        self._messages: List[Any] = []
        self.source: Optional["OutPort"] = None

    def deliver(self, message: Any) -> None:
        self._messages.append(message)

    def drain(self) -> List[Any]:
        """All messages delivered since the last drain."""
        messages, self._messages = self._messages, []
        return messages

    def peek(self) -> List[Any]:
        """Pending messages, without consuming them."""
        return list(self._messages)

    @property
    def connected(self) -> bool:
        return self.source is not None


class OutPort(Port):
    """Sending end: forwards messages to its connected input port."""

    def __init__(self, module, name: str, optional: bool = False) -> None:
        super().__init__(module, name, optional)
        self.sink: Optional[InPort] = None

    def connect(self, sink: InPort) -> None:
        if self.sink is not None:
            raise ValueError(
                f"{self.label} is already connected to {self.sink.label}"
            )
        if sink.source is not None:
            raise ValueError(
                f"{sink.label} is already fed by {sink.source.label}"
            )
        self.sink = sink
        sink.source = self

    def send(self, message: Any) -> None:
        if self.sink is None:
            raise RuntimeError(f"{self.label} is not connected")
        self.sink.deliver(message)

    @property
    def connected(self) -> bool:
        return self.sink is not None
