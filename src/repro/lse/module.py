"""Module base class for the component framework.

A module declares input/output ports and parameters, and implements
``evaluate(cycle)``.  Modules are evaluated once per cycle in dataflow
order by :class:`repro.lse.system.System`; they read their input ports,
update internal state, emit events and write their output ports.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.lse.events import EventBus
from repro.lse.ports import InPort, OutPort


class Module:
    """One logical functional block."""

    def __init__(self, name: str, **params: Any) -> None:
        if not name:
            raise ValueError("modules need a non-empty name")
        self.name = name
        self.params: Dict[str, Any] = dict(params)
        self.in_ports: Dict[str, InPort] = {}
        self.out_ports: Dict[str, OutPort] = {}
        #: Installed when the module is added to a system.
        self.bus: EventBus = EventBus()

    # --- declaration -----------------------------------------------------------

    def in_port(self, name: str, optional: bool = False) -> InPort:
        """Declare (or fetch) an input port."""
        if name not in self.in_ports:
            self.in_ports[name] = InPort(self, name, optional)
        return self.in_ports[name]

    def out_port(self, name: str, optional: bool = False) -> OutPort:
        """Declare (or fetch) an output port."""
        if name not in self.out_ports:
            self.out_ports[name] = OutPort(self, name, optional)
        return self.out_ports[name]

    def param(self, name: str, default: Any = None) -> Any:
        """Parameter lookup (None default makes parameters optional)."""
        return self.params.get(name, default)

    # --- behaviour -------------------------------------------------------------

    def evaluate(self, cycle: int) -> None:
        """One cycle of behaviour; subclasses override."""
        raise NotImplementedError

    def emit(self, event: str, **context: Any) -> None:
        """Raise a microarchitectural event on the system bus."""
        self.bus.emit(event, module=self.name, **context)

    # --- introspection -----------------------------------------------------------

    def unconnected_ports(self) -> List[str]:
        """Labels of ports left unwired (build-time validation)."""
        missing = [p.label for p in self.in_ports.values()
                   if not p.connected and not p.optional]
        missing += [p.label for p in self.out_ports.values()
                    if not p.connected and not p.optional]
        return missing

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
