"""Power hooks: connecting component power models to the event bus.

The plug-in layer of Figure 1: each power model is "hooked" to the
events of the modules it covers, accumulating energy as the assembled
system executes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import events as ev
from repro.lse.events import EventBus
from repro.power.arbiter import MatrixArbiterPower
from repro.power.buffer import FIFOBufferPower


class PowerHooks:
    """Subscribes component power models to an event bus."""

    def __init__(self, bus: EventBus,
                 buffer_model: Optional[FIFOBufferPower] = None,
                 arbiter_model: Optional[MatrixArbiterPower] = None,
                 crossbar_model=None,
                 link_model=None) -> None:
        self.buffer_model = buffer_model
        self.arbiter_model = arbiter_model
        self.crossbar_model = crossbar_model
        self.link_model = link_model
        self.energy_by_event: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        if buffer_model is not None:
            bus.subscribe(ev.BUFFER_WRITE, self._on_buffer_write)
            bus.subscribe(ev.BUFFER_READ, self._on_buffer_read)
        if arbiter_model is not None:
            bus.subscribe(ev.ARBITRATION, self._on_arbitration)
        if crossbar_model is not None:
            bus.subscribe(ev.XBAR_TRAVERSAL, self._on_xbar)
        if link_model is not None:
            bus.subscribe(ev.LINK_TRAVERSAL, self._on_link)

    def _deposit(self, event: str, energy: float) -> None:
        self.energy_by_event[event] = \
            self.energy_by_event.get(event, 0.0) + energy
        self.counts[event] = self.counts.get(event, 0) + 1

    def _on_buffer_write(self, event, context) -> None:
        self._deposit(event, self.buffer_model.write_energy())

    def _on_buffer_read(self, event, context) -> None:
        self._deposit(event, self.buffer_model.read_energy())

    def _on_arbitration(self, event, context) -> None:
        n = context.get("num_requests", 1)
        self._deposit(event, self.arbiter_model.arbitration_energy(n))

    def _on_xbar(self, event, context) -> None:
        self._deposit(event, self.crossbar_model.traversal_energy())

    def _on_link(self, event, context) -> None:
        self._deposit(event, self.link_model.traversal_energy())

    @property
    def total_energy(self) -> float:
        """Joules accumulated across all hooked events."""
        return sum(self.energy_by_event.values())
