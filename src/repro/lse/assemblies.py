"""Pre-wired module assemblies.

:func:`build_walkthrough_router` reproduces Figure 2 — "a simple
wormhole router as modeled in Orion": a source feeds input buffer
``BufI``; the buffer's route request goes to the output port's arbiter;
the grant releases the flit through the crossbar onto the north output
link and into a sink.  Running it replays the section 3.3 event
sequence: *buffer write, arbitration, buffer read, crossbar traversal,
link traversal*.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lse.library import (
    ArbiterModule,
    BufferModule,
    CrossbarModule,
    DemuxModule,
    LinkModule,
    MergeModule,
    Message,
    SinkModule,
    SourceModule,
)
from repro.lse.system import System

#: Crossbar output index used for the walkthrough's "north" port.
NORTH_OUT = 0


def build_walkthrough_router(
        schedule: List[Tuple[int, Message]],
        buffer_depth: int = 4,
        ports: int = 5,
        arbiter_requesters: int = 4,
        arbiter_policy: str = "matrix",
        link_latency: int = 1) -> System:
    """Assemble the Figure 2 testbench.

    ``schedule`` is the source's ``(cycle, Message)`` injection plan;
    messages should target ``out_port = NORTH_OUT``.  Returns the built
    system; modules are reachable as ``system.module("BufI")`` etc.
    """
    system = System("walkthrough_router")
    source = system.add(SourceModule("Source", schedule))
    buf = system.add(BufferModule("BufI", depth=buffer_depth,
                                  input_id=0))
    arbiter = system.add(ArbiterModule(
        "ArbN", requesters=arbiter_requesters, policy=arbiter_policy,
        out_id=NORTH_OUT))
    xbar = system.add(CrossbarModule("Crossbar", inputs=ports,
                                     outputs=ports))
    link = system.add(LinkModule("LinkN", latency=link_latency))
    sink = system.add(SinkModule("Sink"))

    system.connect(source.out, buf.write)
    system.connect(buf.req, arbiter.req)
    system.connect(arbiter.grants[0], buf.grant)
    system.connect(arbiter.config, xbar.config)
    system.connect(buf.read, xbar.inputs[0])
    system.connect(xbar.outs[NORTH_OUT], link.inp)
    system.connect(link.out, sink.inp)
    return system.build()


def build_full_router(schedules: List[List[Tuple[int, Message]]],
                      buffer_depth: int = 8,
                      arbiter_policy: str = "matrix",
                      link_latency: int = 1) -> System:
    """Assemble a complete input-buffered router from library modules.

    One source + input buffer per port; a demultiplexer routes each
    buffer's requests to the per-output arbiters; grant merges funnel
    any arbiter's grant back to its buffer; all arbiters configure the
    shared crossbar; each output feeds a link and a sink.  This is the
    paper's "pick, plug and play" construction at full router scale —
    ``len(schedules)`` ports, schedules holding each source's
    ``(cycle, Message)`` injections (``Message.out_port`` selects the
    destination output).
    """
    ports = len(schedules)
    if ports < 2:
        raise ValueError(f"a router needs >= 2 ports, got {ports}")
    system = System("full_router")
    sources = [system.add(SourceModule(f"Source{i}", schedules[i]))
               for i in range(ports)]
    buffers = [system.add(BufferModule(f"Buf{i}", depth=buffer_depth,
                                       input_id=i))
               for i in range(ports)]
    routes = [system.add(DemuxModule(f"Route{i}", outputs=ports))
              for i in range(ports)]
    arbiters = [system.add(ArbiterModule(
        f"Arb{o}", requesters=ports, policy=arbiter_policy, out_id=o))
        for o in range(ports)]
    grant_merges = [system.add(MergeModule(f"GrantMerge{i}",
                                           inputs=ports))
                    for i in range(ports)]
    config_merge = system.add(MergeModule("ConfigMerge", inputs=ports))
    xbar = system.add(CrossbarModule("Crossbar", inputs=ports,
                                     outputs=ports))
    links = [system.add(LinkModule(f"Link{o}", latency=link_latency))
             for o in range(ports)]
    sinks = [system.add(SinkModule(f"Sink{o}")) for o in range(ports)]

    for i in range(ports):
        system.connect(sources[i].out, buffers[i].write)
        system.connect(buffers[i].req, routes[i].inp)
        system.connect(grant_merges[i].out, buffers[i].grant)
        system.connect(buffers[i].read, xbar.inputs[i])
        for o in range(ports):
            system.connect(routes[i].outs[o], arbiters[o].reqs[i])
            system.connect(arbiters[o].grants[i],
                           grant_merges[i].ins[o])
    for o in range(ports):
        system.connect(arbiters[o].config, config_merge.ins[o])
        system.connect(xbar.outs[o], links[o].inp)
        system.connect(links[o].out, sinks[o].inp)
    system.connect(config_merge.out, xbar.config)
    return system.build()


#: Port roles of a ring-network router.
RING_FORWARD, RING_EJECT = 0, 1


def ring_route(src: int, dst: int, size: int) -> List[int]:
    """Source route around a unidirectional ring: forward hops then
    eject — one out-port id per router visited (Message.route)."""
    if not 0 <= src < size or not 0 <= dst < size:
        raise ValueError(f"nodes must be in 0..{size - 1}")
    if src == dst:
        raise ValueError("source and destination coincide")
    hops = (dst - src) % size
    return [RING_FORWARD] * hops + [RING_EJECT]


def build_ring_network(schedules: List[List[Tuple[int, Message]]],
                       buffer_depth: int = 8,
                       arbiter_policy: str = "matrix",
                       link_latency: int = 1) -> System:
    """Assemble a unidirectional ring of 2-port routers — a multi-router
    fabric built entirely from library modules (the paper's claim that
    a small module library composes into "myriad network fabrics").

    Each router has a ring input (port 0) and a local injection source
    (port 1); output 0 forwards around the ring through a link, output
    1 ejects into the node's sink.  Messages must carry source routes
    (see :func:`ring_route`).
    """
    size = len(schedules)
    if size < 2:
        raise ValueError(f"a ring needs >= 2 routers, got {size}")
    system = System("ring_network")
    parts = []
    for r in range(size):
        part = {
            "source": system.add(SourceModule(f"R{r}.Source",
                                              schedules[r])),
            "bufs": [system.add(BufferModule(f"R{r}.Buf{i}",
                                             depth=buffer_depth,
                                             input_id=i))
                     for i in range(2)],
            "routes": [system.add(DemuxModule(f"R{r}.Route{i}",
                                              outputs=2))
                       for i in range(2)],
            "arbs": [system.add(ArbiterModule(
                f"R{r}.Arb{o}", requesters=2, policy=arbiter_policy,
                out_id=o)) for o in range(2)],
            "gmerges": [system.add(MergeModule(f"R{r}.GrantMerge{i}",
                                               inputs=2))
                        for i in range(2)],
            "cmerge": system.add(MergeModule(f"R{r}.ConfigMerge",
                                             inputs=2)),
            "xbar": system.add(CrossbarModule(f"R{r}.Crossbar",
                                              inputs=2, outputs=2)),
            "link": system.add(LinkModule(f"R{r}.LinkFwd",
                                          latency=link_latency)),
            "sink": system.add(SinkModule(f"R{r}.Sink")),
        }
        parts.append(part)
    for r, part in enumerate(parts):
        system.connect(part["source"].out, part["bufs"][1].write)
        for i in range(2):
            system.connect(part["bufs"][i].req, part["routes"][i].inp)
            system.connect(part["gmerges"][i].out,
                           part["bufs"][i].grant)
            system.connect(part["bufs"][i].read,
                           part["xbar"].inputs[i])
            for o in range(2):
                system.connect(part["routes"][i].outs[o],
                               part["arbs"][o].reqs[i])
                system.connect(part["arbs"][o].grants[i],
                               part["gmerges"][i].ins[o])
        for o in range(2):
            system.connect(part["arbs"][o].config,
                           part["cmerge"].ins[o])
        system.connect(part["cmerge"].out, part["xbar"].config)
        system.connect(part["xbar"].outs[RING_EJECT],
                       part["sink"].inp)
        system.connect(part["xbar"].outs[RING_FORWARD],
                       part["link"].inp)
        successor = parts[(r + 1) % size]
        system.connect(part["link"].out, successor["bufs"][0].write)
    return system.build()
