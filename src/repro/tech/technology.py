"""Technology model: scaled capacitance primitives.

Provides the three capacitance primitives of the paper's Table 1 —
``Cg(T)`` (gate capacitance), ``Cd(T)`` (diffusion capacitance) and
``Cw(L)`` (wire capacitance) — for an arbitrary CMOS feature size, by
linear scaling of the 0.8 um base constants (the Cacti/Wattch approach).

A *transistor* is identified by its channel width in um (already scaled to
the target technology).  Gates built from several transistors (e.g. an
inverter with an NMOS and a PMOS) expose their total capacitance through
the convenience methods on :class:`Technology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech import constants as k


@dataclass(frozen=True)
class Technology:
    """A CMOS process node plus operating point.

    Parameters
    ----------
    feature_size_um:
        Drawn feature size in micrometres (e.g. ``0.1`` for the paper's
        on-chip experiments).
    vdd:
        Supply voltage in volts.  Defaults to a representative value for
        the feature size.
    frequency_hz:
        Clock frequency in hertz.  Defaults likewise.
    """

    feature_size_um: float
    vdd: float = field(default=0.0)
    frequency_hz: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.feature_size_um <= 0:
            raise ValueError(
                f"feature size must be positive, got {self.feature_size_um}"
            )
        if not self.vdd:
            object.__setattr__(
                self, "vdd", _nearest(k.DEFAULT_VDD_BY_FEATURE, self.feature_size_um)
            )
        if not self.frequency_hz:
            object.__setattr__(
                self,
                "frequency_hz",
                _nearest(k.DEFAULT_FREQ_BY_FEATURE, self.feature_size_um),
            )
        if self.vdd <= 0:
            raise ValueError(f"Vdd must be positive, got {self.vdd}")
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")

    # --- scaling -----------------------------------------------------------

    @property
    def scale(self) -> float:
        """Linear scale factor relative to the 0.8 um base process."""
        return self.feature_size_um / k.BASE_FEATURE_SIZE_UM

    @property
    def leff_um(self) -> float:
        """Effective transistor gate length (um)."""
        return k.BASE_LEFF_UM * self.scale

    def scaled_width(self, base_name: str) -> float:
        """Default transistor width (um) for the named device at this node.

        ``base_name`` is a key of :data:`repro.tech.constants.BASE_WIDTHS`.
        """
        try:
            return k.BASE_WIDTHS[base_name] * self.scale
        except KeyError:
            raise KeyError(
                f"unknown transistor name {base_name!r}; known: "
                f"{sorted(k.BASE_WIDTHS)}"
            ) from None

    # --- capacitance primitives (Table 1) ----------------------------------

    def gate_cap(self, width_um: float, *, pass_gate: bool = False) -> float:
        """``Cg(T)``: gate capacitance (F) of a transistor of given width.

        Gate area capacitance plus polysilicon overhang, per Cacti.
        """
        per_area = k.CGATEPASS_PER_AREA if pass_gate else k.CGATE_PER_AREA
        return per_area * width_um * self.leff_um + k.CPOLYWIRE_PER_UM * width_um

    def diff_cap(self, width_um: float, *, pmos: bool = False) -> float:
        """``Cd(T)``: drain diffusion capacitance (F) of a transistor.

        Area + sidewall + gate-overlap components for a contacted
        diffusion region of length ``DIFF_LENGTH_FACTOR * feature size``.
        """
        diff_len = k.DIFF_LENGTH_FACTOR * self.feature_size_um
        if pmos:
            area, side, ovlp = k.CPDIFF_AREA, k.CPDIFF_SIDE, k.CPDIFF_OVERLAP
        else:
            area, side, ovlp = k.CNDIFF_AREA, k.CNDIFF_SIDE, k.CNDIFF_OVERLAP
        return (
            area * width_um * diff_len
            + side * (width_um + 2.0 * diff_len)
            + ovlp * width_um
        )

    def total_cap(self, width_um: float, *, pmos: bool = False,
                  pass_gate: bool = False) -> float:
        """``Ca(T) = Cg(T) + Cd(T)``."""
        return self.gate_cap(width_um, pass_gate=pass_gate) + self.diff_cap(
            width_um, pmos=pmos
        )

    def wire_cap(self, length_um: float, *, layer: str = "word") -> float:
        """``Cw(L)``: capacitance (F) of a metal wire of given length.

        ``layer`` selects the metal layer model: ``"word"`` (wordline-layer
        metal), ``"bit"`` (bitline-layer metal) or ``"link"`` (global link
        metal anchored to the paper's 1.08 pF / 3 mm at 0.1 um).

        Capacitance per unit length is treated as technology-independent:
        wire aspect ratios are held roughly constant across process
        generations, so per-um wire capacitance stays near-constant while
        wire *lengths* shrink with the layout.  (The paper's own link
        figure, 0.36 fF/um at 0.1 um, is consistent with this.)  Only the
        lengths derived from cell geometry scale with feature size.
        """
        if length_um < 0:
            raise ValueError(f"wire length must be non-negative, got {length_um}")
        if layer == "word":
            per_um = k.CWORDMETAL_PER_UM
        elif layer == "bit":
            per_um = k.CBITMETAL_PER_UM
        elif layer == "link":
            per_um = k.CLINK_PER_UM_AT_0P1
        else:
            raise ValueError(f"unknown metal layer {layer!r}")
        return per_um * length_um

    # --- composite gates ----------------------------------------------------

    def inverter_cap(self, width_n_um: float, width_p_um: float) -> float:
        """``Ca`` of a CMOS inverter: both gates plus both drains."""
        return self.total_cap(width_n_um) + self.total_cap(width_p_um, pmos=True)

    def inverter_gate_cap(self, width_n_um: float, width_p_um: float) -> float:
        """Input (gate-only) capacitance of a CMOS inverter."""
        return self.gate_cap(width_n_um) + self.gate_cap(width_p_um)

    def inverter_drain_cap(self, width_n_um: float, width_p_um: float) -> float:
        """Output (drain-only) capacitance of a CMOS inverter."""
        return self.diff_cap(width_n_um) + self.diff_cap(width_p_um, pmos=True)

    # --- geometry -----------------------------------------------------------

    @property
    def cell_width_um(self) -> float:
        """Single-port SRAM cell width ``w_cell`` (um)."""
        return k.BASE_CELL_WIDTH * self.scale

    @property
    def cell_height_um(self) -> float:
        """Single-port SRAM cell height ``h_cell`` (um)."""
        return k.BASE_CELL_HEIGHT * self.scale

    @property
    def wire_spacing_um(self) -> float:
        """Wire pitch ``d_w`` (um)."""
        return k.BASE_WIRE_SPACING * self.scale

    @property
    def sense_amp_cap(self) -> float:
        """Equivalent switched capacitance of one sense amplifier (F)."""
        return k.BASE_SENSE_AMP_CAP * self.scale

    # --- energy -------------------------------------------------------------

    def switch_energy(self, cap_farads: float) -> float:
        """``E_x = 1/2 * C_x * Vdd^2`` (J): energy of one switching event."""
        return 0.5 * cap_farads * self.vdd * self.vdd


def _nearest(table: dict, feature: float) -> float:
    """Value from ``table`` whose key is closest to ``feature``."""
    key = min(table, key=lambda f: abs(f - feature))
    return table[key]
