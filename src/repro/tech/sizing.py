"""Transistor sizing helpers.

Orion lets transistor sizes be "user-input parameters, or automatically
determined ... with a set of default values from Cacti and applied with
scaling factors from Wattch.  Sizes of driver transistors, e.g. crossbar
input drivers, are computed according to their load capacitance."

This module implements both paths:

* :func:`default_width` looks up the scaled Cacti/Wattch default for a named
  device;
* :func:`driver_width_for_load` sizes a driver so its input presents a
  fixed fraction (one electrical *effort* stage) of the load it drives —
  the standard logical-effort final-stage rule.
"""

from __future__ import annotations

from repro.tech.technology import Technology

# Electrical effort of the final driver stage: the driver's input gate
# capacitance is load / DRIVER_STAGE_EFFORT.  Cacti uses staged drivers with
# per-stage fanout near 4; a single lumped stage with effort ~10 models the
# whole chain's final-stage contribution.
DRIVER_STAGE_EFFORT = 10.0

# PMOS width relative to NMOS width in a driver (mobility compensation).
PMOS_TO_NMOS_RATIO = 2.0


def default_width(tech: Technology, name: str) -> float:
    """Scaled default width (um) of the named device at this node."""
    return tech.scaled_width(name)


def driver_width_for_load(tech: Technology, load_cap: float) -> tuple[float, float]:
    """Size an inverter driver for ``load_cap`` farads.

    Returns ``(width_n_um, width_p_um)`` such that the driver's total input
    gate capacitance is ``load_cap / DRIVER_STAGE_EFFORT``, split between
    NMOS and PMOS at :data:`PMOS_TO_NMOS_RATIO`.

    A minimum width of one feature size is enforced so tiny loads still get
    a physical transistor.
    """
    if load_cap < 0:
        raise ValueError(f"load capacitance must be non-negative, got {load_cap}")
    target_gate_cap = load_cap / DRIVER_STAGE_EFFORT
    # Cg(w) ~= per_area * w * leff + cpoly * w  => solve for total width.
    per_um = tech.gate_cap(1.0)
    total_width = target_gate_cap / per_um if per_um > 0 else 0.0
    width_n = total_width / (1.0 + PMOS_TO_NMOS_RATIO)
    width_p = width_n * PMOS_TO_NMOS_RATIO
    minimum = tech.feature_size_um
    return max(width_n, minimum), max(width_p, minimum)


def driver_total_cap(tech: Technology, load_cap: float) -> float:
    """``Ca`` (gate + drain) of a driver sized for ``load_cap``."""
    width_n, width_p = driver_width_for_load(tech, load_cap)
    return tech.inverter_cap(width_n, width_p)


def driver_drain_cap(tech: Technology, load_cap: float) -> float:
    """Output (drain) capacitance of a driver sized for ``load_cap``."""
    width_n, width_p = driver_width_for_load(tech, load_cap)
    return tech.inverter_drain_cap(width_n, width_p)
