"""Base CMOS process constants for the capacitance substrate.

Orion derives switch capacitances from per-transistor gate and diffusion
capacitances and per-length wire capacitances, computed "using Cacti" [23]
with scaling factors "from Wattch" [3].  Both tools anchor their constants in
a 0.8 um process (Wilton & Jouppi, DEC WRL TR 93/5) and scale linearly with
feature size.  We embed the same public base constants here and scale them in
:class:`repro.tech.technology.Technology`.

All capacitances are in farads, all lengths and widths in micrometres (um),
following Cacti's conventions.
"""

# Feature size the base constants are characterised at (um).
BASE_FEATURE_SIZE_UM = 0.8

# Effective gate length at the base feature size (um).
BASE_LEFF_UM = 0.8

# --- Gate capacitance ------------------------------------------------------
# Gate oxide capacitance per unit gate area (F/um^2).
CGATE_PER_AREA = 1.95e-15
# Gate capacitance of a pass transistor per unit area (F/um^2); pass gates
# see a slightly lower effective capacitance in Cacti.
CGATEPASS_PER_AREA = 1.45e-15
# Polysilicon overhang capacitance per unit transistor width (F/um).
CPOLYWIRE_PER_UM = 0.25e-15

# --- Diffusion capacitance -------------------------------------------------
# Area capacitance of n/p diffusion (F/um^2).
CNDIFF_AREA = 0.137e-15
CPDIFF_AREA = 0.343e-15
# Sidewall capacitance of n/p diffusion (F/um of perimeter).
CNDIFF_SIDE = 0.275e-15
CPDIFF_SIDE = 0.275e-15
# Gate-drain overlap capacitance (F/um of width).
CNDIFF_OVERLAP = 0.138e-15
CPDIFF_OVERLAP = 0.138e-15

# Length of a source/drain diffusion region, in multiples of the feature
# size (Cacti uses 3.05 * feature size for a contacted diffusion).
DIFF_LENGTH_FACTOR = 3.05

# --- Wire capacitance ------------------------------------------------------
# Metal wire capacitance per unit length at the base feature size (F/um).
# Cacti distinguishes wordline-layer and bitline-layer metal.
CWORDMETAL_PER_UM = 1.8e-15
CBITMETAL_PER_UM = 4.4e-15

# On-chip global link wire capacitance.  The paper (section 4.2) uses
# 1.08 pF per 3 mm of link at 0.1 um, i.e. 0.36 fF/um; we anchor the link
# metal constant so that the 0.1 um technology reproduces that figure.
CLINK_PER_UM_AT_0P1 = 1.08e-12 / 3000.0  # = 3.6e-16 F/um at 0.1 um

# --- Default supply voltages by feature size (um -> V) ---------------------
# Representative Vdd values for each process generation (ITRS-era defaults;
# the paper's on-chip study uses 1.2 V at 0.1 um).
DEFAULT_VDD_BY_FEATURE = {
    0.8: 5.0,
    0.35: 3.3,
    0.25: 2.5,
    0.18: 1.8,
    0.13: 1.5,
    0.10: 1.2,
    0.07: 1.0,
}

# --- Default clock frequencies by feature size (um -> Hz) ------------------
DEFAULT_FREQ_BY_FEATURE = {
    0.8: 200e6,
    0.35: 450e6,
    0.25: 600e6,
    0.18: 1.0e9,
    0.13: 1.5e9,
    0.10: 2.0e9,
    0.07: 3.0e9,
}

# --- Default transistor widths (um, at the base 0.8 um process) ------------
# Cacti/Wattch-lineage sizing; scaled linearly with feature size.
BASE_WIDTHS = {
    # SRAM cell
    "memcell_access": 2.4,     # pass transistor connecting bitline and cell
    "memcell_nmos": 2.0,       # cell inverter NMOS
    "memcell_pmos": 4.0,       # cell inverter PMOS
    "precharge": 10.0,         # bitline precharge/equalisation PMOS
    "wordline_driver_n": 38.4, # wordline driver (sized for a 64-bit row)
    "wordline_driver_p": 76.8,
    "bitline_driver_n": 19.2,  # write bitline driver
    "bitline_driver_p": 38.4,
    # Crossbar
    "crossbar_pass": 6.0,      # crosspoint connector transistor
    "crossbar_in_driver_n": 30.0,
    "crossbar_in_driver_p": 60.0,
    "crossbar_out_driver_n": 30.0,
    "crossbar_out_driver_p": 60.0,
    # Arbiter logic
    "nor_gate_n": 4.0,         # first/second level NOR transistors
    "nor_gate_p": 8.0,
    "inverter_n": 4.0,
    "inverter_p": 8.0,
    # Flip-flop internals
    "ff_inverter_n": 3.0,
    "ff_inverter_p": 6.0,
    "ff_pass": 2.4,
}

# --- Memory cell geometry (um, at the base 0.8 um process) -----------------
# A single-ported 6T SRAM cell footprint; each extra port widens/heightens
# the cell by one wire pitch per the FIFO model's length equations.
BASE_CELL_WIDTH = 12.8   # w_cell
BASE_CELL_HEIGHT = 12.8  # h_cell
BASE_WIRE_SPACING = 3.2  # d_w (wire pitch)

# --- Sense amplifier -------------------------------------------------------
# Empirical per-bit sense-amplifier energy model [Zyuban & Kogge, ISLPED'98]:
# modelled as an equivalent switched capacitance per sensed bit at the base
# process, scaled with feature size and Vdd^2 like the rest of the model.
BASE_SENSE_AMP_CAP = 12.0e-15  # F per bit sensed, at 0.8 um
