"""Technology substrate: CMOS process constants and capacitance primitives.

This package stands in for Cacti [23] + Wattch [3] in the original Orion:
it provides gate, diffusion and wire capacitances (``Cg``, ``Cd``, ``Cw`` of
the paper's Table 1) for any feature size, plus default transistor sizing
and load-driven driver sizing.
"""

from repro.tech.technology import Technology
from repro.tech.sizing import (
    default_width,
    driver_width_for_load,
    driver_total_cap,
    driver_drain_cap,
)

__all__ = [
    "Technology",
    "default_width",
    "driver_width_for_load",
    "driver_total_cap",
    "driver_drain_cap",
]
