"""Link power models (section 3.2, "Link power modeling", and section 4.4).

Two link families with very different power characteristics:

* :class:`OnChipLinkPower` — an on-chip wire bundle whose energy is
  capacitive and therefore *traffic-sensitive*: ``E = 1/2 * C_wire * Vdd^2``
  per switching bit.  The paper's on-chip study uses 1.08 pF per 3 mm of
  link at 0.1 um, which this model reproduces via the technology's
  ``link`` metal layer.
* :class:`ChipToChipLinkPower` — a high-speed differentially-signalled
  chip-to-chip link that "consumes almost the same power regardless of
  link activity" (section 4.4); modelled as constant power, plugged in
  from a datasheet figure (3 W for a 32 Gb/s IBM InfiniBand-style link).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.power.base import EnergyModel, expected_switches


@dataclass(frozen=True)
class OnChipLinkPower(EnergyModel):
    """Capacitive on-chip link of ``width_bits`` wires, ``length_mm`` long."""

    length_mm: float = 3.0
    width_bits: int = 32

    wire_cap_per_bit: float = field(init=False)

    def __post_init__(self) -> None:
        if self.length_mm <= 0:
            raise ValueError(f"link length must be positive, got {self.length_mm}")
        if self.width_bits < 1:
            raise ValueError(f"link width must be >= 1, got {self.width_bits}")
        cap = self.tech.wire_cap(self.length_mm * 1000.0, layer="link")
        object.__setattr__(self, "wire_cap_per_bit", cap)

    @property
    def is_traffic_sensitive(self) -> bool:
        """On-chip links burn energy only when bits toggle."""
        return True

    @property
    def bit_energy(self) -> float:
        """Energy of one wire toggling once."""
        return self.switch_energy(self.wire_cap_per_bit)

    def traversal_energy(self,
                         old_value: Optional[int] = None,
                         new_value: Optional[int] = None) -> float:
        """``E_link``: one flit crossing the link.

        Charges one wire toggle per bit that differs from the previous
        flit on the link (random-data expectation when payloads are not
        tracked).
        """
        switching = expected_switches(self.width_bits, old_value, new_value)
        return switching * self.bit_energy

    def idle_energy_per_cycle(self) -> float:
        """On-chip links dissipate (to first order) nothing when idle."""
        return 0.0

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "length_mm": self.length_mm,
            "width_bits": self.width_bits,
            "wire_cap_per_bit_f": self.wire_cap_per_bit,
            "traversal_energy_j": self.traversal_energy(),
        }


@dataclass(frozen=True)
class BusInvertLinkPower(OnChipLinkPower):
    """On-chip link with bus-invert coding — a power-efficiency
    technique of the kind the paper positions Orion to evaluate
    (usage category 3).

    The sender transmits either the flit or its complement, whichever
    toggles fewer wires, plus one invert-indication wire: at most
    ``W/2 + 1`` transitions instead of up to ``W``.  With payload
    tracking the exact coded Hamming distance is charged; in average
    mode the exact expectation of ``min(d, W - d) + 1`` over random
    data is precomputed from the binomial distribution.
    """

    expected_coded_switches: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "expected_coded_switches",
                           _expected_bus_invert_switches(self.width_bits))

    def traversal_energy(self,
                         old_value: Optional[int] = None,
                         new_value: Optional[int] = None) -> float:
        if old_value is None or new_value is None:
            switching = self.expected_coded_switches
        else:
            distance = expected_switches(self.width_bits, old_value,
                                         new_value)
            switching = min(distance, self.width_bits - distance) + 1.0
        return switching * self.bit_energy

    def describe(self) -> dict:
        base = super().describe()
        base["encoding"] = "bus_invert"
        base["expected_coded_switches"] = self.expected_coded_switches
        base["traversal_energy_j"] = self.traversal_energy()
        return base


def _expected_bus_invert_switches(width: int) -> float:
    """``E[min(d, W - d) + 1]`` for ``d ~ Binomial(W, 1/2)``."""
    import math
    total = 0.0
    scale = 2.0 ** width
    for d in range(width + 1):
        total += math.comb(width, d) / scale * min(d, width - d)
    return total + 1.0


@dataclass(frozen=True)
class ChipToChipLinkPower(EnergyModel):
    """Constant-power chip-to-chip link (differential signalling).

    ``power_watts`` defaults to the paper's 3 W figure for a 32 Gb/s link
    (from the 3 W consumption of a 30 Gb/s IBM InfiniBand 12X link).
    """

    power_watts: float = 3.0
    width_bits: int = 32

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise ValueError(f"link power must be >= 0, got {self.power_watts}")
        if self.width_bits < 1:
            raise ValueError(f"link width must be >= 1, got {self.width_bits}")

    @property
    def is_traffic_sensitive(self) -> bool:
        """Chip-to-chip links burn the same power loaded or idle."""
        return False

    def traversal_energy(self,
                         old_value: Optional[int] = None,
                         new_value: Optional[int] = None) -> float:
        """Traffic adds no energy beyond the constant baseline."""
        return 0.0

    def idle_energy_per_cycle(self) -> float:
        """Constant energy per clock cycle: ``P / f_clk``."""
        return self.power_watts / self.tech.frequency_hz

    def describe(self) -> dict:
        """Parameters for reports and validation."""
        return {
            "power_watts": self.power_watts,
            "width_bits": self.width_bits,
            "energy_per_cycle_j": self.idle_energy_per_cycle(),
        }
