"""Central buffer power model — hierarchical composition (section 3.2).

Central buffers are "pipelined shared memories ... essentially regular SRAM
banks connected by pipeline registers, with two crossbars facilitating the
pipelined data I/O" [Katevenis et al.].  Following the paper's model-reuse
methodology, this model is assembled from lower-level models rather than
derived from scratch:

* the SRAM banks reuse :class:`repro.power.buffer.FIFOBufferPower`;
* the pipeline registers reuse :class:`repro.power.flipflop.FlipFlopPower`
  (the flip-flop subcomponent of the arbiter model);
* the input and output crossbars reuse
  :class:`repro.power.crossbar.MatrixCrossbarPower`.

A write moves a flit: input crossbar (router ports -> write ports) ->
pipeline register -> bank write.  A read is the mirror image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.power.base import EnergyModel, expected_switches
from repro.power.buffer import FIFOBufferPower
from repro.power.crossbar import MatrixCrossbarPower
from repro.power.flipflop import FlipFlopPower


@dataclass(frozen=True)
class CentralBufferPower(EnergyModel):
    """Power model of a banked, shared central buffer.

    Parameters
    ----------
    rows:
        Number of rows ("chunks") per bank.
    banks:
        Number of SRAM banks; a row across all banks holds ``banks`` flits
        (the paper's CB config: 4 banks, each 1 flit wide, 2560 rows).
    flit_bits:
        Flit width in bits (each bank is one flit wide).
    read_ports / write_ports:
        Fabric ports of the shared memory (2 and 2 in the paper's CB
        config) — these limit how many flits enter/leave per cycle.
    router_ports:
        Router I/O ports the two internal crossbars connect to (5 in the
        paper's experiments).
    row_access:
        When True (default), the banks share a row decoder and wordline —
        the SP2-style pipelined shared memory, where every access
        activates the full ``banks``-flit-wide row even when moving a
        single flit.  This is what makes "a central buffer consume[...]
        much more energy than a crossbar due to its higher switching
        capacitance" (section 4.4).  When False, each bank is gated
        independently and an access only energises one flit's worth of
        row — an idealised design provided for ablation.
    """

    rows: int = 2560
    banks: int = 4
    flit_bits: int = 32
    read_ports: int = 2
    write_ports: int = 2
    router_ports: int = 5
    row_access: bool = True

    bank_model: FIFOBufferPower = field(init=False)
    register_model: FlipFlopPower = field(init=False)
    input_crossbar: MatrixCrossbarPower = field(init=False)
    output_crossbar: MatrixCrossbarPower = field(init=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.banks < 1:
            raise ValueError("central buffer needs >= 1 row and >= 1 bank")
        if self.flit_bits < 1:
            raise ValueError(f"flit width must be >= 1, got {self.flit_bits}")
        if self.read_ports < 1 or self.write_ports < 1:
            raise ValueError("central buffer needs read and write ports")
        if self.router_ports < 1:
            raise ValueError("central buffer needs router ports")
        tech = self.tech
        set_ = object.__setattr__
        # The SRAM array energised per access: the full banks-wide row in
        # row_access mode, or a single bank's flit otherwise.
        access_bits = self.banks * self.flit_bits if self.row_access \
            else self.flit_bits
        set_(self, "bank_model", FIFOBufferPower(
            tech,
            depth_flits=self.rows,
            flit_bits=access_bits,
            read_ports=self.read_ports,
            write_ports=self.write_ports,
        ))
        set_(self, "register_model", FlipFlopPower(tech))
        set_(self, "input_crossbar", MatrixCrossbarPower(
            tech,
            inputs=self.router_ports,
            outputs=self.write_ports,
            width_bits=self.flit_bits,
        ))
        set_(self, "output_crossbar", MatrixCrossbarPower(
            tech,
            inputs=self.read_ports,
            outputs=self.router_ports,
            width_bits=self.flit_bits,
        ))

    @property
    def capacity_flits(self) -> int:
        """Total storage: ``rows * banks`` flits."""
        return self.rows * self.banks

    @property
    def access_bits(self) -> int:
        """Bits energised per shared-memory access."""
        return self.banks * self.flit_bits if self.row_access \
            else self.flit_bits

    def _register_energy(self, switching_bits: float) -> float:
        """Clock the chunk-wide pipeline register; flip the switching
        bits."""
        clock = self.access_bits * self.register_model.clock_energy
        flips = switching_bits * self.register_model.data_switch_energy
        return clock + flips

    def write_energy(self,
                     old_value: Optional[int] = None,
                     new_value: Optional[int] = None) -> float:
        """Energy of moving one flit into the central buffer.

        Input crossbar traversal + pipeline register + bank SRAM write.
        """
        switching = expected_switches(self.flit_bits, old_value, new_value)
        return (
            self.input_crossbar.traversal_energy(old_value, new_value)
            + self._register_energy(switching)
            + self.bank_model.write_energy(old_value, new_value)
        )

    def read_energy(self,
                    old_value: Optional[int] = None,
                    new_value: Optional[int] = None) -> float:
        """Energy of moving one flit out of the central buffer.

        Bank SRAM read + pipeline register + output crossbar traversal.
        """
        switching = expected_switches(self.flit_bits, old_value, new_value)
        return (
            self.bank_model.read_energy()
            + self._register_energy(switching)
            + self.output_crossbar.traversal_energy(old_value, new_value)
        )

    def describe(self) -> dict:
        """Composition summary for reports and validation."""
        return {
            "rows": self.rows,
            "banks": self.banks,
            "flit_bits": self.flit_bits,
            "read_ports": self.read_ports,
            "write_ports": self.write_ports,
            "router_ports": self.router_ports,
            "row_access": self.row_access,
            "access_bits": self.access_bits,
            "capacity_flits": self.capacity_flits,
            "write_energy_j": self.write_energy(),
            "read_energy_j": self.read_energy(),
            "bank": self.bank_model.describe(),
            "input_crossbar": self.input_crossbar.describe(),
            "output_crossbar": self.output_crossbar.describe(),
        }
