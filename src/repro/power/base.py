"""Shared machinery for the architectural power models.

Every component power model in this package follows the paper's recipe:

1. describe the component's canonical circuit structure in terms of
   *architectural* parameters (buffer depth, flit width, port counts) and
   *technological* parameters (cell geometry, transistor sizes);
2. derive parameterised switch-capacitance equations for each circuit node
   (wordlines, bitlines, crossbar input/output/control lines, ...);
3. combine the capacitances with switching-activity counts — either the
   default random-data expectation or exact counts observed during
   simulation — into per-operation energies.

Dynamic power then follows as ``P = E * f_clk`` with
``E = 1/2 * alpha * C * Vdd^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.tech.technology import Technology

# Expected fraction of lines that switch per operation under random data:
# each line toggles with probability 1/2.
RANDOM_SWITCHING_FACTOR = 0.5


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    if a < 0 or b < 0:
        raise ValueError("hamming_distance operands must be non-negative")
    return bin(a ^ b).count("1")


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount operand must be non-negative")
    return bin(value).count("1")


@dataclass(frozen=True)
class EnergyModel:
    """Base class binding a component model to a :class:`Technology`."""

    tech: Technology

    def switch_energy(self, cap: float) -> float:
        """Energy (J) of one full switching event on a node of cap ``cap``."""
        return self.tech.switch_energy(cap)


def expected_switches(width_bits: int,
                      old_value: Optional[int],
                      new_value: Optional[int]) -> float:
    """How many of ``width_bits`` lines switch for a data transfer.

    With both values supplied, returns the exact Hamming distance (the
    simulator's tracked switching activity).  With either missing, returns
    the random-data expectation ``width / 2``.
    """
    if width_bits < 0:
        raise ValueError(f"width must be non-negative, got {width_bits}")
    if old_value is None or new_value is None:
        return RANDOM_SWITCHING_FACTOR * width_bits
    return float(hamming_distance(old_value, new_value))
