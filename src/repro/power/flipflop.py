"""Flip-flop (register) power subcomponent.

Arbiters keep their priority state in flip-flops, and central buffers use
pipeline registers between SRAM banks and their I/O crossbars (section 3.2:
"we reused ... the flip-flop subcomponent models from our arbiter model for
the pipeline registers").

We model a standard transmission-gate master-slave D flip-flop: two
latches, each an inverter pair plus pass gates.  Two energies are exposed:

* ``clock_energy`` — the clock node toggling (charged every cycle the
  register is clocked, independent of data);
* ``switch_energy`` — the internal nodes flipping when the stored bit
  changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.base import EnergyModel


@dataclass(frozen=True)
class FlipFlopPower(EnergyModel):
    """Power model of one D flip-flop bit."""

    internal_cap: float = field(init=False)
    clock_cap: float = field(init=False)

    def __post_init__(self) -> None:
        tech = self.tech
        inv_n = tech.scaled_width("ff_inverter_n")
        inv_p = tech.scaled_width("ff_inverter_p")
        pass_w = tech.scaled_width("ff_pass")
        # Four inverters (master + slave latch pairs) plus four pass-gate
        # diffusion loads on the internal nodes.
        internal = 4.0 * tech.inverter_cap(inv_n, inv_p) + 4.0 * tech.diff_cap(
            pass_w
        )
        # The clock drives the gates of the four pass transistors.
        clock = 4.0 * tech.gate_cap(pass_w, pass_gate=True)
        object.__setattr__(self, "internal_cap", internal)
        object.__setattr__(self, "clock_cap", clock)

    @property
    def data_switch_energy(self) -> float:
        """Energy when the stored bit flips."""
        return self.switch_energy(self.internal_cap)

    @property
    def clock_energy(self) -> float:
        """Energy of one clock toggle at this flip-flop."""
        return self.switch_energy(self.clock_cap)

    def write_energy(self, bit_changed: bool = True) -> float:
        """Energy of clocking the flip-flop once.

        The clock node always switches; internal nodes only when the
        stored value changes.
        """
        energy = self.clock_energy
        if bit_changed:
            energy += self.data_switch_energy
        return energy

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "internal_cap_f": self.internal_cap,
            "clock_cap_f": self.clock_cap,
            "data_switch_energy_j": self.data_switch_energy,
            "clock_energy_j": self.clock_energy,
        }
