"""FIFO buffer power model (paper Table 2).

Router buffers are SRAM arrays of ``B`` flits by ``F`` bits with ``P_r``
read and ``P_w`` write ports.  The model derives wordline, bitline,
precharge and memory-cell capacitances from the array geometry and per-port
wire pitch overhead, then composes them into read/write operation energies:

* ``E_read = E_wl + F * (E_br + 2*E_chg + E_amp)``
* ``E_wrt  = E_wl + delta_bw * E_bw + delta_bc * E_cell``

where ``delta_bw`` is the number of switching write bitlines and
``delta_bc`` the number of switching memory cells — tracked from flit
payloads during simulation, or defaulted to the random-data expectation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.power.base import EnergyModel, expected_switches
from repro.tech.technology import Technology


@dataclass(frozen=True)
class FIFOBufferPower(EnergyModel):
    """Power model of a ``B x F``-bit SRAM FIFO with ``P_r``/``P_w`` ports.

    Parameters mirror the paper's architectural parameters:

    - ``depth_flits`` — buffer size in flits (``B``)
    - ``flit_bits`` — flit size in bits (``F``)
    - ``read_ports`` — number of read ports (``P_r``)
    - ``write_ports`` — number of write ports (``P_w``)

    A buffer with a dedicated port to the switch "does not require
    tri-state output drivers" (section 3.1), so none are modelled.
    """

    depth_flits: int = 4
    flit_bits: int = 32
    read_ports: int = 1
    write_ports: int = 1

    # Derived capacitances, filled in __post_init__.
    wordline_cap: float = field(init=False)
    read_bitline_cap: float = field(init=False)
    write_bitline_cap: float = field(init=False)
    precharge_cap: float = field(init=False)
    cell_cap: float = field(init=False)

    def __post_init__(self) -> None:
        if self.depth_flits < 1:
            raise ValueError(f"buffer depth must be >= 1, got {self.depth_flits}")
        if self.flit_bits < 1:
            raise ValueError(f"flit width must be >= 1, got {self.flit_bits}")
        if self.read_ports < 1 or self.write_ports < 1:
            raise ValueError("buffers need at least one read and one write port")
        tech = self.tech
        set_ = object.__setattr__
        set_(self, "wordline_cap", self._wordline_cap(tech))
        set_(self, "read_bitline_cap", self._read_bitline_cap(tech))
        set_(self, "write_bitline_cap", self._write_bitline_cap(tech))
        set_(self, "precharge_cap", tech.gate_cap(tech.scaled_width("precharge")))
        set_(self, "cell_cap", self._cell_cap(tech))

    # --- geometry (Table 2, capacitance equations) --------------------------

    @property
    def ports(self) -> int:
        """Total ports ``P_r + P_w``."""
        return self.read_ports + self.write_ports

    @property
    def wordline_length_um(self) -> float:
        """``L_wl = F * (w_cell + 2*(P_r+P_w)*d_w)``."""
        tech = self.tech
        return self.flit_bits * (
            tech.cell_width_um + 2.0 * self.ports * tech.wire_spacing_um
        )

    @property
    def bitline_length_um(self) -> float:
        """``L_bl = B * (h_cell + (P_r+P_w)*d_w)``."""
        tech = self.tech
        return self.depth_flits * (
            tech.cell_height_um + self.ports * tech.wire_spacing_um
        )

    # --- per-node capacitances ----------------------------------------------

    def _wordline_cap(self, tech: Technology) -> float:
        """``C_wl = 2*F*Cg(T_p) + Ca(T_wd) + Cw(L_wl)``."""
        pass_gate_cap = tech.gate_cap(
            tech.scaled_width("memcell_access"), pass_gate=True
        )
        driver_cap = tech.inverter_cap(
            tech.scaled_width("wordline_driver_n"),
            tech.scaled_width("wordline_driver_p"),
        )
        wire = tech.wire_cap(self.wordline_length_um, layer="word")
        return 2.0 * self.flit_bits * pass_gate_cap + driver_cap + wire

    def _read_bitline_cap(self, tech: Technology) -> float:
        """``C_br = B*Cd(T_p) + Cd(T_c) + Cw(L_bl)``."""
        pass_drain = tech.diff_cap(tech.scaled_width("memcell_access"))
        precharge_drain = tech.diff_cap(tech.scaled_width("precharge"), pmos=True)
        wire = tech.wire_cap(self.bitline_length_um, layer="bit")
        return self.depth_flits * pass_drain + precharge_drain + wire

    def _write_bitline_cap(self, tech: Technology) -> float:
        """``C_bw = B*Cd(T_p) + Ca(T_bd) + Cw(L_bl)``."""
        pass_drain = tech.diff_cap(tech.scaled_width("memcell_access"))
        driver_cap = tech.inverter_cap(
            tech.scaled_width("bitline_driver_n"),
            tech.scaled_width("bitline_driver_p"),
        )
        wire = tech.wire_cap(self.bitline_length_um, layer="bit")
        return self.depth_flits * pass_drain + driver_cap + wire

    def _cell_cap(self, tech: Technology) -> float:
        """``C_cell = 2*(P_r+P_w)*Cd(T_p) + 2*Ca(T_m)``.

        A cell's internal node sees the drains of its port pass transistors
        (two per port, one per bitline of the differential pair) plus both
        cross-coupled inverters.
        """
        pass_drain = tech.diff_cap(tech.scaled_width("memcell_access"))
        inverter = tech.inverter_cap(
            tech.scaled_width("memcell_nmos"), tech.scaled_width("memcell_pmos")
        )
        return 2.0 * self.ports * pass_drain + 2.0 * inverter

    # --- per-operation energies (Table 2) ------------------------------------

    @property
    def wordline_energy(self) -> float:
        """``E_wl``: energy of asserting one wordline."""
        return self.switch_energy(self.wordline_cap)

    @property
    def read_bitline_energy(self) -> float:
        """``E_br``: energy of one read-bitline swing."""
        return self.switch_energy(self.read_bitline_cap)

    @property
    def write_bitline_energy(self) -> float:
        """``E_bw``: energy of one write-bitline swing."""
        return self.switch_energy(self.write_bitline_cap)

    @property
    def precharge_energy(self) -> float:
        """``E_chg``: energy of precharging one bitline."""
        return self.switch_energy(self.precharge_cap)

    @property
    def cell_energy(self) -> float:
        """``E_cell``: energy of flipping one memory cell."""
        return self.switch_energy(self.cell_cap)

    @property
    def sense_amp_energy(self) -> float:
        """``E_amp``: per-bit sense amplifier energy (empirical [28])."""
        return self.switch_energy(self.tech.sense_amp_cap)

    def read_energy(self) -> float:
        """``E_read = E_wl + F*(E_br + 2*E_chg + E_amp)``.

        Reads drive the full row: every bit discharges one of its two
        precharged read bitlines and fires its sense amp; both bitlines of
        each pair are then precharged back.
        """
        per_bit = (
            self.read_bitline_energy
            + 2.0 * self.precharge_energy
            + self.sense_amp_energy
        )
        return self.wordline_energy + self.flit_bits * per_bit

    def write_energy(self,
                     old_value: Optional[int] = None,
                     new_value: Optional[int] = None) -> float:
        """``E_wrt = E_wl + delta_bw*E_bw + delta_bc*E_cell``.

        With both payloads given, ``delta_bw`` and ``delta_bc`` are the
        exact Hamming distance between the previous cell contents and the
        written flit; otherwise the random-data expectation ``F/2`` is used
        (the simulator passes payloads when data-tracking is enabled).
        """
        switching = expected_switches(self.flit_bits, old_value, new_value)
        return (
            self.wordline_energy
            + switching * self.write_bitline_energy
            + switching * self.cell_energy
        )

    # --- reporting ------------------------------------------------------------

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "depth_flits": self.depth_flits,
            "flit_bits": self.flit_bits,
            "read_ports": self.read_ports,
            "write_ports": self.write_ports,
            "wordline_length_um": self.wordline_length_um,
            "bitline_length_um": self.bitline_length_um,
            "wordline_cap_f": self.wordline_cap,
            "read_bitline_cap_f": self.read_bitline_cap,
            "write_bitline_cap_f": self.write_bitline_cap,
            "precharge_cap_f": self.precharge_cap,
            "cell_cap_f": self.cell_cap,
            "read_energy_j": self.read_energy(),
            "write_energy_j": self.write_energy(),
        }
