"""Architectural-level parameterized power models (paper section 3).

The component library: FIFO buffers (Table 2), crossbars (Table 3),
arbiters (Table 4), flip-flops, hierarchically-composed central buffers,
and links.  Each model derives switch capacitances from architectural and
technological parameters and exposes per-operation energies; switching
activity comes from the simulator (or random-data defaults).

These models are usable standalone — independent from the simulator — as
the paper's release plan describes ("either as a separate power analysis
tool, or as a plug-in to other network simulators").
"""

from repro.power.base import (
    EnergyModel,
    RANDOM_SWITCHING_FACTOR,
    expected_switches,
    hamming_distance,
    popcount,
)
from repro.power.buffer import FIFOBufferPower
from repro.power.crossbar import MatrixCrossbarPower, MuxTreeCrossbarPower
from repro.power.arbiter import (
    MatrixArbiterPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.power.clock import ClockPower
from repro.power.flipflop import FlipFlopPower
from repro.power.central_buffer import CentralBufferPower
from repro.power.link import (
    BusInvertLinkPower,
    ChipToChipLinkPower,
    OnChipLinkPower,
)
from repro.power import area
from repro.power import leakage

__all__ = [
    "EnergyModel",
    "RANDOM_SWITCHING_FACTOR",
    "expected_switches",
    "hamming_distance",
    "popcount",
    "FIFOBufferPower",
    "MatrixCrossbarPower",
    "MuxTreeCrossbarPower",
    "MatrixArbiterPower",
    "RoundRobinArbiterPower",
    "QueuingArbiterPower",
    "FlipFlopPower",
    "ClockPower",
    "CentralBufferPower",
    "OnChipLinkPower",
    "BusInvertLinkPower",
    "ChipToChipLinkPower",
    "area",
    "leakage",
]
