"""Clock power — an extension beyond the paper.

Like leakage, clock distribution is outside the MICRO 2002 paper's
scope (its models cover the switched datapath), but it is a major term
in real routers — Wattch budgets it explicitly for processors, and the
gap between our dynamic-datapath estimate and the Alpha 21364's
published 25 W (see :mod:`repro.validation`) is largely clocking and
control.

The model charges, once per cycle:

* the clock input capacitance of every flip-flop bit in the router's
  pipeline registers and arbiter state, and
* an H-tree distribution wire spanning the router's silicon area
  (length ``~2 * (width + height)`` of the bounding square), plus its
  repeater drivers,

at a full swing per cycle: ``E_cycle = C_clk * Vdd^2`` (the clock node
charges and discharges every period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.power.base import EnergyModel
from repro.power.flipflop import FlipFlopPower
from repro.tech import sizing


@dataclass(frozen=True)
class ClockPower(EnergyModel):
    """Clock energy of one router.

    Parameters
    ----------
    registered_bits:
        Total flip-flop bits clocked each cycle (pipeline registers,
        arbiter priority/pointer state).
    area_um2:
        Router silicon area; sets the clock-tree wire length.
    """

    registered_bits: int = 0
    area_um2: float = 0.0

    flipflop: FlipFlopPower = field(init=False)
    clock_cap: float = field(init=False)

    def __post_init__(self) -> None:
        if self.registered_bits < 0:
            raise ValueError(
                f"registered_bits must be >= 0, got {self.registered_bits}"
            )
        if self.area_um2 < 0:
            raise ValueError(
                f"area_um2 must be >= 0, got {self.area_um2}"
            )
        tech = self.tech
        object.__setattr__(self, "flipflop", FlipFlopPower(tech))
        loads = self.registered_bits * self.flipflop.clock_cap
        # H-tree trunk + branches across the bounding square: ~4 side
        # lengths of wire.
        side = math.sqrt(self.area_um2)
        wire = tech.wire_cap(4.0 * side, layer="word")
        drivers = sizing.driver_total_cap(tech, loads + wire)
        object.__setattr__(self, "clock_cap", loads + wire + drivers)

    def energy_per_cycle(self) -> float:
        """Full-swing clock energy per period: ``C_clk * Vdd^2``."""
        return self.clock_cap * self.tech.vdd * self.tech.vdd

    def power_watts(self) -> float:
        """Clock power at the technology's configured frequency."""
        return self.energy_per_cycle() * self.tech.frequency_hz

    def describe(self) -> dict:
        """Parameters and energies for reports and validation."""
        return {
            "registered_bits": self.registered_bits,
            "area_um2": self.area_um2,
            "clock_cap_f": self.clock_cap,
            "energy_per_cycle_j": self.energy_per_cycle(),
            "power_w": self.power_watts(),
        }
