"""Static (leakage) power — an extension beyond the paper.

The MICRO 2002 paper models dynamic power only; leakage was added to the
Orion lineage later (Orion 2.0).  We provide it as an optional extension
following the Butts-Sohi architectural static-power model (the paper's
reference [4]):

    P_static = Vdd * N * k_design * I_leak

which we evaluate in width-normalised form: every component exposes its
total transistor width (um), and the technology supplies a per-um
subthreshold leakage current for the process node.  Static power is then

    P_static = Vdd * W_total_um * I_off_per_um

Inventory functions here derive ``W_total_um`` for each component power
model from the same architectural parameters the dynamic models use.
Enable end-to-end via ``NetworkConfig(include_leakage=True)``.
"""

from __future__ import annotations

from typing import Union

from repro.power.arbiter import (
    MatrixArbiterPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.power.buffer import FIFOBufferPower
from repro.power.central_buffer import CentralBufferPower
from repro.power.crossbar import MatrixCrossbarPower, MuxTreeCrossbarPower
from repro.power.flipflop import FlipFlopPower
from repro.tech.technology import Technology

#: Subthreshold leakage current per um of transistor width, by feature
#: size (A/um).  Approximate ITRS-era trend: leakage grows steeply as
#: threshold voltages scale down.
IOFF_PER_UM_BY_FEATURE = {
    0.8: 1e-12,
    0.35: 1e-11,
    0.25: 1e-10,
    0.18: 1e-9,
    0.13: 5e-9,
    0.10: 2e-8,
    0.07: 1e-7,
}

#: Butts-Sohi design-dependent factor: fraction of devices leaking on
#: average (stacking, body effect, state dependence folded together).
K_DESIGN = 0.5


def ioff_per_um(tech: Technology) -> float:
    """Leakage current per um of width at this node (A/um)."""
    key = min(IOFF_PER_UM_BY_FEATURE,
              key=lambda f: abs(f - tech.feature_size_um))
    return IOFF_PER_UM_BY_FEATURE[key]


def static_power(tech: Technology, total_width_um: float) -> float:
    """``P_static = Vdd * W_total * k_design * I_off`` (W)."""
    if total_width_um < 0:
        raise ValueError(
            f"total width must be >= 0, got {total_width_um}"
        )
    return tech.vdd * total_width_um * K_DESIGN * ioff_per_um(tech)


# --- per-component transistor-width inventories -----------------------------

def flipflop_width_um(model: FlipFlopPower) -> float:
    """Four inverters plus four pass transistors."""
    tech = model.tech
    return (
        4.0 * (tech.scaled_width("ff_inverter_n")
               + tech.scaled_width("ff_inverter_p"))
        + 4.0 * tech.scaled_width("ff_pass")
    )


def buffer_width_um(model: FIFOBufferPower) -> float:
    """SRAM array inventory: cells (6T plus port transistors), wordline
    drivers, write drivers and precharge devices."""
    tech = model.tech
    cell = (
        2.0 * tech.scaled_width("memcell_nmos")
        + 2.0 * tech.scaled_width("memcell_pmos")
        + 2.0 * model.ports * tech.scaled_width("memcell_access")
    )
    cells = model.depth_flits * model.flit_bits * cell
    wordline_drivers = model.depth_flits * (
        tech.scaled_width("wordline_driver_n")
        + tech.scaled_width("wordline_driver_p")
    )
    write_drivers = model.flit_bits * model.write_ports * (
        tech.scaled_width("bitline_driver_n")
        + tech.scaled_width("bitline_driver_p")
    )
    precharge = 2.0 * model.flit_bits * model.read_ports * \
        tech.scaled_width("precharge")
    return cells + wordline_drivers + write_drivers + precharge


def crossbar_width_um(
        model: Union[MatrixCrossbarPower, MuxTreeCrossbarPower]) -> float:
    """Crosspoint (or mux) transistors plus the input/output drivers."""
    if not isinstance(model, (MatrixCrossbarPower, MuxTreeCrossbarPower)):
        raise TypeError(f"no leakage inventory for {type(model).__name__}")
    tech = model.tech
    pass_w = tech.scaled_width("crossbar_pass")
    driver = (tech.scaled_width("crossbar_in_driver_n")
              + tech.scaled_width("crossbar_in_driver_p"))
    if isinstance(model, MatrixCrossbarPower):
        crosspoints = model.inputs * model.outputs * model.width_bits * \
            pass_w
        drivers = (model.inputs + model.outputs) * model.width_bits * \
            driver
        return crosspoints + drivers
    if isinstance(model, MuxTreeCrossbarPower):
        # Each output's binary tree has ~2*(I-1) pass transistors per bit.
        muxes = model.outputs * max(1, 2 * (model.inputs - 1)) * \
            model.width_bits * pass_w
        drivers = model.outputs * model.width_bits * driver
        return muxes + drivers
    raise TypeError(f"no leakage inventory for {type(model).__name__}")


def arbiter_width_um(model) -> float:
    """NOR/inverter grant logic plus the priority state."""
    if not isinstance(model, (MatrixArbiterPower, RoundRobinArbiterPower,
                              QueuingArbiterPower)):
        raise TypeError(f"no leakage inventory for {type(model).__name__}")
    tech = model.tech
    nor = 4.0 * (tech.scaled_width("nor_gate_n")
                 + tech.scaled_width("nor_gate_p"))
    inv = tech.scaled_width("inverter_n") + tech.scaled_width("inverter_p")
    ff = flipflop_width_um(FlipFlopPower(tech))
    r = model.requesters
    if isinstance(model, MatrixArbiterPower):
        return r * (r - 1) * nor + r * inv + model.priority_bits * ff
    if isinstance(model, RoundRobinArbiterPower):
        return 2.0 * r * nor + r * inv + model.pointer_bits * ff
    if isinstance(model, QueuingArbiterPower):
        return buffer_width_um(model.queue) + r * inv
    raise TypeError(f"no leakage inventory for {type(model).__name__}")


def central_buffer_width_um(model: CentralBufferPower) -> float:
    """Banks plus chunk-wide pipeline registers plus both crossbars."""
    banks = buffer_width_um(model.bank_model)
    if not model.row_access:
        banks *= model.banks
    registers = 2.0 * model.access_bits * flipflop_width_um(
        model.register_model)
    return (
        banks
        + registers
        + crossbar_width_um(model.input_crossbar)
        + crossbar_width_um(model.output_crossbar)
    )
