"""Area estimation from the power models' length equations (section 4.4).

"As our power models include length estimation of buffer bitlines,
wordlines and crossbar input/output lines, router area can be easily
estimated assuming a rectangular layout.  We estimate router area as the
sum of input buffer area and switch fabric area, ignoring arbiter area
since arbiters are relatively small."

All areas are in square micrometres.
"""

from __future__ import annotations

from repro.power.buffer import FIFOBufferPower
from repro.power.central_buffer import CentralBufferPower
from repro.power.crossbar import MatrixCrossbarPower, MuxTreeCrossbarPower


def buffer_area_um2(model: FIFOBufferPower) -> float:
    """Rectangular SRAM array area: ``L_wl x L_bl``."""
    return model.wordline_length_um * model.bitline_length_um


def crossbar_area_um2(model) -> float:
    """Rectangular crossbar area: input-line span times output-line span."""
    if isinstance(model, MatrixCrossbarPower):
        return model.input_line_length_um * model.output_line_length_um
    if isinstance(model, MuxTreeCrossbarPower):
        # The tree fabric occupies roughly half a full matrix footprint.
        spacing = model.tech.wire_spacing_um
        span_in = model.outputs * model.width_bits * spacing
        span_out = model.inputs * model.width_bits * spacing
        return 0.5 * span_in * span_out
    raise TypeError(f"no area model for {type(model).__name__}")


def central_buffer_area_um2(model: CentralBufferPower) -> float:
    """Central buffer area: the SRAM array plus the two I/O crossbars.

    In row-access mode the bank model already spans all banks (one
    row-wide array); otherwise each bank is a separate array.
    """
    array_area = buffer_area_um2(model.bank_model)
    if not model.row_access:
        array_area *= model.banks
    return (
        array_area
        + crossbar_area_um2(model.input_crossbar)
        + crossbar_area_um2(model.output_crossbar)
    )


def xb_router_area_um2(input_buffer: FIFOBufferPower,
                       crossbar: MatrixCrossbarPower,
                       ports: int,
                       buffers_per_port: int = 1) -> float:
    """Input-buffered crossbar router area.

    ``buffers_per_port`` covers virtual-channel routers where each port
    holds one ``input_buffer`` array per VC.
    """
    if ports < 1 or buffers_per_port < 1:
        raise ValueError("ports and buffers_per_port must be >= 1")
    buffers = ports * buffers_per_port * buffer_area_um2(input_buffer)
    return buffers + crossbar_area_um2(crossbar)


def cb_router_area_um2(central: CentralBufferPower,
                       input_buffer: FIFOBufferPower,
                       ports: int) -> float:
    """Central-buffered router area: central buffer + per-port input
    buffers."""
    if ports < 1:
        raise ValueError("ports must be >= 1")
    return central_buffer_area_um2(central) + ports * buffer_area_um2(input_buffer)
