"""Crossbar power models (paper Table 3 and Appendix).

Two common implementations are modelled:

* :class:`MatrixCrossbarPower` — a grid of input lines crossing output
  lines with connector (pass) transistors at each crosspoint, gated by
  per-crosspoint control lines driven by the arbiter's grant signals.
* :class:`MuxTreeCrossbarPower` — each output selects its input through a
  tree of 2:1 multiplexers of depth ``ceil(log2 I)``.

Per the Appendix, control lines run in the same direction as input lines,
so their average wire length is ``L_in / 2``; control-line switching energy
(``E_xb_ctr``) is charged to the *arbiter* (grant signals drive the control
lines, so they share switching behaviour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.power.base import EnergyModel, expected_switches
from repro.tech import sizing
from repro.tech.technology import Technology


@dataclass(frozen=True)
class MatrixCrossbarPower(EnergyModel):
    """Matrix (crosspoint) crossbar of ``I`` inputs by ``O`` outputs,
    ``W`` bits wide."""

    inputs: int = 5
    outputs: int = 5
    width_bits: int = 32

    input_line_cap: float = field(init=False)
    output_line_cap: float = field(init=False)
    control_line_cap: float = field(init=False)

    def __post_init__(self) -> None:
        if self.inputs < 1 or self.outputs < 1:
            raise ValueError("crossbar needs at least one input and one output")
        if self.width_bits < 1:
            raise ValueError(f"crossbar width must be >= 1, got {self.width_bits}")
        set_ = object.__setattr__
        set_(self, "input_line_cap", self._input_line_cap())
        set_(self, "output_line_cap", self._output_line_cap())
        set_(self, "control_line_cap", self._control_line_cap())

    # --- geometry -------------------------------------------------------------

    @property
    def crosspoint_pitch_um(self) -> float:
        """Per-wire pitch inside the crosspoint array: two wire pitches,
        leaving room for the connector transistor beside each track."""
        return 2.0 * self.tech.wire_spacing_um

    @property
    def input_line_length_um(self) -> float:
        """``L_in``: an input line spans all ``O`` output columns, each
        ``W`` wires wide at the crosspoint pitch."""
        return self.outputs * self.width_bits * self.crosspoint_pitch_um

    @property
    def output_line_length_um(self) -> float:
        """``L_out``: an output line spans all ``I`` input rows."""
        return self.inputs * self.width_bits * self.crosspoint_pitch_um

    # --- capacitances -----------------------------------------------------------

    def _input_line_cap(self) -> float:
        """``C_in = Ca(T_id) + O*Cd(T_x) + Cw(L_in)``.

        Each input data line is loaded by its (load-sized) input driver,
        one connector-transistor drain per output column, and the wire.
        """
        tech = self.tech
        connector_drain = tech.diff_cap(tech.scaled_width("crossbar_pass"))
        wire = tech.wire_cap(self.input_line_length_um, layer="word")
        passive = self.outputs * connector_drain + wire
        driver = sizing.driver_total_cap(tech, passive)
        return driver + passive

    def _output_line_cap(self) -> float:
        """``C_out = Ca(T_od) + I*Cd(T_x) + Cw(L_out)``."""
        tech = self.tech
        connector_drain = tech.diff_cap(tech.scaled_width("crossbar_pass"))
        wire = tech.wire_cap(self.output_line_length_um, layer="word")
        passive = self.inputs * connector_drain + wire
        driver = sizing.driver_total_cap(tech, passive)
        return driver + passive

    def _control_line_cap(self) -> float:
        """``C_xb_ctr = W*Cg(T_x) + Cw(L_in/2)``.

        One control line gates the ``W`` connector transistors of a
        crosspoint; control lines run alongside input lines, average
        length ``L_in / 2``.
        """
        tech = self.tech
        gate = tech.gate_cap(tech.scaled_width("crossbar_pass"), pass_gate=True)
        wire = tech.wire_cap(self.input_line_length_um / 2.0, layer="word")
        return self.width_bits * gate + wire

    # --- energies ----------------------------------------------------------------

    @property
    def input_line_energy(self) -> float:
        """``E_in``: one input data line switching."""
        return self.switch_energy(self.input_line_cap)

    @property
    def output_line_energy(self) -> float:
        """``E_out``: one output data line switching."""
        return self.switch_energy(self.output_line_cap)

    @property
    def control_line_energy(self) -> float:
        """``E_xb_ctr``: one crosspoint control line switching (charged to
        the arbiter per the Appendix)."""
        return self.switch_energy(self.control_line_cap)

    def traversal_energy(self,
                         old_value: Optional[int] = None,
                         new_value: Optional[int] = None) -> float:
        """``E_xb``: one flit crossing the fabric.

        ``delta`` input lines and the corresponding output lines switch,
        where ``delta`` is the Hamming distance between consecutive values
        on the path (or ``W/2`` under the random-data default).
        """
        switching = expected_switches(self.width_bits, old_value, new_value)
        return switching * (self.input_line_energy + self.output_line_energy)

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "inputs": self.inputs,
            "outputs": self.outputs,
            "width_bits": self.width_bits,
            "input_line_length_um": self.input_line_length_um,
            "output_line_length_um": self.output_line_length_um,
            "input_line_cap_f": self.input_line_cap,
            "output_line_cap_f": self.output_line_cap,
            "control_line_cap_f": self.control_line_cap,
            "traversal_energy_j": self.traversal_energy(),
        }


@dataclass(frozen=True)
class MuxTreeCrossbarPower(EnergyModel):
    """Multiplexer-tree crossbar: each output owns a binary tree of 2:1
    muxes over the ``I`` inputs.

    A traversal charges, per switching bit, one mux node per tree level on
    the selected path plus the distribution wiring at each level.
    """

    inputs: int = 5
    outputs: int = 5
    width_bits: int = 32

    path_cap: float = field(init=False)

    def __post_init__(self) -> None:
        if self.inputs < 1 or self.outputs < 1:
            raise ValueError("crossbar needs at least one input and one output")
        if self.width_bits < 1:
            raise ValueError(f"crossbar width must be >= 1, got {self.width_bits}")
        object.__setattr__(self, "path_cap", self._path_cap())

    @property
    def depth(self) -> int:
        """Tree depth ``ceil(log2 I)`` (0 for a single input)."""
        return max(1, math.ceil(math.log2(self.inputs))) if self.inputs > 1 else 0

    @property
    def level_wire_length_um(self) -> float:
        """Average wire run per tree level: the tree spans the input rows,
        halving the span each level; total span across levels is bounded by
        the full input column, so we charge ``L_span / depth`` per level."""
        span = self.inputs * self.width_bits * self.tech.wire_spacing_um
        return span / max(1, self.depth)

    def _path_cap(self) -> float:
        """Capacitance switched per bit per traversal along the mux path."""
        tech = self.tech
        mux_width = tech.scaled_width("crossbar_pass")
        # Each 2:1 mux stage: the driven node sees two pass-transistor
        # drains (this stage) and one gate of the next stage, plus wire.
        per_level = (
            2.0 * tech.diff_cap(mux_width)
            + tech.gate_cap(mux_width, pass_gate=True)
            + tech.wire_cap(self.level_wire_length_um, layer="word")
        )
        cap = self.depth * per_level
        # Output driver sized for the final load.
        return cap + sizing.driver_total_cap(tech, cap)

    @property
    def per_bit_energy(self) -> float:
        """Energy of one bit switching through the tree."""
        return self.switch_energy(self.path_cap)

    def traversal_energy(self,
                         old_value: Optional[int] = None,
                         new_value: Optional[int] = None) -> float:
        """``E_xb`` for one flit traversal through the mux tree."""
        switching = expected_switches(self.width_bits, old_value, new_value)
        return switching * self.per_bit_energy

    @property
    def control_line_energy(self) -> float:
        """Energy of reconfiguring one output's select lines (charged to
        the arbiter, mirroring the matrix model)."""
        tech = self.tech
        mux_width = tech.scaled_width("crossbar_pass")
        # Each select line gates W muxes' pass transistors at one level.
        per_level = self.width_bits * tech.gate_cap(mux_width, pass_gate=True)
        return self.switch_energy(self.depth * per_level)

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "inputs": self.inputs,
            "outputs": self.outputs,
            "width_bits": self.width_bits,
            "depth": self.depth,
            "path_cap_f": self.path_cap,
            "traversal_energy_j": self.traversal_energy(),
        }
