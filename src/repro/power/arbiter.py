"""Arbiter power models (paper Table 4 and Appendix).

Three arbiter types are modelled, as in Orion:

* :class:`MatrixArbiterPower` — an ``R``-requester matrix arbiter: a
  triangular matrix of ``R(R-1)/2`` priority flip-flops and two-level
  NOR grant logic (``T_N1`` first-level NOR, ``T_N2`` second-level NOR,
  ``T_I`` inverter).
* :class:`RoundRobinArbiterPower` — a rotating-priority arbiter with a
  ``ceil(log2 R)``-bit pointer register and the same style of two-level
  grant logic.
* :class:`QueuingArbiterPower` — requesters enqueue into a small FIFO of
  ``ceil(log2 R)``-bit grant tokens; built hierarchically on the FIFO
  buffer model (model reuse per section 3.2).

Per the Appendix:

* ``E_xb_ctr`` (the crossbar control lines) is treated as part of
  ``E_arb``, because arbiter grant signals drive the crossbar control
  signals and share their switching behaviour;
* each arbitration grants exactly one request, so no switching-activity
  factor is applied to ``E_gnt`` and ``E_xb_ctr``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.power.base import EnergyModel, RANDOM_SWITCHING_FACTOR
from repro.power.buffer import FIFOBufferPower
from repro.power.flipflop import FlipFlopPower


def _grant_token_bits(requesters: int) -> int:
    """Bits needed to name one of ``requesters`` requesters."""
    return max(1, math.ceil(math.log2(requesters))) if requesters > 1 else 1


@dataclass(frozen=True)
class MatrixArbiterPower(EnergyModel):
    """Matrix arbiter over ``requesters`` inputs."""

    requesters: int = 4
    #: Per-arbitration crossbar control energy to fold into ``E_arb``
    #: (pass the owning crossbar's ``control_line_energy``); 0 when the
    #: arbiter does not drive a crossbar (e.g. a VC allocator).
    xbar_control_energy: float = 0.0

    request_cap: float = field(init=False)
    priority_cap: float = field(init=False)
    internal_cap: float = field(init=False)
    grant_cap: float = field(init=False)
    flipflop: FlipFlopPower = field(init=False)

    def __post_init__(self) -> None:
        if self.requesters < 1:
            raise ValueError(f"arbiter needs >= 1 requester, got {self.requesters}")
        tech = self.tech
        n1 = tech.scaled_width("nor_gate_n")
        p1 = tech.scaled_width("nor_gate_p")
        inv_n = tech.scaled_width("inverter_n")
        inv_p = tech.scaled_width("inverter_p")
        others = max(0, self.requesters - 1)
        # Request line: feeds one first-level NOR per other requester,
        # plus a short distribution wire across the grant cells.
        wire_len = self.requesters * 4.0 * tech.wire_spacing_um
        request = others * tech.inverter_gate_cap(n1, p1) + tech.wire_cap(
            wire_len, layer="word"
        )
        # Priority bit output: feeds the two NOR gates of its pair.
        priority = 2.0 * tech.inverter_gate_cap(n1, p1)
        # Internal node: first-level NOR drain into second-level NOR gate.
        internal = tech.inverter_drain_cap(n1, p1) + tech.inverter_gate_cap(
            tech.scaled_width("nor_gate_n"), tech.scaled_width("nor_gate_p")
        )
        # Grant line: second-level NOR drain plus output inverter.
        grant = tech.inverter_drain_cap(n1, p1) + tech.inverter_cap(inv_n, inv_p)
        set_ = object.__setattr__
        set_(self, "request_cap", request)
        set_(self, "priority_cap", priority)
        set_(self, "internal_cap", internal)
        set_(self, "grant_cap", grant)
        set_(self, "flipflop", FlipFlopPower(tech))

    @property
    def priority_bits(self) -> int:
        """``R(R-1)/2`` priority matrix flip-flops."""
        return self.requesters * (self.requesters - 1) // 2

    @property
    def request_energy(self) -> float:
        """``E_req``: one request line switching."""
        return self.switch_energy(self.request_cap)

    @property
    def priority_energy(self) -> float:
        """``E_pri``: one priority line switching into the grant logic."""
        return self.switch_energy(self.priority_cap)

    @property
    def internal_energy(self) -> float:
        """``E_int``: one internal NOR node switching."""
        return self.switch_energy(self.internal_cap)

    @property
    def grant_energy(self) -> float:
        """``E_gnt``: the granted line switching (exactly one per
        arbitration, so no activity factor)."""
        return self.switch_energy(self.grant_cap)

    def arbitration_energy(self,
                           num_requests: int,
                           changed_requests: Optional[int] = None,
                           granted: bool = True) -> float:
        """``E_arb`` for one arbitration round.

        Parameters
        ----------
        num_requests:
            Active request lines this round (drives internal-node
            switching).
        changed_requests:
            Request lines that toggled since the previous round; defaults
            to the random expectation ``num_requests / 2``.
        granted:
            Whether a grant was issued.  A grant switches the grant line
            and crossbar control (unfactored, per the Appendix) and
            updates the winner's row/column of the priority matrix
            (``R - 1`` flip-flops, half expected to flip).
        """
        if num_requests < 0 or num_requests > self.requesters:
            raise ValueError(
                f"num_requests must be in [0, {self.requesters}], got {num_requests}"
            )
        if changed_requests is None:
            changed = RANDOM_SWITCHING_FACTOR * num_requests
        else:
            changed = float(changed_requests)
        energy = changed * self.request_energy
        energy += RANDOM_SWITCHING_FACTOR * num_requests * self.internal_energy
        if granted and num_requests > 0:
            energy += self.grant_energy + self.xbar_control_energy
            updated = self.requesters - 1
            energy += RANDOM_SWITCHING_FACTOR * updated * self.priority_energy
            energy += updated * self.flipflop.write_energy(bit_changed=True) * (
                RANDOM_SWITCHING_FACTOR
            )
            # Clock energy of the non-flipping priority bits.
            energy += updated * self.flipflop.clock_energy * (
                1.0 - RANDOM_SWITCHING_FACTOR
            )
        return energy

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "requesters": self.requesters,
            "priority_bits": self.priority_bits,
            "request_cap_f": self.request_cap,
            "priority_cap_f": self.priority_cap,
            "internal_cap_f": self.internal_cap,
            "grant_cap_f": self.grant_cap,
            "arbitration_energy_j": self.arbitration_energy(self.requesters),
        }


@dataclass(frozen=True)
class RoundRobinArbiterPower(EnergyModel):
    """Round-robin arbiter over ``requesters`` inputs.

    State is a ``ceil(log2 R)``-bit rotating pointer instead of a priority
    matrix; grant logic is the same two-level NOR style.
    """

    requesters: int = 4
    xbar_control_energy: float = 0.0

    request_cap: float = field(init=False)
    internal_cap: float = field(init=False)
    grant_cap: float = field(init=False)
    flipflop: FlipFlopPower = field(init=False)

    def __post_init__(self) -> None:
        if self.requesters < 1:
            raise ValueError(f"arbiter needs >= 1 requester, got {self.requesters}")
        tech = self.tech
        n1 = tech.scaled_width("nor_gate_n")
        p1 = tech.scaled_width("nor_gate_p")
        inv_n = tech.scaled_width("inverter_n")
        inv_p = tech.scaled_width("inverter_p")
        # Each request feeds the masked and unmasked priority chains.
        request = 2.0 * tech.inverter_gate_cap(n1, p1) + tech.wire_cap(
            self.requesters * 4.0 * tech.wire_spacing_um, layer="word"
        )
        internal = tech.inverter_drain_cap(n1, p1) + tech.inverter_gate_cap(n1, p1)
        grant = tech.inverter_drain_cap(n1, p1) + tech.inverter_cap(inv_n, inv_p)
        set_ = object.__setattr__
        set_(self, "request_cap", request)
        set_(self, "internal_cap", internal)
        set_(self, "grant_cap", grant)
        set_(self, "flipflop", FlipFlopPower(tech))

    @property
    def pointer_bits(self) -> int:
        """Width of the rotating-priority pointer register."""
        return _grant_token_bits(self.requesters)

    @property
    def request_energy(self) -> float:
        """One request line switching."""
        return self.switch_energy(self.request_cap)

    @property
    def internal_energy(self) -> float:
        """One internal priority-chain node switching."""
        return self.switch_energy(self.internal_cap)

    @property
    def grant_energy(self) -> float:
        """The granted line switching."""
        return self.switch_energy(self.grant_cap)

    def arbitration_energy(self,
                           num_requests: int,
                           changed_requests: Optional[int] = None,
                           granted: bool = True) -> float:
        """``E_arb`` for one round (see :class:`MatrixArbiterPower`)."""
        if num_requests < 0 or num_requests > self.requesters:
            raise ValueError(
                f"num_requests must be in [0, {self.requesters}], got {num_requests}"
            )
        if changed_requests is None:
            changed = RANDOM_SWITCHING_FACTOR * num_requests
        else:
            changed = float(changed_requests)
        energy = changed * self.request_energy
        # The priority chain ripples past active requesters up to the winner.
        energy += RANDOM_SWITCHING_FACTOR * num_requests * self.internal_energy
        if granted and num_requests > 0:
            energy += self.grant_energy + self.xbar_control_energy
            energy += self.pointer_bits * self.flipflop.write_energy(
                bit_changed=True
            ) * RANDOM_SWITCHING_FACTOR
            energy += self.pointer_bits * self.flipflop.clock_energy * (
                1.0 - RANDOM_SWITCHING_FACTOR
            )
        return energy

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "requesters": self.requesters,
            "pointer_bits": self.pointer_bits,
            "request_cap_f": self.request_cap,
            "internal_cap_f": self.internal_cap,
            "grant_cap_f": self.grant_cap,
            "arbitration_energy_j": self.arbitration_energy(self.requesters),
        }


@dataclass(frozen=True)
class QueuingArbiterPower(EnergyModel):
    """Queuing (FCFS) arbiter: a FIFO of requester ids.

    Built hierarchically on :class:`FIFOBufferPower` — the model-reuse
    pattern of section 3.2.  Each request enqueues a ``ceil(log2 R)``-bit
    token; each grant dequeues one.
    """

    requesters: int = 4
    xbar_control_energy: float = 0.0

    queue: FIFOBufferPower = field(init=False)
    grant_cap: float = field(init=False)

    def __post_init__(self) -> None:
        if self.requesters < 1:
            raise ValueError(f"arbiter needs >= 1 requester, got {self.requesters}")
        tech = self.tech
        queue = FIFOBufferPower(
            tech,
            depth_flits=max(2, self.requesters),
            flit_bits=_grant_token_bits(self.requesters),
        )
        inv_n = tech.scaled_width("inverter_n")
        inv_p = tech.scaled_width("inverter_p")
        n1 = tech.scaled_width("nor_gate_n")
        p1 = tech.scaled_width("nor_gate_p")
        grant = tech.inverter_drain_cap(n1, p1) + tech.inverter_cap(inv_n, inv_p)
        object.__setattr__(self, "queue", queue)
        object.__setattr__(self, "grant_cap", grant)

    @property
    def grant_energy(self) -> float:
        """The granted line switching."""
        return self.switch_energy(self.grant_cap)

    def arbitration_energy(self,
                           num_requests: int,
                           changed_requests: Optional[int] = None,
                           granted: bool = True) -> float:
        """``E_arb``: enqueue each new request, dequeue one grant."""
        if num_requests < 0 or num_requests > self.requesters:
            raise ValueError(
                f"num_requests must be in [0, {self.requesters}], got {num_requests}"
            )
        if changed_requests is None:
            new_requests = RANDOM_SWITCHING_FACTOR * num_requests
        else:
            new_requests = float(changed_requests)
        energy = new_requests * self.queue.write_energy()
        if granted and num_requests > 0:
            energy += self.queue.read_energy()
            energy += self.grant_energy + self.xbar_control_energy
        return energy

    def describe(self) -> dict:
        """Capacitances and energies for reports and validation."""
        return {
            "requesters": self.requesters,
            "token_bits": self.queue.flit_bits,
            "queue_depth": self.queue.depth_flits,
            "grant_cap_f": self.grant_cap,
            "arbitration_energy_j": self.arbitration_energy(self.requesters),
        }
