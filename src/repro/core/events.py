"""Microarchitectural events and energy accounting.

This is Orion's integration point between performance simulation and power
modeling (section 2.1): "Users define events associated with each module.
Power models ... are hooked to these events so when an event occurs during
the execution, it triggers the specific power model, which calculates and
accumulates the energy consumed."

We substitute LSE's event subsystem with a typed event vocabulary plus an
:class:`EnergyAccountant` that accumulates per-node, per-component energy
and event counts.  Routers emit events through a
:class:`repro.core.power_binding.PowerBinding`, which converts each event
into joules via the component power models and deposits them here.
"""

from __future__ import annotations

from typing import Dict, List

#: Event vocabulary — one entry per power-relevant module operation.
BUFFER_WRITE = "buffer_write"
BUFFER_READ = "buffer_read"
ARBITRATION = "arbitration"
XBAR_TRAVERSAL = "xbar_traversal"
LINK_TRAVERSAL = "link_traversal"
CB_WRITE = "cb_write"
CB_READ = "cb_read"

EVENT_TYPES = (
    BUFFER_WRITE,
    BUFFER_READ,
    ARBITRATION,
    XBAR_TRAVERSAL,
    LINK_TRAVERSAL,
    CB_WRITE,
    CB_READ,
)

#: Component vocabulary — the per-node power breakdown categories of the
#: paper's figures 5(c), 7(c) and 7(f).
INPUT_BUFFER = "input_buffer"
CENTRAL_BUFFER = "central_buffer"
CROSSBAR = "crossbar"
ARBITER = "arbiter"
LINK = "link"
#: Clock distribution (populated only with the clock-power extension).
CLOCK = "clock"

COMPONENTS = (INPUT_BUFFER, CENTRAL_BUFFER, CROSSBAR, ARBITER, LINK,
              CLOCK)

#: The component each event type is charged to — the routing used by
#: counter-based accounting when deferred event counts are converted to
#: joules at finalization (see
#: :class:`repro.core.power_binding.CounterBinding`).
EVENT_COMPONENT = {
    BUFFER_WRITE: INPUT_BUFFER,
    BUFFER_READ: INPUT_BUFFER,
    ARBITRATION: ARBITER,
    XBAR_TRAVERSAL: CROSSBAR,
    LINK_TRAVERSAL: LINK,
    CB_WRITE: CENTRAL_BUFFER,
    CB_READ: CENTRAL_BUFFER,
}


class EnergyAccountant:
    """Per-node, per-component energy and event-count accumulator.

    Mirrors the paper's measurement protocol (section 4.1): "The simulator
    records energy consumption of each component (input buffer, crossbar,
    arbiter, link) of a node over the entire simulation excluding the
    first 1000 cycles" — the warm-up exclusion is implemented by
    :meth:`reset` at the end of warm-up.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError(f"need >= 1 node, got {num_nodes}")
        self.num_nodes = num_nodes
        self._energy: List[Dict[str, float]] = []
        self._counts: List[Dict[str, int]] = []
        self.reset()

    def reset(self) -> None:
        """Zero all accumulators (used at the end of warm-up)."""
        self._energy = [dict.fromkeys(COMPONENTS, 0.0)
                        for _ in range(self.num_nodes)]
        self._counts = [dict.fromkeys(EVENT_TYPES, 0)
                        for _ in range(self.num_nodes)]

    def add(self, node: int, component: str, event: str, energy_j: float,
            count: int = 1) -> None:
        """Record ``count`` occurrences of ``event`` costing ``energy_j``
        joules total, charged to ``component`` at ``node``."""
        self._energy[node][component] += energy_j
        self._counts[node][event] += count

    # --- queries ------------------------------------------------------------

    def node_energy(self, node: int) -> Dict[str, float]:
        """Energy (J) per component at one node."""
        return dict(self._energy[node])

    def node_counts(self, node: int) -> Dict[str, int]:
        """Event counts per event type at one node."""
        return dict(self._counts[node])

    def snapshot(self):
        """Copies of the per-node energy and count tables — the
        cumulative view windowed telemetry diffs between boundaries."""
        return ([dict(e) for e in self._energy],
                [dict(c) for c in self._counts])

    def node_total(self, node: int) -> float:
        """Total energy (J) at one node."""
        return sum(self._energy[node].values())

    def component_energy(self, component: str) -> float:
        """Network-wide energy (J) of one component category."""
        if component not in COMPONENTS:
            raise ValueError(
                f"unknown component {component!r}; options: {COMPONENTS}"
            )
        return sum(e[component] for e in self._energy)

    def total_energy(self) -> float:
        """Network-wide total energy (J)."""
        return sum(sum(e.values()) for e in self._energy)

    def event_count(self, event: str, node: int = None) -> int:
        """Occurrences of one event type, network-wide or at one node."""
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event {event!r}; options: {EVENT_TYPES}")
        if node is not None:
            return self._counts[node][event]
        return sum(c[event] for c in self._counts)

    def breakdown(self) -> Dict[str, float]:
        """Network-wide energy per component (J)."""
        return {c: self.component_energy(c) for c in COMPONENTS}

    def spatial_map(self) -> List[float]:
        """Per-node total energy (J), indexed by node id — the raw data of
        the paper's Figure 6."""
        return [self.node_total(n) for n in range(self.num_nodes)]
