"""Orion core: configuration, events, power binding, facade, reports."""

from repro.core.config import (
    LinkConfig,
    NetworkConfig,
    RouterConfig,
    RunProtocol,
    TechConfig,
    resolve_protocol,
)
from repro.core.events import EnergyAccountant
from repro.core.orion import Orion
from repro.core.power_binding import NullBinding, PowerBinding
from repro.core.presets import preset, PRESETS
from repro.core.report import (
    SweepPoint,
    SweepResult,
    breakdown_table,
    comparison_table,
    format_power,
    spatial_table,
)

__all__ = [
    "LinkConfig",
    "NetworkConfig",
    "RouterConfig",
    "RunProtocol",
    "TechConfig",
    "resolve_protocol",
    "EnergyAccountant",
    "Orion",
    "NullBinding",
    "PowerBinding",
    "preset",
    "PRESETS",
    "SweepPoint",
    "SweepResult",
    "breakdown_table",
    "comparison_table",
    "format_power",
    "spatial_table",
]
