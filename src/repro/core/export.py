"""Result export: CSV and JSON serialisation of runs and sweeps.

Keeps downstream analysis (spreadsheets, plotting scripts) decoupled
from the library — every number a figure needs can be dumped to a flat
file.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from repro.core.report import SweepResult
from repro.sim.engine import SimulationResult


def result_to_dict(result: SimulationResult) -> Dict:
    """JSON-safe summary of one simulation run."""
    out = {
        "router_kind": result.config.router.kind,
        "topology": result.config.topology,
        "width": result.config.width,
        "height": result.config.height,
        "avg_latency_cycles": result.avg_latency,
        "min_latency_cycles": result.latency.minimum,
        "max_latency_cycles": result.latency.maximum,
        "p99_latency_cycles": result.latency.percentile(99),
        "sample_packets": result.sample_packets,
        "warmup_cycles": result.warmup_cycles,
        "measured_cycles": result.measured_cycles,
        "total_cycles": result.total_cycles,
        "throughput_flits_per_cycle": result.throughput_flits_per_cycle,
        "flits_injected": result.flits_injected,
        "flits_ejected": result.flits_ejected,
        "status": result.status,
        "flits_dropped": result.flits_dropped,
        "packets_dropped": result.packets_dropped,
        "packets_misrouted": result.packets_misrouted,
        "sample_dropped": result.sample_dropped,
    }
    if result.accountant is not None:
        out["total_power_w"] = result.total_power_w
        out["power_breakdown_w"] = result.power_breakdown_w()
        out["node_power_w"] = result.node_power_w()
    return out


def result_to_json(result: SimulationResult, path: str) -> None:
    """Write one run's summary as JSON."""
    with open(path, "w") as f:
        json.dump(result_to_dict(result), f, indent=2, sort_keys=True)


def sweep_rows(sweep: SweepResult) -> List[Dict]:
    """One flat dict per sweep point (CSV-ready)."""
    rows = []
    for point in sorted(sweep.points, key=lambda p: p.rate):
        row = {
            "label": sweep.label,
            "rate": point.rate,
            "avg_latency_cycles": point.avg_latency,
            "total_power_w": point.total_power_w,
            "throughput_flits_per_cycle":
                point.throughput_flits_per_cycle,
        }
        for component, watts in sorted(point.breakdown_w.items()):
            row[f"power_{component}_w"] = watts
        rows.append(row)
    return rows


def sweep_to_csv(sweep: SweepResult, path: str) -> None:
    """Write a sweep as CSV, one row per injection rate."""
    rows = sweep_rows(sweep)
    if not rows:
        raise ValueError(f"sweep {sweep.label!r} has no points")
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def experiment_rows(outcomes) -> List[Dict]:
    """One flat dict per experiment point outcome (CSV-ready)."""
    rows = []
    for outcome in outcomes:
        point = outcome.point
        row = {
            "label": point.label,
            "traffic": point.traffic.describe(),
            "rate": point.rate,
            "seed": point.protocol.seed,
            "ok": outcome.ok,
            "status": outcome.status,
            "error": outcome.error or "",
            "flits_dropped": outcome.flits_dropped,
            "packets_misrouted": outcome.packets_misrouted,
            "attempts": outcome.attempts,
            "avg_latency_cycles": outcome.avg_latency,
            "total_power_w": outcome.total_power_w,
            "throughput_flits_per_cycle":
                outcome.throughput_flits_per_cycle,
            "total_cycles": outcome.total_cycles,
            "wall_seconds": outcome.wall_seconds,
            "from_cache": outcome.from_cache,
        }
        for component, watts in sorted(outcome.breakdown_w.items()):
            row[f"power_{component}_w"] = watts
        rows.append(row)
    return rows


def experiment_to_csv(outcomes, path: str) -> None:
    """Write experiment outcomes as CSV, one row per run point."""
    rows = experiment_rows(outcomes)
    if not rows:
        raise ValueError("experiment produced no outcomes")
    fieldnames: List[str] = []
    for row in rows:
        for name in row:
            if name not in fieldnames:
                fieldnames.append(name)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(rows)


def spatial_to_csv(result: SimulationResult, path: str) -> None:
    """Write the per-node power map as CSV (node, x, y, power_w)."""
    powers = result.node_power_w()
    width = result.config.width
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["node", "x", "y", "power_w"])
        for node, power in enumerate(powers):
            writer.writerow([node, node % width, node // width, power])
