"""Result reporting: power breakdowns, spatial maps, sweep tables.

These render the data behind the paper's figures:

* :func:`breakdown_table` — per-component average power (Figures 5c,
  7c, 7f);
* :func:`spatial_table` — per-node average power over the grid
  (Figure 6);
* :class:`SweepResult` — latency/power versus injection rate
  (Figures 5a/5b, 7a/7b/7d/7e).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.engine import SimulationResult
from repro.sim.stats import saturation_rate


def format_power(watts: float) -> str:
    """Human-readable power with an appropriate SI prefix."""
    if watts < 0:
        raise ValueError(f"power must be >= 0, got {watts}")
    for scale, unit in ((1.0, "W"), (1e-3, "mW"), (1e-6, "uW")):
        if watts >= scale:
            return f"{watts / scale:.3f} {unit}"
    return f"{watts * 1e9:.3f} nW"


def breakdown_table(result: SimulationResult) -> str:
    """Per-component power table with percentage shares."""
    breakdown = result.power_breakdown_w()
    total = sum(breakdown.values())
    lines = [f"{'component':<16} {'power':>12} {'share':>8}"]
    for component, power in sorted(breakdown.items(),
                                   key=lambda kv: -kv[1]):
        share = power / total if total > 0 else 0.0
        lines.append(
            f"{component:<16} {format_power(power):>12} {share:>7.1%}"
        )
    lines.append(f"{'total':<16} {format_power(total):>12} {'100.0%':>8}")
    return "\n".join(lines)


def spatial_table(result: SimulationResult) -> str:
    """Per-node power laid out on the (x, y) grid, y descending —
    Figure 6's spatial distribution."""
    powers = result.node_power_w()
    width = result.config.width
    height = result.config.height
    lines = []
    for y in reversed(range(height)):
        row = []
        for x in range(width):
            node = y * width + x
            row.append(f"{powers[node] * 1e3:9.2f}")
        lines.append(f"y={y}  " + " ".join(row) + "  (mW)")
    lines.append("      " + " ".join(f"{'x=' + str(x):>9}"
                                     for x in range(width)))
    return "\n".join(lines)


@dataclass
class SweepPoint:
    """One injection rate's outcome within a sweep."""

    rate: float
    avg_latency: float
    total_power_w: float
    throughput_flits_per_cycle: float
    breakdown_w: Dict[str, float]
    result: Optional[SimulationResult] = None
    #: Recorded failure ("DeadlockError: ..."), when the orchestrator ran
    #: with failure isolation; ``None`` for a successful point.
    error: Optional[str] = None
    #: Terminal status of the point ("ok", "stalled", "max_cycles",
    #: "crashed", "timeout") — see :class:`repro.exp.PointOutcome`.
    status: str = "ok"


@dataclass
class SweepResult:
    """A latency/power-versus-injection-rate curve (one line of
    Figure 5 or 7)."""

    label: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def rates(self) -> List[float]:
        return [p.rate for p in self.points]

    @property
    def latencies(self) -> List[float]:
        return [p.avg_latency for p in self.points]

    @property
    def powers(self) -> List[float]:
        return [p.total_power_w for p in self.points]

    @property
    def ok_points(self) -> List[SweepPoint]:
        """Points that completed (no recorded failure)."""
        return [p for p in self.points
                if p.error is None and p.status == "ok"]

    @property
    def failed_points(self) -> List[SweepPoint]:
        """Points that stalled, crashed, or hit a cycle/wall-clock
        limit."""
        return [p for p in self.points
                if p.error is not None or p.status != "ok"]

    @property
    def zero_load_latency(self) -> float:
        """Latency of the lowest-rate completed point (the zero-load
        proxy)."""
        ok = self.ok_points
        if not ok:
            raise ValueError("empty sweep")
        return min(ok, key=lambda p: p.rate).avg_latency

    def saturation_rate(self, interpolate: bool = False) -> Optional[float]:
        """Paper criterion: first rate with latency > 2x zero-load.

        ``interpolate=True`` linearly interpolates the crossing between
        grid samples (see :func:`repro.sim.stats.saturation_rate`)."""
        ok = self.ok_points
        if not ok:
            return None
        return saturation_rate([p.rate for p in ok],
                               [p.avg_latency for p in ok],
                               self.zero_load_latency,
                               interpolate=interpolate)

    def table(self) -> str:
        """Render the curve as rows of rate / latency / power."""
        lines = [f"== {self.label} ==",
                 f"{'rate':>8} {'latency':>10} {'power':>12} {'thruput':>9}"]
        for p in sorted(self.points, key=lambda p: p.rate):
            if p.error is not None or p.status != "ok":
                detail = p.error or p.status
                lines.append(f"{p.rate:>8.3f}  FAILED({p.status}): {detail}")
                continue
            lines.append(
                f"{p.rate:>8.3f} {p.avg_latency:>10.2f} "
                f"{format_power(p.total_power_w):>12} "
                f"{p.throughput_flits_per_cycle:>9.3f}"
            )
        sat = self.saturation_rate()
        lines.append(f"saturation: "
                     f"{'not reached' if sat is None else f'{sat:.3f}'}")
        return "\n".join(lines)


def comparison_table(sweeps: Sequence[SweepResult]) -> str:
    """Side-by-side latency table for multiple configurations."""
    if not sweeps:
        raise ValueError("no sweeps to compare")
    rates = sorted({p.rate for s in sweeps for p in s.points})
    header = f"{'rate':>8}" + "".join(f"{s.label:>12}" for s in sweeps)
    lines = [header]
    for rate in rates:
        row = [f"{rate:>8.3f}"]
        for sweep in sweeps:
            match = [p for p in sweep.points if p.rate == rate]
            row.append(f"{match[0].avg_latency:>12.2f}" if match
                       else f"{'-':>12}")
        lines.append("".join(row))
    return "\n".join(lines)
