"""Configuration dataclasses for networks, routers, links and technology.

These are the "plug-and-play" knobs of Orion: a
:class:`NetworkConfig` fully determines a simulatable power-performance
model.  :mod:`repro.core.presets` provides the paper's named
configurations (WH64, VC16, VC64, VC128, CB, XB).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.tech.technology import Technology

ROUTER_KINDS = ("wormhole", "vc", "speculative_vc", "central")
LINK_KINDS = ("on_chip", "chip_to_chip")
LINK_ENCODINGS = ("none", "bus_invert")
TOPOLOGY_KINDS = ("torus", "mesh")
ACTIVITY_MODES = ("average", "data")
VC_CLASS_MODES = ("none", "dateline")
ARBITER_TYPES = ("matrix", "round_robin", "queuing")
CROSSBAR_TYPES = ("matrix", "mux_tree")
TIE_BREAKS = ("avoid_wrap", "even")
KERNELS = ("dense", "sparse")


@dataclass(frozen=True)
class TechConfig:
    """Process node and operating point."""

    feature_size_um: float = 0.1
    vdd: float = 1.2
    frequency_hz: float = 2.0e9

    def build(self) -> Technology:
        """Instantiate the capacitance substrate."""
        return Technology(self.feature_size_um, vdd=self.vdd,
                          frequency_hz=self.frequency_hz)


@dataclass(frozen=True)
class RouterConfig:
    """Router microarchitecture parameters.

    ``buffer_depth`` is flits per input FIFO for wormhole/central routers
    and flits *per virtual channel* for VC routers (the paper quotes VC
    configs as "8-flit input buffer per VC").  VC routers store all their
    VCs' flits in one SRAM array per port, so the physical buffer at each
    port is ``num_vcs * buffer_depth`` flits — which is why VC64 and WH64
    share identical buffer power (Figure 5b).
    """

    kind: str = "wormhole"
    flit_bits: int = 32
    buffer_depth: int = 4
    num_vcs: int = 1
    arbiter_type: str = "matrix"
    crossbar_type: str = "matrix"
    #: Dateline VC classes for deadlock freedom on large tori ("dateline")
    #: or unrestricted VC use ("none").
    vc_class_mode: str = "none"
    # Central-buffer parameters (kind == "central").
    cb_rows: int = 2560
    cb_banks: int = 4
    cb_read_ports: int = 2
    cb_write_ports: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ROUTER_KINDS:
            raise ValueError(f"unknown router kind {self.kind!r}; "
                             f"options: {ROUTER_KINDS}")
        if self.flit_bits < 1:
            raise ValueError(f"flit_bits must be >= 1, got {self.flit_bits}")
        if self.buffer_depth < 1:
            raise ValueError(
                f"buffer_depth must be >= 1, got {self.buffer_depth}"
            )
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.is_vc_kind and self.num_vcs < 2 and \
                self.vc_class_mode == "dateline":
            raise ValueError("dateline VC classes need num_vcs >= 2")
        if self.arbiter_type not in ARBITER_TYPES:
            raise ValueError(f"unknown arbiter type {self.arbiter_type!r}; "
                             f"options: {ARBITER_TYPES}")
        if self.crossbar_type not in CROSSBAR_TYPES:
            raise ValueError(f"unknown crossbar type {self.crossbar_type!r}; "
                             f"options: {CROSSBAR_TYPES}")
        if self.vc_class_mode not in VC_CLASS_MODES:
            raise ValueError(f"unknown vc_class_mode {self.vc_class_mode!r}; "
                             f"options: {VC_CLASS_MODES}")
        if self.kind == "central":
            if self.cb_rows < 1 or self.cb_banks < 1:
                raise ValueError("central buffer needs >= 1 row and bank")
            if self.cb_read_ports < 1 or self.cb_write_ports < 1:
                raise ValueError("central buffer needs read and write ports")

    @property
    def is_vc_kind(self) -> bool:
        """Whether this router keeps per-port virtual channels."""
        return self.kind in ("vc", "speculative_vc")

    @property
    def buffer_flits_per_port(self) -> int:
        """Physical flits stored per input port."""
        if self.is_vc_kind:
            return self.num_vcs * self.buffer_depth
        return self.buffer_depth

    @property
    def cb_capacity_flits(self) -> int:
        """Central buffer total capacity (central routers only)."""
        return self.cb_rows * self.cb_banks


@dataclass(frozen=True)
class RunProtocol:
    """The measurement protocol of one simulation run (section 4.1).

    One frozen object holds every per-run knob — warm-up length, sample
    size, completion/watchdog limits, the traffic RNG seed and the
    observability switches — so runs, sweeps and experiment grids all
    share a single definition instead of duplicated keyword lists.
    """

    #: Cycles excluded from latency and energy measurement (paper: 1000).
    warmup_cycles: int = 1000
    #: Packets tagged after warm-up whose delivery ends the run
    #: (paper: 10000).
    sample_packets: int = 10000
    #: Hard cycle limit before :class:`SimulationTimeout`.
    max_cycles: int = 2_000_000
    #: Idle-cycle window before :class:`DeadlockError`.
    watchdog_cycles: int = 20_000
    #: Seed for the traffic pattern's random stream.
    seed: int = 1
    #: Attach power models and account energy per event.
    collect_power: bool = True
    #: Attach the occupancy/utilization monitor (Figure-6-style spatial
    #: studies).
    monitor: bool = False
    #: Simulation kernel: "sparse" steps only routers that can do work
    #: and accounts average-mode energy through per-node event counters;
    #: "dense" is the reference kernel (every router, every cycle,
    #: per-event energy deposits).  Results are equivalent — see
    #: tests/test_kernel_equivalence.py.
    kernel: str = "sparse"
    #: Run the network's flit-conservation ``audit()`` every this many
    #: cycles (0 disables auditing).
    audit_every: int = 0
    #: Record windowed energy/event telemetry every this many measured
    #: cycles (0 disables recording).  See :mod:`repro.telemetry`.
    telemetry_window: int = 0
    #: Deterministic fault-injection scenario (a
    #: :class:`repro.faults.FaultSpec`), or ``None`` for a healthy
    #: fabric.  See :mod:`repro.faults`.
    faults: Optional["FaultSpec"] = None  # noqa: F821 - lazy import
    #: What a watchdog-detected stall (deadlock, livelock or max-cycles
    #: exhaustion) does: "raise" (historical — DeadlockError /
    #: SimulationTimeout) or "finish" (return the partial result with
    #: :attr:`SimulationResult.status` set to "stalled"/"max_cycles").
    on_stall: str = "raise"
    #: Livelock watchdog: cycles without a single packet delivered or
    #: dropped (while traffic is in flight) before the run is declared
    #: stalled.  0 disables; the idle-cycle ``watchdog_cycles`` deadlock
    #: detector is always on.
    livelock_cycles: int = 0

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ValueError(
                f"warmup_cycles must be >= 0, got {self.warmup_cycles}"
            )
        if self.sample_packets < 1:
            raise ValueError(
                f"sample_packets must be >= 1, got {self.sample_packets}"
            )
        if self.max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {self.max_cycles}")
        if self.watchdog_cycles < 1:
            raise ValueError(
                f"watchdog_cycles must be >= 1, got {self.watchdog_cycles}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; "
                             f"options: {KERNELS}")
        if self.audit_every < 0:
            raise ValueError(
                f"audit_every must be >= 0, got {self.audit_every}"
            )
        if self.telemetry_window < 0:
            raise ValueError(
                f"telemetry_window must be >= 0, got {self.telemetry_window}"
            )
        if self.faults is not None:
            from repro.faults import FaultSpec
            if not isinstance(self.faults, FaultSpec):
                raise ValueError(
                    f"faults must be a FaultSpec or None, got "
                    f"{type(self.faults).__name__}"
                )
        if self.on_stall not in ("raise", "finish"):
            raise ValueError(f"unknown on_stall {self.on_stall!r}; "
                             f"options: ('raise', 'finish')")
        if self.livelock_cycles < 0:
            raise ValueError(
                f"livelock_cycles must be >= 0, got {self.livelock_cycles}"
            )

    def with_(self, **changes) -> "RunProtocol":
        """A copy with fields replaced."""
        return replace(self, **changes)


def resolve_protocol(protocol: Optional[RunProtocol] = None,
                     **overrides) -> RunProtocol:
    """Merge a :class:`RunProtocol` with legacy per-run keyword arguments.

    ``None``-valued overrides mean "not given".  Passing non-``None``
    legacy keywords is deprecated: new code should build one
    :class:`RunProtocol` and thread it through.
    """
    overrides = {name: value for name, value in overrides.items()
                 if value is not None}
    if overrides:
        warnings.warn(
            f"per-run keyword arguments {sorted(overrides)} are deprecated; "
            f"pass a RunProtocol instead",
            DeprecationWarning, stacklevel=3)
    if protocol is None:
        return RunProtocol(**overrides)
    return replace(protocol, **overrides) if overrides else protocol


@dataclass(frozen=True)
class LinkConfig:
    """Inter-router link parameters.

    On-chip links are capacitive (energy per bit toggle over
    ``length_mm``); chip-to-chip links burn constant ``power_watts``
    regardless of traffic (differential signalling, section 4.4).
    """

    kind: str = "on_chip"
    length_mm: float = 3.0
    power_watts: float = 3.0
    #: Link data encoding: "none", or "bus_invert" (on-chip only) to
    #: model bus-invert low-power coding.
    encoding: str = "none"

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(f"unknown link kind {self.kind!r}; "
                             f"options: {LINK_KINDS}")
        if self.kind == "on_chip" and self.length_mm <= 0:
            raise ValueError(f"length_mm must be positive, got {self.length_mm}")
        if self.kind == "chip_to_chip" and self.power_watts < 0:
            raise ValueError(
                f"power_watts must be >= 0, got {self.power_watts}"
            )
        if self.encoding not in LINK_ENCODINGS:
            raise ValueError(f"unknown link encoding {self.encoding!r}; "
                             f"options: {LINK_ENCODINGS}")
        if self.encoding == "bus_invert" and self.kind != "on_chip":
            raise ValueError("bus-invert coding applies to on-chip links "
                             "(chip-to-chip links are load-invariant)")


@dataclass(frozen=True)
class NetworkConfig:
    """A complete network: topology + router + link + technology."""

    topology: str = "torus"
    width: int = 4
    height: int = 4
    router: RouterConfig = field(default_factory=RouterConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    tech: TechConfig = field(default_factory=TechConfig)
    packet_length_flits: int = 5
    #: Torus tie-break policy for equidistant minimal routes; see
    #: :mod:`repro.sim.routing`.
    tie_break: str = "avoid_wrap"
    #: "average" charges random-data expected switching per event;
    #: "data" tracks flit payload Hamming distances.
    activity_mode: str = "average"
    #: Add static (leakage) power per the Butts-Sohi model — an
    #: extension beyond the paper's dynamic-only accounting (see
    #: :mod:`repro.power.leakage`).
    include_leakage: bool = False
    #: Add clock-tree power (extension; see :mod:`repro.power.clock`).
    include_clock: bool = False

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_KINDS:
            raise ValueError(f"unknown topology {self.topology!r}; "
                             f"options: {TOPOLOGY_KINDS}")
        if self.packet_length_flits < 1:
            raise ValueError(
                f"packet_length_flits must be >= 1, got "
                f"{self.packet_length_flits}"
            )
        if self.tie_break not in TIE_BREAKS:
            raise ValueError(f"unknown tie_break {self.tie_break!r}; "
                             f"options: {TIE_BREAKS}")
        if self.activity_mode not in ACTIVITY_MODES:
            raise ValueError(f"unknown activity_mode {self.activity_mode!r}; "
                             f"options: {ACTIVITY_MODES}")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def with_router(self, **changes) -> "NetworkConfig":
        """A copy with router parameters replaced."""
        return replace(self, router=replace(self.router, **changes))

    def with_(self, **changes) -> "NetworkConfig":
        """A copy with top-level fields replaced."""
        return replace(self, **changes)
