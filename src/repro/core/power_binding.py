"""Binding between simulator events and component power models.

A :class:`PowerBinding` is constructed from a :class:`NetworkConfig`: it
instantiates the right component power models, precomputes per-event
energies (for the "average" switching-activity mode), and exposes one
method per event type.  Routers call these methods as events occur; the
binding deposits joules into the shared
:class:`repro.core.events.EnergyAccountant`.

In ``activity_mode="data"`` the binding additionally tracks the last
payload seen at each buffer port, crossbar output and link, so switching
activity is the exact Hamming distance between consecutive values — the
paper's "switching activity factors delta_x are monitored and calculated
through simulation".

:class:`CounterBinding` is the fast-path variant for average mode: it
counts events per node on the hot path and converts counts to joules
once at finalization (the sparse kernel's accounting mode).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import events as ev
from repro.core.config import NetworkConfig
from repro.core.events import EnergyAccountant
from repro.power.arbiter import (
    MatrixArbiterPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.power.buffer import FIFOBufferPower
from repro.power.central_buffer import CentralBufferPower
from repro.power.crossbar import MatrixCrossbarPower, MuxTreeCrossbarPower
from repro.power.link import (
    BusInvertLinkPower,
    ChipToChipLinkPower,
    OnChipLinkPower,
)

_ARBITER_POWER_CLASSES = {
    "matrix": MatrixArbiterPower,
    "round_robin": RoundRobinArbiterPower,
    "queuing": QueuingArbiterPower,
}


def _arb_table(model, size: int) -> List[float]:
    """Per-arbitration energy indexed by number of active requests."""
    return [model.arbitration_energy(n) for n in range(size + 1)]


class PowerBinding:
    """Event-to-energy conversion for one network configuration."""

    def __init__(self, config: NetworkConfig,
                 accountant: EnergyAccountant) -> None:
        self.config = config
        self.accountant = accountant
        self.tech = config.tech.build()
        self.data_mode = config.activity_mode == "data"
        self._last: Dict[Tuple, Optional[int]] = {}
        rc = config.router
        ports = 5
        # --- input buffer model (one SRAM array per port) ---
        self.buffer_model = FIFOBufferPower(
            self.tech,
            depth_flits=rc.buffer_flits_per_port,
            flit_bits=rc.flit_bits,
        )
        self._e_buf_read = self.buffer_model.read_energy()
        self._e_buf_write = self.buffer_model.write_energy()
        # --- crossbar (wormhole / VC routers) ---
        if rc.crossbar_type == "matrix":
            self.crossbar_model = MatrixCrossbarPower(
                self.tech, inputs=ports, outputs=ports,
                width_bits=rc.flit_bits)
        else:
            self.crossbar_model = MuxTreeCrossbarPower(
                self.tech, inputs=ports, outputs=ports,
                width_bits=rc.flit_bits)
        self._e_xbar = self.crossbar_model.traversal_energy()
        xb_ctrl = self.crossbar_model.control_line_energy
        # --- arbiters ---
        arb_cls = _ARBITER_POWER_CLASSES[rc.arbiter_type]
        # Switch (output-port) arbiter: P-1 requesters, no u-turns.
        self.switch_arbiter_model = arb_cls(
            self.tech, requesters=ports - 1, xbar_control_energy=xb_ctrl)
        self._switch_arb = _arb_table(self.switch_arbiter_model, ports - 1)
        # VC allocator: one arbiter per output VC over (P-1)*V input VCs;
        # grants drive no crossbar control lines.
        vc_req = max(1, (ports - 1) * rc.num_vcs)
        self.vc_arbiter_model = arb_cls(
            self.tech, requesters=vc_req, xbar_control_energy=0.0)
        self._vc_arb = _arb_table(self.vc_arbiter_model, vc_req)
        # Per-input V:1 switch-allocation stage (VC routers).
        self.local_arbiter_model = arb_cls(
            self.tech, requesters=max(1, rc.num_vcs),
            xbar_control_energy=0.0)
        self._local_arb = _arb_table(self.local_arbiter_model,
                                     max(1, rc.num_vcs))
        # --- central buffer (central routers) ---
        if rc.kind == "central":
            self.central_model = CentralBufferPower(
                self.tech,
                rows=rc.cb_rows,
                banks=rc.cb_banks,
                flit_bits=rc.flit_bits,
                read_ports=rc.cb_read_ports,
                write_ports=rc.cb_write_ports,
                router_ports=ports,
            )
            self._e_cb_read = self.central_model.read_energy()
            self._e_cb_write = self.central_model.write_energy()
            # CB fabric arbiters: all P ports compete for the shared
            # memory's read/write ports.
            self.cb_arbiter_model = arb_cls(
                self.tech, requesters=ports,
                xbar_control_energy=(
                    self.central_model.input_crossbar.control_line_energy))
            self._cb_arb = _arb_table(self.cb_arbiter_model, ports)
        else:
            self.central_model = None
            self._e_cb_read = 0.0
            self._e_cb_write = 0.0
            self.cb_arbiter_model = None
            self._cb_arb = []
        # --- link ---
        if config.link.kind == "on_chip":
            link_cls = BusInvertLinkPower \
                if config.link.encoding == "bus_invert" else OnChipLinkPower
            self.link_model = link_cls(
                self.tech,
                length_mm=config.link.length_mm,
                width_bits=rc.flit_bits,
            )
        else:
            self.link_model = ChipToChipLinkPower(
                self.tech,
                power_watts=config.link.power_watts,
                width_bits=rc.flit_bits,
            )
        self._e_link = self.link_model.traversal_energy()
        self._e_link_idle = self.link_model.idle_energy_per_cycle()
        # --- static power (optional extension) ---
        if config.include_leakage:
            self._static_w = self._static_power_per_node()
        else:
            self._static_w = {}
        # --- clock power (optional extension) ---
        if config.include_clock:
            self.clock_model = self._build_clock_model()
            self._e_clock_cycle = self.clock_model.energy_per_cycle()
        else:
            self.clock_model = None
            self._e_clock_cycle = 0.0

    # --- measurement control -----------------------------------------------------

    def reset(self) -> None:
        """Zero the measurement state (called at the end of warm-up).

        Payload-tracking history (``data`` mode) survives on purpose:
        switching activity depends on the previous value on each wire,
        which the warm-up established.
        """
        self.accountant.reset()

    def reset_run(self) -> None:
        """Restore construction-time state for a brand-new run
        (simulation-context reuse): unlike :meth:`reset`, the payload
        history is dropped too — a fresh binding starts with empty
        wires."""
        self._last.clear()
        self.accountant.reset()

    # --- event sinks -----------------------------------------------------------
    # Each takes the node id plus enough context for activity tracking.

    def buffer_write(self, node: int, port: int,
                     payload: Optional[int]) -> None:
        """A flit written into an input buffer."""
        if self.data_mode and payload is not None:
            key = (node, "buf", port)
            energy = self.buffer_model.write_energy(self._last.get(key),
                                                    payload)
            self._last[key] = payload
        else:
            energy = self._e_buf_write
        self.accountant.add(node, ev.INPUT_BUFFER, ev.BUFFER_WRITE, energy)

    def buffer_read(self, node: int) -> None:
        """A flit read out of an input buffer (reads drive the full row)."""
        self.accountant.add(node, ev.INPUT_BUFFER, ev.BUFFER_READ,
                            self._e_buf_read)

    def xbar_traversal(self, node: int, out_port: int,
                       payload: Optional[int]) -> None:
        """A flit crossing the router's switch fabric."""
        if self.data_mode and payload is not None:
            key = (node, "xb", out_port)
            energy = self.crossbar_model.traversal_energy(
                self._last.get(key), payload)
            self._last[key] = payload
        else:
            energy = self._e_xbar
        self.accountant.add(node, ev.CROSSBAR, ev.XBAR_TRAVERSAL, energy)

    def arbitration(self, node: int, kind: str, num_requests: int,
                    granted: bool = True) -> None:
        """An arbitration round.

        ``kind`` selects the arbiter: ``"switch"`` (output-port switch
        arbiter, includes crossbar control energy), ``"vc"`` (VC
        allocator), ``"local"`` (per-input V:1 stage) or ``"cb"``
        (central-buffer fabric ports).
        """
        if kind == "switch":
            table, model = self._switch_arb, self.switch_arbiter_model
        elif kind == "vc":
            table, model = self._vc_arb, self.vc_arbiter_model
        elif kind == "local":
            table, model = self._local_arb, self.local_arbiter_model
        elif kind == "cb":
            table, model = self._cb_arb, self.cb_arbiter_model
        else:
            raise ValueError(f"unknown arbitration kind {kind!r}")
        if granted:
            energy = table[num_requests]
        else:
            energy = model.arbitration_energy(num_requests, granted=False)
        self.accountant.add(node, ev.ARBITER, ev.ARBITRATION, energy)

    def link_traversal(self, node: int, out_port: int,
                       payload: Optional[int]) -> None:
        """A flit leaving on an inter-router link (charged to the sender)."""
        if self.data_mode and payload is not None and \
                self.link_model.is_traffic_sensitive:
            key = (node, "link", out_port)
            energy = self.link_model.traversal_energy(
                self._last.get(key), payload)
            self._last[key] = payload
        else:
            energy = self._e_link
        self.accountant.add(node, ev.LINK, ev.LINK_TRAVERSAL, energy)

    def cb_write(self, node: int, payload: Optional[int]) -> None:
        """A flit moved into the central buffer."""
        if self.data_mode and payload is not None:
            key = (node, "cbw")
            energy = self.central_model.write_energy(self._last.get(key),
                                                     payload)
            self._last[key] = payload
        else:
            energy = self._e_cb_write
        self.accountant.add(node, ev.CENTRAL_BUFFER, ev.CB_WRITE, energy)

    def cb_read(self, node: int, payload: Optional[int]) -> None:
        """A flit moved out of the central buffer."""
        if self.data_mode and payload is not None:
            key = (node, "cbr")
            energy = self.central_model.read_energy(self._last.get(key),
                                                    payload)
            self._last[key] = payload
        else:
            energy = self._e_cb_read
        self.accountant.add(node, ev.CENTRAL_BUFFER, ev.CB_READ, energy)

    # --- telemetry access --------------------------------------------------------

    def telemetry_view(self):
        """Cumulative per-node (energies, counts) since the last reset —
        the accountant's tables here; :class:`CounterBinding` adds its
        not-yet-flushed counters.  Windowed telemetry diffs consecutive
        views, so summed windows telescope to the run totals."""
        return self.accountant.snapshot()

    # --- analytic access ---------------------------------------------------------

    def event_energies(self, requests: int = 1) -> Dict[str, float]:
        """Average-mode energy per event (joules), keyed by event kind.

        Arbitration energies are read at ``requests`` active requesters
        (1 = the uncontended case analytic models assume at low load).
        The analytic estimator multiplies these by predicted event rates
        instead of depositing them through the accountant.
        """
        def arb(table: List[float]) -> float:
            if not table:
                return 0.0
            return table[min(requests, len(table) - 1)]

        return {
            "buffer_write": self._e_buf_write,
            "buffer_read": self._e_buf_read,
            "xbar_traversal": self._e_xbar,
            "link_traversal": self._e_link,
            "switch_arb": arb(self._switch_arb),
            "vc_arb": arb(self._vc_arb),
            "local_arb": arb(self._local_arb),
            "cb_arb": arb(self._cb_arb),
            "cb_write": self._e_cb_write,
            "cb_read": self._e_cb_read,
        }

    def constant_power_w(self, links_per_node: List[int]) -> Dict[str, float]:
        """Traffic-insensitive power (watts) by component, network-wide —
        the closed-form equivalent of :meth:`finalize`: idle link power
        on every outgoing link, optional leakage, optional clock."""
        freq = self.tech.frequency_hz
        num_nodes = len(links_per_node)
        constant: Dict[str, float] = {}
        if self._e_link_idle > 0.0:
            constant[ev.LINK] = (self._e_link_idle * freq *
                                 sum(links_per_node))
        for component, watts in self._static_w.items():
            if watts > 0.0:
                constant[component] = (constant.get(component, 0.0) +
                                       watts * num_nodes)
        if self._e_clock_cycle > 0.0:
            constant[ev.CLOCK] = self._e_clock_cycle * freq * num_nodes
        return constant

    # --- static power (optional extension) ---------------------------------------

    def _static_power_per_node(self) -> Dict[str, float]:
        """Per-node leakage power (W) by component category."""
        from repro.power import leakage
        ports = 5
        rc = self.config.router
        static = {}
        buffers = ports * leakage.buffer_width_um(self.buffer_model)
        static[ev.INPUT_BUFFER] = leakage.static_power(self.tech, buffers)
        if rc.kind == "central":
            static[ev.CENTRAL_BUFFER] = leakage.static_power(
                self.tech,
                leakage.central_buffer_width_um(self.central_model))
            arb_width = 2 * leakage.arbiter_width_um(self.cb_arbiter_model)
            static[ev.CROSSBAR] = 0.0
        else:
            static[ev.CROSSBAR] = leakage.static_power(
                self.tech, leakage.crossbar_width_um(self.crossbar_model))
            arb_width = ports * leakage.arbiter_width_um(
                self.switch_arbiter_model)
            if rc.is_vc_kind:
                arb_width += ports * rc.num_vcs * \
                    leakage.arbiter_width_um(self.vc_arbiter_model)
                arb_width += ports * leakage.arbiter_width_um(
                    self.local_arbiter_model)
            static[ev.CENTRAL_BUFFER] = 0.0
        static[ev.ARBITER] = leakage.static_power(self.tech, arb_width)
        return static

    # --- clock power (optional extension) -----------------------------------------

    def _build_clock_model(self):
        """Per-router clock model: pipeline-register bits plus arbiter
        state over the router's silicon area."""
        from repro.power import area
        from repro.power.clock import ClockPower
        rc = self.config.router
        ports = 5
        stages = {"wormhole": 2, "vc": 3, "speculative_vc": 2,
                  "central": 3}[rc.kind]
        bits = ports * rc.flit_bits * stages
        bits += ports * self.switch_arbiter_model.requesters ** 2 // 2
        if rc.is_vc_kind:
            bits += ports * rc.num_vcs  # allocator state, coarse
        if rc.kind == "central":
            router_area = area.cb_router_area_um2(
                self.central_model, self.buffer_model, ports)
        else:
            router_area = area.xb_router_area_um2(
                self.buffer_model, self.crossbar_model, ports)
        return ClockPower(self.tech, registered_bits=bits,
                          area_um2=router_area)

    # --- finalization ------------------------------------------------------------

    def finalize(self, measured_cycles: int,
                 links_per_node: List[int]) -> None:
        """Deposit traffic-insensitive energy for the measured window.

        Chip-to-chip links burn constant power whether or not flits
        flow; each node is charged for its outgoing links.  When leakage
        accounting is enabled, every component is additionally charged
        its static power over the window.
        """
        if measured_cycles < 0:
            raise ValueError(
                f"measured_cycles must be >= 0, got {measured_cycles}"
            )
        window_s = measured_cycles / self.tech.frequency_hz
        if self._e_link_idle > 0.0:
            for node, degree in enumerate(links_per_node):
                energy = degree * self._e_link_idle * measured_cycles
                self.accountant.add(node, ev.LINK, ev.LINK_TRAVERSAL,
                                    energy, count=0)
        if self._static_w:
            for node in range(len(links_per_node)):
                for component, watts in self._static_w.items():
                    if watts > 0.0:
                        self.accountant.add(
                            node, component, ev.BUFFER_WRITE,
                            watts * window_s, count=0)
        if self._e_clock_cycle > 0.0:
            energy = self._e_clock_cycle * measured_cycles
            for node in range(len(links_per_node)):
                self.accountant.add(node, ev.CLOCK, ev.BUFFER_WRITE,
                                    energy, count=0)


class CounterBinding(PowerBinding):
    """Counter-based energy accounting for ``activity_mode="average"``.

    In average mode every event of one kind at one node costs the same
    precomputed energy (arbitrations vary only with the number of active
    requesters), so depositing a float per event through the accountant
    is pure overhead.  This binding instead bumps per-node integer
    counters on the hot path — arbitrations bucketed by request count
    against the precomputed per-kind tables — and converts counts to
    joules in one pass at :meth:`finalize`.

    Totals match the per-event path to within float reassociation
    (``count * e`` versus ``e`` added ``count`` times — the counter form
    is the more accurate of the two), and the accountant's event counts
    are preserved exactly.  ``data`` mode must keep the per-event path:
    its energies depend on consecutive payload Hamming distances, which
    cannot be counted ahead of time.
    """

    def __init__(self, config: NetworkConfig,
                 accountant: EnergyAccountant) -> None:
        if config.activity_mode == "data":
            raise ValueError(
                "counter-based accounting requires activity_mode="
                "'average'; data mode needs per-event payload tracking"
            )
        super().__init__(config, accountant)
        self._zero_counters()

    def _zero_counters(self) -> None:
        n = self.config.num_nodes
        if not hasattr(self, "n_buf_write"):
            # First call: allocate.  The lists are public and zeroed in
            # place afterwards so routers' sparse hot loops may cache
            # references and bump them directly, bypassing the sink
            # method calls (see VCRouter.__init__).
            self.n_buf_write = [0] * n
            self.n_buf_read = [0] * n
            self.n_xbar = [0] * n
            self.n_link = [0] * n
            self.n_cb_write = [0] * n
            self.n_cb_read = [0] * n
            #: kind -> per-node buckets indexed by active-request count.
            self.n_arb = {
                kind: [[0] * len(table) for _ in range(n)]
                for kind, table in (("switch", self._switch_arb),
                                    ("vc", self._vc_arb),
                                    ("local", self._local_arb),
                                    ("cb", self._cb_arb))
                if table
            }
        else:
            zero = [0] * n
            self.n_buf_write[:] = zero
            self.n_buf_read[:] = zero
            self.n_xbar[:] = zero
            self.n_link[:] = zero
            self.n_cb_write[:] = zero
            self.n_cb_read[:] = zero
            for per_node in self.n_arb.values():
                for buckets in per_node:
                    for i in range(len(buckets)):
                        buckets[i] = 0
        #: Energy/count of ungranted arbitration rounds (not constant
        #: per request count in every arbiter model, so accumulated as
        #: floats — rare enough that exactness costs nothing).
        self._e_arb_other = [0.0] * n
        self._n_arb_other = [0] * n

    def reset(self) -> None:
        self._zero_counters()
        self.accountant.reset()

    def reset_run(self) -> None:
        # _zero_counters zeroes the public lists IN PLACE — router hot
        # loops hold direct references to them across resets.
        self._zero_counters()
        self._last.clear()
        self.accountant.reset()

    # --- event sinks: one integer bump each ------------------------------------

    def buffer_write(self, node: int, port: int,
                     payload: Optional[int]) -> None:
        self.n_buf_write[node] += 1

    def buffer_read(self, node: int) -> None:
        self.n_buf_read[node] += 1

    def xbar_traversal(self, node: int, out_port: int,
                       payload: Optional[int]) -> None:
        self.n_xbar[node] += 1

    def link_traversal(self, node: int, out_port: int,
                       payload: Optional[int]) -> None:
        self.n_link[node] += 1

    def cb_write(self, node: int, payload: Optional[int]) -> None:
        self.n_cb_write[node] += 1

    def cb_read(self, node: int, payload: Optional[int]) -> None:
        self.n_cb_read[node] += 1

    def arbitration(self, node: int, kind: str, num_requests: int,
                    granted: bool = True) -> None:
        if granted:
            self.n_arb[kind][node][num_requests] += 1
            return
        if kind == "switch":
            model = self.switch_arbiter_model
        elif kind == "vc":
            model = self.vc_arbiter_model
        elif kind == "local":
            model = self.local_arbiter_model
        elif kind == "cb":
            model = self.cb_arbiter_model
        else:
            raise ValueError(f"unknown arbitration kind {kind!r}")
        self._e_arb_other[node] += model.arbitration_energy(
            num_requests, granted=False)
        self._n_arb_other[node] += 1

    # --- telemetry access --------------------------------------------------------

    def _counter_contributions(self):
        """Yield ``(node, component, event, energy_j, count)`` for the
        accumulated, not-yet-flushed counters — the joule conversion
        shared by :meth:`_flush` and :meth:`telemetry_view`."""
        per_event = (
            (self.n_buf_write, ev.BUFFER_WRITE, self._e_buf_write),
            (self.n_buf_read, ev.BUFFER_READ, self._e_buf_read),
            (self.n_xbar, ev.XBAR_TRAVERSAL, self._e_xbar),
            (self.n_link, ev.LINK_TRAVERSAL, self._e_link),
            (self.n_cb_write, ev.CB_WRITE, self._e_cb_write),
            (self.n_cb_read, ev.CB_READ, self._e_cb_read),
        )
        for counts, event, energy in per_event:
            component = ev.EVENT_COMPONENT[event]
            for node, count in enumerate(counts):
                if count:
                    yield node, component, event, count * energy, count
        tables = {"switch": self._switch_arb, "vc": self._vc_arb,
                  "local": self._local_arb, "cb": self._cb_arb}
        for kind, per_node in self.n_arb.items():
            table = tables[kind]
            for node, buckets in enumerate(per_node):
                count = sum(buckets)
                if not count:
                    continue
                energy = sum(c * table[i]
                             for i, c in enumerate(buckets) if c)
                yield node, ev.ARBITER, ev.ARBITRATION, energy, count
        for node, count in enumerate(self._n_arb_other):
            if count:
                yield (node, ev.ARBITER, ev.ARBITRATION,
                       self._e_arb_other[node], count)

    def telemetry_view(self):
        """Accountant tables plus the pending counters — so windowed
        snapshots see counter-mode energy mid-run, before finalization
        flushes it."""
        energies, counts = self.accountant.snapshot()
        for node, component, event, energy, count in \
                self._counter_contributions():
            energies[node][component] += energy
            counts[node][event] += count
        return energies, counts

    # --- finalization -----------------------------------------------------------

    def _flush(self) -> None:
        """Convert the accumulated counters into accountant deposits."""
        add = self.accountant.add
        for node, component, event, energy, count in \
                self._counter_contributions():
            add(node, component, event, energy, count=count)
        self._zero_counters()

    def finalize(self, measured_cycles: int,
                 links_per_node: List[int]) -> None:
        self._flush()
        super().finalize(measured_cycles, links_per_node)


class NullBinding:
    """No-op binding for pure-performance simulation."""

    data_mode = False

    def reset(self) -> None:
        pass

    def reset_run(self) -> None:
        pass

    def buffer_write(self, node: int, port: int, payload) -> None:
        pass

    def buffer_read(self, node: int) -> None:
        pass

    def xbar_traversal(self, node: int, out_port: int, payload) -> None:
        pass

    def arbitration(self, node: int, kind: str, num_requests: int,
                    granted: bool = True) -> None:
        pass

    def link_traversal(self, node: int, out_port: int, payload) -> None:
        pass

    def cb_write(self, node: int, payload) -> None:
        pass

    def cb_read(self, node: int, payload) -> None:
        pass

    def finalize(self, measured_cycles: int, links_per_node) -> None:
        pass

    def telemetry_view(self):
        """No energy model: telemetry records traffic columns only."""
        return None, None
