"""The paper's named experimental configurations.

Section 4.2 (on-chip, 4x4 torus, 256-bit flits, 2 GHz, 1.2 V, 0.1 um,
1.08 pF / 3 mm links — the Dally-Towles on-chip network [7]):

* ``WH64``  — wormhole router, 64-flit input buffer per port;
* ``VC16``  — VC router, 2 VCs/port, 8-flit buffer per VC;
* ``VC64``  — VC router, 8 VCs/port, 8-flit buffer per VC;
* ``VC128`` — VC router, 8 VCs/port, 16-flit buffer per VC.

Section 4.4 (chip-to-chip, 4x4 torus, 32-bit flits, 1 GHz, 3 W constant
per 32 Gb/s link):

* ``CB`` — central-buffered router: 4-bank central buffer, 1 flit wide
  per bank, 2560 rows, 2 read + 2 write ports, 64-flit input buffers;
* ``XB`` — input-buffered crossbar router: 16 VCs, 268-flit buffer per
  VC, 5x5 crossbar.
"""

from __future__ import annotations

from repro.core.config import (
    LinkConfig,
    NetworkConfig,
    RouterConfig,
    TechConfig,
)

#: On-chip operating point (section 4.2).
ON_CHIP_TECH = TechConfig(feature_size_um=0.1, vdd=1.2, frequency_hz=2.0e9)
#: 4x4 torus on a 12 mm x 12 mm chip: 3 mm between adjacent routers.
ON_CHIP_LINK = LinkConfig(kind="on_chip", length_mm=3.0)

#: Chip-to-chip operating point (section 4.4).
CHIP_TO_CHIP_TECH = TechConfig(feature_size_um=0.1, vdd=1.2,
                               frequency_hz=1.0e9)
#: 32 Gb/s link consuming a constant 3 W (IBM InfiniBand 12X figure).
CHIP_TO_CHIP_LINK = LinkConfig(kind="chip_to_chip", power_watts=3.0)


def _on_chip(router: RouterConfig) -> NetworkConfig:
    return NetworkConfig(
        topology="torus", width=4, height=4,
        router=router, link=ON_CHIP_LINK, tech=ON_CHIP_TECH,
        packet_length_flits=5,
    )


def _chip_to_chip(router: RouterConfig) -> NetworkConfig:
    return NetworkConfig(
        topology="torus", width=4, height=4,
        router=router, link=CHIP_TO_CHIP_LINK, tech=CHIP_TO_CHIP_TECH,
        packet_length_flits=5,
    )


def wh64() -> NetworkConfig:
    """Wormhole router with a 64-flit input buffer per port (on-chip)."""
    return _on_chip(RouterConfig(
        kind="wormhole", flit_bits=256, buffer_depth=64))


def vc16() -> NetworkConfig:
    """VC router with 2 VCs/port and 8-flit buffers per VC (on-chip)."""
    return _on_chip(RouterConfig(
        kind="vc", flit_bits=256, buffer_depth=8, num_vcs=2))


def vc64() -> NetworkConfig:
    """VC router with 8 VCs/port and 8-flit buffers per VC (on-chip)."""
    return _on_chip(RouterConfig(
        kind="vc", flit_bits=256, buffer_depth=8, num_vcs=8))


def vc128() -> NetworkConfig:
    """VC router with 8 VCs/port and 16-flit buffers per VC (on-chip)."""
    return _on_chip(RouterConfig(
        kind="vc", flit_bits=256, buffer_depth=16, num_vcs=8))


def cb() -> NetworkConfig:
    """Central-buffered router (chip-to-chip): 4 x 2560-row banked
    central buffer with 2r/2w fabric ports, 64-flit input buffers."""
    return _chip_to_chip(RouterConfig(
        kind="central", flit_bits=32, buffer_depth=64,
        cb_rows=2560, cb_banks=4, cb_read_ports=2, cb_write_ports=2))


def xb() -> NetworkConfig:
    """Input-buffered crossbar router (chip-to-chip): 16 VCs with
    268-flit buffers per VC and a 5x5 crossbar."""
    return _chip_to_chip(RouterConfig(
        kind="vc", flit_bits=32, buffer_depth=268, num_vcs=16))


def walkthrough_router() -> NetworkConfig:
    """The section 3.3 walkthrough router: 5 ports, 4-flit buffers per
    port, 32-bit flits, 5x5 crossbar, 4:1 arbiters, on-chip links."""
    return _on_chip(RouterConfig(
        kind="wormhole", flit_bits=32, buffer_depth=4))


PRESETS = {
    "WH64": wh64,
    "VC16": vc16,
    "VC64": vc64,
    "VC128": vc128,
    "CB": cb,
    "XB": xb,
}


def preset(name: str) -> NetworkConfig:
    """Look up a paper configuration by name (case-insensitive)."""
    try:
        return PRESETS[name.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; options: {sorted(PRESETS)}"
        ) from None
