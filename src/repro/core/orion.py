"""The Orion facade: build, run and sweep power-performance simulations.

This is the library's main entry point.  An :class:`Orion` instance wraps
one :class:`NetworkConfig`; its methods cover the paper's three usage
categories (Figure 3):

1. trade off configurations — :meth:`run` / :meth:`sweep` two configs and
   compare latency and power;
2. explore workloads — pass different traffic patterns to the same
   config;
3. evaluate new microarchitectures — define a new ``RouterConfig`` kind
   plus power models and reuse the same driver.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.core.config import NetworkConfig
from repro.core.power_binding import PowerBinding
from repro.core.events import EnergyAccountant
from repro.core.report import SweepPoint, SweepResult
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.traffic import (
    BroadcastTraffic,
    TrafficPattern,
    UniformRandomTraffic,
)


def _parallel_point(payload):
    """Module-level worker for multiprocessing sweeps (must be
    picklable).  Builds the traffic pattern in the worker process and
    runs one rate point."""
    (config, traffic_kind, rate, source, seed, warmup_cycles,
     sample_packets, max_cycles) = payload
    orion = Orion(config)
    if traffic_kind == "uniform":
        traffic = UniformRandomTraffic(orion._topo(), rate, seed=seed)
    elif traffic_kind == "broadcast":
        traffic = BroadcastTraffic(orion._topo(), source, rate, seed=seed)
    else:
        raise ValueError(f"unknown parallel traffic {traffic_kind!r}")
    return orion.run(traffic, warmup_cycles=warmup_cycles,
                     sample_packets=sample_packets, max_cycles=max_cycles)


class Orion:
    """Power-performance simulator for one network configuration."""

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config

    # --- single runs --------------------------------------------------------

    def run_uniform(self, rate: float, *,
                    warmup_cycles: int = 1000,
                    sample_packets: int = 10000,
                    seed: int = 1,
                    max_cycles: int = 2_000_000,
                    collect_power: bool = True) -> SimulationResult:
        """Run uniform random traffic at ``rate`` packets/cycle/node."""
        traffic = UniformRandomTraffic(self._topo(), rate, seed=seed)
        return self.run(traffic, warmup_cycles=warmup_cycles,
                        sample_packets=sample_packets,
                        max_cycles=max_cycles,
                        collect_power=collect_power)

    def run_broadcast(self, source: int, rate: float, *,
                      warmup_cycles: int = 1000,
                      sample_packets: int = 10000,
                      seed: int = 1,
                      max_cycles: int = 2_000_000,
                      collect_power: bool = True) -> SimulationResult:
        """Run single-source broadcast traffic (section 4.3)."""
        traffic = BroadcastTraffic(self._topo(), source, rate, seed=seed)
        return self.run(traffic, warmup_cycles=warmup_cycles,
                        sample_packets=sample_packets,
                        max_cycles=max_cycles,
                        collect_power=collect_power)

    def run(self, traffic: TrafficPattern, *,
            warmup_cycles: int = 1000,
            sample_packets: int = 10000,
            max_cycles: int = 2_000_000,
            collect_power: bool = True) -> SimulationResult:
        """Run an arbitrary traffic pattern to the paper's protocol."""
        sim = Simulation(
            self.config, traffic,
            warmup_cycles=warmup_cycles,
            sample_packets=sample_packets,
            max_cycles=max_cycles,
            collect_power=collect_power,
        )
        return sim.run()

    # --- sweeps ----------------------------------------------------------------

    def sweep_uniform(self, rates: Sequence[float], *,
                      label: Optional[str] = None,
                      warmup_cycles: int = 1000,
                      sample_packets: int = 10000,
                      seed: int = 1,
                      max_cycles: int = 2_000_000,
                      keep_results: bool = False,
                      processes: int = 1) -> SweepResult:
        """Latency/power curve over injection rates, uniform traffic —
        the x-axes of Figures 5 and 7.

        ``processes > 1`` runs the rate points concurrently in a
        multiprocessing pool.
        """
        if processes > 1:
            return self._sweep_parallel(
                rates, "uniform", 0, label=label,
                warmup_cycles=warmup_cycles,
                sample_packets=sample_packets, seed=seed,
                max_cycles=max_cycles, keep_results=keep_results,
                processes=processes)
        traffic_factory = lambda rate: UniformRandomTraffic(
            self._topo(), rate, seed=seed)
        return self.sweep(rates, traffic_factory, label=label,
                          warmup_cycles=warmup_cycles,
                          sample_packets=sample_packets,
                          max_cycles=max_cycles,
                          keep_results=keep_results)

    def sweep_broadcast(self, source: int, rates: Sequence[float], *,
                        label: Optional[str] = None,
                        warmup_cycles: int = 1000,
                        sample_packets: int = 10000,
                        seed: int = 1,
                        max_cycles: int = 2_000_000,
                        keep_results: bool = False,
                        processes: int = 1) -> SweepResult:
        """Latency/power curve over injection rates, broadcast traffic."""
        if processes > 1:
            return self._sweep_parallel(
                rates, "broadcast", source, label=label,
                warmup_cycles=warmup_cycles,
                sample_packets=sample_packets, seed=seed,
                max_cycles=max_cycles, keep_results=keep_results,
                processes=processes)
        traffic_factory = lambda rate: BroadcastTraffic(
            self._topo(), source, rate, seed=seed)
        return self.sweep(rates, traffic_factory, label=label,
                          warmup_cycles=warmup_cycles,
                          sample_packets=sample_packets,
                          max_cycles=max_cycles,
                          keep_results=keep_results)

    def _sweep_parallel(self, rates: Sequence[float], traffic_kind: str,
                        source: int, *, label, warmup_cycles,
                        sample_packets, seed, max_cycles, keep_results,
                        processes: int) -> SweepResult:
        """Fan rate points out over a process pool."""
        import multiprocessing

        if not rates:
            raise ValueError("sweep needs at least one rate")
        payloads = [
            (self.config, traffic_kind, rate, source, seed,
             warmup_cycles, sample_packets, max_cycles)
            for rate in rates
        ]
        with multiprocessing.Pool(min(processes, len(rates))) as pool:
            results = pool.map(_parallel_point, payloads)
        sweep = SweepResult(label=label or self.config.router.kind)
        for rate, result in zip(rates, results):
            sweep.points.append(SweepPoint(
                rate=rate,
                avg_latency=result.avg_latency,
                total_power_w=result.total_power_w,
                throughput_flits_per_cycle=(
                    result.throughput_flits_per_cycle),
                breakdown_w=result.power_breakdown_w(),
                result=result if keep_results else None,
            ))
        return sweep

    def sweep(self, rates: Sequence[float],
              traffic_factory: Callable[[float], TrafficPattern], *,
              label: Optional[str] = None,
              warmup_cycles: int = 1000,
              sample_packets: int = 10000,
              max_cycles: int = 2_000_000,
              keep_results: bool = False) -> SweepResult:
        """Run one simulation per rate and collect the curve."""
        if not rates:
            raise ValueError("sweep needs at least one rate")
        sweep = SweepResult(label=label or self.config.router.kind)
        for rate in rates:
            result = self.run(traffic_factory(rate),
                              warmup_cycles=warmup_cycles,
                              sample_packets=sample_packets,
                              max_cycles=max_cycles)
            sweep.points.append(SweepPoint(
                rate=rate,
                avg_latency=result.avg_latency,
                total_power_w=result.total_power_w,
                throughput_flits_per_cycle=(
                    result.throughput_flits_per_cycle),
                breakdown_w=result.power_breakdown_w(),
                result=result if keep_results else None,
            ))
        return sweep

    # --- standalone power analysis ----------------------------------------------

    def flit_energy_walkthrough(self) -> Dict[str, float]:
        """The section 3.3 walkthrough: per-event energies (J) of one
        head flit passing through a router and its outgoing link.

        ``E_flit = E_wrt + E_arb + E_read + E_xb + E_link``.
        """
        accountant = EnergyAccountant(self.config.num_nodes)
        binding = PowerBinding(self.config, accountant)
        energies = {
            "E_wrt": binding.buffer_model.write_energy(),
            "E_arb": binding.switch_arbiter_model.arbitration_energy(1),
            "E_read": binding.buffer_model.read_energy(),
            "E_xb": binding.crossbar_model.traversal_energy(),
            "E_link": binding.link_model.traversal_energy(),
        }
        energies["E_flit"] = sum(energies.values())
        return energies

    def power_models(self) -> PowerBinding:
        """The configuration's power models, usable standalone (the
        paper's "separate power analysis tool" release mode)."""
        return PowerBinding(self.config,
                            EnergyAccountant(self.config.num_nodes))

    # --- helpers ------------------------------------------------------------------

    def _topo(self):
        from repro.sim.network import Network
        from repro.sim.topology import Mesh, Torus
        if self.config.topology == "torus":
            return Torus(self.config.width, self.config.height)
        return Mesh(self.config.width, self.config.height)
