"""The Orion facade: build, run and sweep power-performance simulations.

This is the library's main entry point.  An :class:`Orion` instance wraps
one :class:`NetworkConfig`; its methods cover the paper's three usage
categories (Figure 3):

1. trade off configurations — :meth:`run` / :meth:`sweep` two configs and
   compare latency and power;
2. explore workloads — pass different traffic patterns to the same
   config;
3. evaluate new microarchitectures — define a new ``RouterConfig`` kind
   plus power models and reuse the same driver.

Per-run measurement knobs live in one :class:`RunProtocol` object — the
single source of truth for how a run is measured.  Every run/sweep
method takes ``(..., protocol=None, **overrides)``: the deprecated
per-knob keyword layer accepts any ``RunProtocol`` field by name and is
resolved in one :func:`resolve_protocol` call site (:meth:`Orion._resolve`),
emitting a ``DeprecationWarning``.  Sweeps execute through the
:mod:`repro.exp` orchestrator, so any registered traffic kind can be
swept, fanned out over ``processes`` worker processes, and optionally
served from an on-disk result cache.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.config import NetworkConfig, RunProtocol, resolve_protocol
from repro.core.power_binding import PowerBinding
from repro.core.events import EnergyAccountant
from repro.core.report import SweepPoint, SweepResult
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.traffic import TrafficPattern, make_traffic

#: Names the deprecated keyword layer recognises as protocol overrides;
#: anything else in a ``run_traffic``/``sweep_traffic`` call is a
#: traffic parameter.
_PROTOCOL_FIELDS = frozenset(
    f.name for f in dataclasses.fields(RunProtocol))


def _split_overrides(kwargs: dict) -> Tuple[dict, dict]:
    """Partition mixed keywords into (protocol overrides, traffic
    parameters) by RunProtocol field name."""
    protocol_overrides = {}
    traffic_params = {}
    for name, value in kwargs.items():
        if name in _PROTOCOL_FIELDS:
            protocol_overrides[name] = value
        else:
            traffic_params[name] = value
    return protocol_overrides, traffic_params


class Orion:
    """Power-performance simulator for one network configuration."""

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config

    # --- single runs --------------------------------------------------------

    def run_uniform(self, rate: float,
                    protocol: Optional[RunProtocol] = None,
                    **overrides) -> SimulationResult:
        """Run uniform random traffic at ``rate`` packets/cycle/node.

        ``overrides`` accepts any :class:`RunProtocol` field as a
        deprecated per-run keyword; new code passes one ``protocol``.
        """
        return self.run_traffic("uniform", rate, protocol, **overrides)

    def run_broadcast(self, source: int, rate: float,
                      protocol: Optional[RunProtocol] = None,
                      **overrides) -> SimulationResult:
        """Run single-source broadcast traffic (section 4.3)."""
        return self.run_traffic("broadcast", rate, protocol,
                                source=source, **overrides)

    def run_traffic(self, traffic: str, rate: float,
                    protocol: Optional[RunProtocol] = None,
                    **kwargs) -> SimulationResult:
        """Run any registered traffic kind (see ``TRAFFIC_REGISTRY``).

        Keywords that name :class:`RunProtocol` fields are (deprecated)
        protocol overrides; everything else is passed to the traffic
        constructor.
        """
        protocol_overrides, traffic_params = _split_overrides(kwargs)
        protocol = self._resolve(protocol, protocol_overrides)
        pattern = make_traffic(traffic, self._topo(), rate,
                               seed=protocol.seed, **traffic_params)
        return self.run(pattern, protocol)

    def run(self, traffic: TrafficPattern,
            protocol: Optional[RunProtocol] = None,
            **overrides) -> SimulationResult:
        """Run an arbitrary traffic pattern to the paper's protocol."""
        protocol = self._resolve(protocol, overrides)
        return Simulation(self.config, traffic, protocol).run()

    # --- sweeps ----------------------------------------------------------------

    def sweep_uniform(self, rates: Sequence[float],
                      protocol: Optional[RunProtocol] = None, *,
                      label: Optional[str] = None,
                      keep_results: bool = False,
                      processes: int = 1,
                      cache=None,
                      **overrides) -> SweepResult:
        """Latency/power curve over injection rates, uniform traffic —
        the x-axes of Figures 5 and 7.

        ``processes > 1`` runs the rate points concurrently in a
        multiprocessing pool; ``cache`` (a ``ResultCache`` or directory
        path) serves repeated points from disk.
        """
        return self.sweep_traffic("uniform", rates, protocol, label=label,
                                  keep_results=keep_results,
                                  processes=processes, cache=cache,
                                  **overrides)

    def sweep_broadcast(self, source: int, rates: Sequence[float],
                        protocol: Optional[RunProtocol] = None, *,
                        label: Optional[str] = None,
                        keep_results: bool = False,
                        processes: int = 1,
                        cache=None,
                        **overrides) -> SweepResult:
        """Latency/power curve over injection rates, broadcast traffic."""
        return self.sweep_traffic("broadcast", rates, protocol,
                                  source=source, label=label,
                                  keep_results=keep_results,
                                  processes=processes, cache=cache,
                                  **overrides)

    def sweep_traffic(self, traffic: str, rates: Sequence[float],
                      protocol: Optional[RunProtocol] = None, *,
                      label: Optional[str] = None,
                      keep_results: bool = False,
                      processes: int = 1,
                      cache=None,
                      progress=None,
                      on_error: str = "raise",
                      point_timeout: Optional[float] = None,
                      retries: int = 0,
                      **kwargs) -> SweepResult:
        """Sweep any registered traffic kind over injection rates.

        Executes through the :mod:`repro.exp` orchestrator — serial and
        parallel runs produce bit-identical points, and failures at one
        rate propagate by default (``on_error="record"`` isolates them
        instead; failed points surface on ``SweepResult.failed_points``).
        ``point_timeout`` bounds each point's wall-clock seconds and
        ``retries`` re-runs points whose worker crashed (see
        :func:`repro.exp.run_points`).
        """
        from repro.exp import (
            ResultCache,
            RunPoint,
            TrafficSpec,
            outcomes_to_sweep,
            run_points,
        )

        if not rates:
            raise ValueError("sweep needs at least one rate")
        protocol_overrides, traffic_params = _split_overrides(kwargs)
        protocol = self._resolve(protocol, protocol_overrides)
        label = label or self.config.router.kind
        spec = TrafficSpec.of(traffic, **traffic_params)
        points = [RunPoint(config=self.config, traffic=spec, rate=rate,
                           protocol=protocol, label=label)
                  for rate in rates]
        if isinstance(cache, str):
            cache = ResultCache(cache)
        outcomes = run_points(points, processes=processes, cache=cache,
                              keep_results=keep_results, progress=progress,
                              on_error=on_error,
                              point_timeout=point_timeout, retries=retries)
        return outcomes_to_sweep(outcomes, label=label)

    def sweep(self, rates: Sequence[float],
              traffic_factory: Callable[[float], TrafficPattern],
              protocol: Optional[RunProtocol] = None, *,
              label: Optional[str] = None,
              keep_results: bool = False,
              **overrides) -> SweepResult:
        """Run one simulation per rate and collect the curve.

        The factory form supports unregistered/trace patterns; it is
        inherently serial (factories need not be picklable).  Prefer
        :meth:`sweep_traffic` for registered kinds.
        """
        protocol = self._resolve(protocol, overrides)
        if not rates:
            raise ValueError("sweep needs at least one rate")
        sweep = SweepResult(label=label or self.config.router.kind)
        for rate in rates:
            result = self.run(traffic_factory(rate), protocol)
            sweep.points.append(SweepPoint(
                rate=rate,
                avg_latency=result.avg_latency,
                total_power_w=result.total_power_w,
                throughput_flits_per_cycle=(
                    result.throughput_flits_per_cycle),
                breakdown_w=result.power_breakdown_w(),
                result=result if keep_results else None,
                status=result.status,
            ))
        return sweep

    # --- analytic estimation ------------------------------------------------------

    def estimate_uniform(self, rate: float, *,
                         with_saturation: bool = True):
        """Closed-form estimate for uniform traffic at ``rate``
        packets/cycle/node — milliseconds instead of a simulation."""
        return self.estimate_traffic("uniform", rate,
                                     with_saturation=with_saturation)

    def estimate_traffic(self, traffic: str, rate: float, *,
                         with_saturation: bool = True,
                         **traffic_params):
        """Closed-form latency/power/saturation estimate of one
        operating point (see :mod:`repro.analytic`).  Mirrors
        :meth:`run_traffic`: same traffic kinds, same rate units, no
        protocol — nothing is simulated."""
        from repro.analytic import estimate
        return estimate(self.config, traffic, rate,
                        with_saturation=with_saturation, **traffic_params)

    def estimate_saturation(self, traffic: str = "uniform",
                            **traffic_params):
        """Predicted saturation rate of a traffic kind on this config
        (the paper's twice-zero-load-latency criterion, closed form)."""
        from repro.analytic import estimate_saturation
        return estimate_saturation(self.config, traffic, **traffic_params)

    # --- standalone power analysis ----------------------------------------------

    def flit_energy_walkthrough(self) -> Dict[str, float]:
        """The section 3.3 walkthrough: per-event energies (J) of one
        head flit passing through a router and its outgoing link.

        ``E_flit = E_wrt + E_arb + E_read + E_xb + E_link``.
        """
        accountant = EnergyAccountant(self.config.num_nodes)
        binding = PowerBinding(self.config, accountant)
        energies = {
            "E_wrt": binding.buffer_model.write_energy(),
            "E_arb": binding.switch_arbiter_model.arbitration_energy(1),
            "E_read": binding.buffer_model.read_energy(),
            "E_xb": binding.crossbar_model.traversal_energy(),
            "E_link": binding.link_model.traversal_energy(),
        }
        energies["E_flit"] = sum(energies.values())
        return energies

    def power_models(self) -> PowerBinding:
        """The configuration's power models, usable standalone (the
        paper's "separate power analysis tool" release mode)."""
        return PowerBinding(self.config,
                            EnergyAccountant(self.config.num_nodes))

    # --- helpers ------------------------------------------------------------------

    def _topo(self):
        from repro.sim.topology import topology_for
        return topology_for(self.config)

    @staticmethod
    def _resolve(protocol: Optional[RunProtocol],
                 overrides: dict) -> RunProtocol:
        """The facade's single ``resolve_protocol`` call site: every
        public method funnels its deprecated per-knob keywords here."""
        return resolve_protocol(protocol, **overrides)
