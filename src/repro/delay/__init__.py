"""Router delay model (Peh-Dally [15]) — pipeline budgeting.

The counterpart to the power models: logical-effort delay estimates for
the router functions (VA, SA, ST, buffer access), used to validate the
paper's 2-stage wormhole and 3-stage virtual-channel pipelines and to
report the achievable clock frequency of a configuration.
"""

from repro.delay.logical_effort import (
    FO4_PS_PER_UM,
    TAU_PER_FO4,
    Gate,
    fo4_to_ps,
    inverter,
    mux,
    nand,
    nor,
    path_delay_tau,
    tau_to_fo4,
)
from repro.delay.router_delay import (
    RouterDelayModel,
    StageDelays,
    arbiter_delay_fo4,
    buffer_access_delay_fo4,
    crossbar_delay_fo4,
    switch_allocation_delay_fo4,
    vc_allocation_delay_fo4,
)

__all__ = [
    "FO4_PS_PER_UM",
    "TAU_PER_FO4",
    "Gate",
    "fo4_to_ps",
    "inverter",
    "mux",
    "nand",
    "nor",
    "path_delay_tau",
    "tau_to_fo4",
    "RouterDelayModel",
    "StageDelays",
    "arbiter_delay_fo4",
    "buffer_access_delay_fo4",
    "crossbar_delay_fo4",
    "switch_allocation_delay_fo4",
    "vc_allocation_delay_fo4",
]
