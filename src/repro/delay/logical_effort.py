"""Logical-effort delay estimation.

The paper pipelines its routers "in accordance to the router delay model
proposed in [15]" (Peh & Dally, HPCA 2001), which expresses each router
function's delay with the method of logical effort [Sutherland &
Sproull]: a path through ``N`` gate stages with total logical effort
``G``, branching effort ``B``, electrical effort ``H`` and parasitic
delay ``P`` has minimum delay

    D = N * (G * B * H) ** (1/N) + P        (in units of tau)

where tau is the delay of an ideal inverter driving another identical
inverter with no parasitics.  A fanout-of-4 inverter (FO4) takes 5 tau,
the conventional technology-independent unit for pipeline budgeting.

This module provides the per-gate efforts/parasitics and the path-delay
arithmetic; :mod:`repro.delay.router_delay` composes them into the
router-function delays.
"""

from __future__ import annotations

from dataclasses import dataclass

#: tau per FO4 inverter delay: d = g*h + p = 1*4 + 1.
TAU_PER_FO4 = 5.0

#: FO4 delay in picoseconds per micrometre of drawn feature size — the
#: standard "360 ps/um" scaling rule (an FO4 is ~36 ps at 0.1 um).
FO4_PS_PER_UM = 360.0


@dataclass(frozen=True)
class Gate:
    """Logical effort ``g`` and parasitic delay ``p`` of one gate type."""

    name: str
    effort: float
    parasitic: float

    def __post_init__(self) -> None:
        if self.effort < 1.0:
            raise ValueError(
                f"{self.name}: logical effort must be >= 1, got "
                f"{self.effort}"
            )
        if self.parasitic < 0.0:
            raise ValueError(
                f"{self.name}: parasitic delay must be >= 0, got "
                f"{self.parasitic}"
            )


def inverter() -> Gate:
    return Gate("inv", 1.0, 1.0)


def nand(fan_in: int) -> Gate:
    """``g = (n+2)/3``, ``p = n`` for an n-input NAND."""
    _check_fan_in(fan_in)
    return Gate(f"nand{fan_in}", (fan_in + 2) / 3.0, float(fan_in))


def nor(fan_in: int) -> Gate:
    """``g = (2n+1)/3``, ``p = n`` for an n-input NOR."""
    _check_fan_in(fan_in)
    return Gate(f"nor{fan_in}", (2 * fan_in + 1) / 3.0, float(fan_in))


def mux(inputs: int) -> Gate:
    """Transmission-gate multiplexer: ``g = 2``, ``p = 2n``."""
    _check_fan_in(inputs)
    return Gate(f"mux{inputs}", 2.0, 2.0 * inputs)


def path_delay_tau(gates, branching: float = 1.0,
                   electrical: float = 1.0) -> float:
    """Minimum delay (tau) of a path through ``gates``.

    ``branching`` is the product of branch efforts along the path;
    ``electrical`` the ratio of output to input capacitance.  Stage sizes
    are assumed optimised, so each of the ``N`` stages bears effort
    ``F^(1/N)``.
    """
    if not gates:
        raise ValueError("a path needs at least one gate")
    if branching < 1.0:
        raise ValueError(f"branching effort must be >= 1, got {branching}")
    if electrical <= 0.0:
        raise ValueError(
            f"electrical effort must be positive, got {electrical}"
        )
    logical = 1.0
    parasitic = 0.0
    for gate in gates:
        logical *= gate.effort
        parasitic += gate.parasitic
    n = len(gates)
    path_effort = logical * branching * electrical
    return n * path_effort ** (1.0 / n) + parasitic


def tau_to_fo4(tau: float) -> float:
    """Convert a delay from tau to FO4 units."""
    return tau / TAU_PER_FO4


def fo4_to_ps(fo4: float, feature_size_um: float) -> float:
    """Convert FO4 units to picoseconds at a process node."""
    if feature_size_um <= 0:
        raise ValueError(
            f"feature size must be positive, got {feature_size_um}"
        )
    return fo4 * FO4_PS_PER_UM * feature_size_um


def _check_fan_in(fan_in: int) -> None:
    if fan_in < 1:
        raise ValueError(f"fan-in must be >= 1, got {fan_in}")
