"""Router-function delays and pipeline budgeting (Peh-Dally style).

Composes :mod:`repro.delay.logical_effort` gate paths into the delays of
the router functions the paper's pipelines are built from — virtual
channel allocation (VA), switch allocation (SA), switch traversal (ST)
and buffer access — then checks them against a clock budget to validate
the 2-stage wormhole and 3-stage virtual-channel pipelines of
section 4.2 and report the achievable frequency of a configuration.

Critical paths (matrix arbiter grant logic, mux-based crossbars) follow
the structures of the corresponding power models, so the same
architectural parameters drive both energy and delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.config import NetworkConfig
from repro.delay import logical_effort as le


def arbiter_delay_fo4(requesters: int) -> float:
    """Matrix arbiter request->grant delay (FO4).

    Path: request inverter -> first-level NOR2 (branching to the R-1
    grant rows) -> (R-1)-input second-level NOR -> grant inverter.
    """
    if requesters < 1:
        raise ValueError(f"requesters must be >= 1, got {requesters}")
    if requesters == 1:
        # Degenerate arbiter: a wire and a buffer.
        return le.tau_to_fo4(le.path_delay_tau([le.inverter()]))
    gates = [
        le.inverter(),
        le.nor(2),
        le.nor(max(2, requesters - 1)),
        le.inverter(),
    ]
    branching = float(max(1, requesters - 1))
    return le.tau_to_fo4(le.path_delay_tau(gates, branching=branching))


def vc_allocation_delay_fo4(ports: int, num_vcs: int) -> float:
    """VA delay: a V:1 stage per input VC feeding a ((P-1)*V):1 stage
    per output VC (separable allocator)."""
    if ports < 2:
        raise ValueError(f"ports must be >= 2, got {ports}")
    if num_vcs < 1:
        raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
    stage1 = arbiter_delay_fo4(num_vcs)
    stage2 = arbiter_delay_fo4((ports - 1) * num_vcs)
    return stage1 + stage2


def switch_allocation_delay_fo4(ports: int, num_vcs: int) -> float:
    """SA delay: V:1 per input port, then (P-1):1 per output port."""
    if ports < 2:
        raise ValueError(f"ports must be >= 2, got {ports}")
    if num_vcs < 1:
        raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
    stage1 = arbiter_delay_fo4(num_vcs) if num_vcs > 1 else 0.0
    stage2 = arbiter_delay_fo4(ports - 1)
    return stage1 + stage2


def crossbar_delay_fo4(ports: int, width_bits: int,
                       wire_spacing_um: float = 0.4) -> float:
    """ST delay: input driver, crosspoint, output line.

    The electrical effort reflects the crosspoint rails: each line loads
    ``ports`` connector drains plus its wire, modelled as an electrical
    effort proportional to the line's span in wire pitches (normalised
    to a 64-bit, 5-port fabric)."""
    if ports < 2:
        raise ValueError(f"ports must be >= 2, got {ports}")
    if width_bits < 1:
        raise ValueError(f"width_bits must be >= 1, got {width_bits}")
    gates = [le.inverter(), le.mux(ports), le.inverter()]
    span = ports * width_bits
    electrical = max(1.0, span / (5 * 64.0) * 8.0)
    return le.tau_to_fo4(le.path_delay_tau(gates, electrical=electrical))


def buffer_access_delay_fo4(depth_flits: int, flit_bits: int) -> float:
    """Buffer read delay: decoder, wordline, bitline, sense amp.

    Decoder depth grows with ``log4`` of the row count; bitline
    electrical effort with the column height.
    """
    if depth_flits < 1:
        raise ValueError(f"depth must be >= 1, got {depth_flits}")
    if flit_bits < 1:
        raise ValueError(f"flit_bits must be >= 1, got {flit_bits}")
    address_bits = max(1, math.ceil(math.log2(depth_flits)))
    decoder_levels = max(1, math.ceil(address_bits / 2))
    gates = [le.inverter()] + [le.nand(2) for _ in range(decoder_levels)]
    # Wordline drives flit_bits cells; bitline spans depth rows; sense
    # amplification adds a fixed couple of FO4.
    electrical = max(1.0, (depth_flits * flit_bits) / 512.0)
    decode = le.path_delay_tau(gates, branching=float(flit_bits) ** 0.5,
                               electrical=electrical)
    sense_fo4 = 2.0
    return le.tau_to_fo4(decode) + sense_fo4


@dataclass(frozen=True)
class StageDelays:
    """Per-function delays of a router configuration (FO4)."""

    vc_allocation: float
    switch_allocation: float
    switch_traversal: float
    buffer_access: float

    def stages(self) -> Dict[str, float]:
        """Non-zero pipeline functions, in pipeline order."""
        out = {}
        if self.vc_allocation > 0:
            out["VA"] = self.vc_allocation
        out["SA"] = self.switch_allocation
        out["ST"] = self.switch_traversal
        return out

    @property
    def critical_fo4(self) -> float:
        """The slowest stage: the cycle-time floor."""
        return max(self.stages().values())


class RouterDelayModel:
    """Delay/pipeline analysis of one network configuration."""

    PORTS = 5

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        rc = config.router
        if rc.kind == "vc":
            va = vc_allocation_delay_fo4(self.PORTS, rc.num_vcs)
        else:
            va = 0.0
        sa = switch_allocation_delay_fo4(
            self.PORTS, rc.num_vcs if rc.is_vc_kind else 1)
        if rc.kind == "speculative_vc":
            # Speculation runs VA and SA concurrently in one stage: the
            # stage's delay is the slower of the two (Peh-Dally).
            sa = max(sa, vc_allocation_delay_fo4(self.PORTS, rc.num_vcs))
        tech = config.tech.build()
        st = crossbar_delay_fo4(self.PORTS, rc.flit_bits,
                                wire_spacing_um=tech.wire_spacing_um)
        buffer_fo4 = buffer_access_delay_fo4(rc.buffer_flits_per_port,
                                             rc.flit_bits)
        self.delays = StageDelays(
            vc_allocation=va,
            switch_allocation=sa,
            switch_traversal=st,
            buffer_access=buffer_fo4,
        )

    @property
    def pipeline_depth(self) -> int:
        """Pipeline stages: 3 for VC routers (VA, SA, ST), 2 for
        wormhole and central-buffered routers — the section 4.2
        prescription."""
        return len(self.delays.stages())

    def min_cycle_fo4(self) -> float:
        """Shortest clock (FO4) at which every stage still fits."""
        return self.delays.critical_fo4

    def max_frequency_hz(self) -> float:
        """Highest clock frequency this router sustains at the
        configured process node."""
        cycle_ps = le.fo4_to_ps(self.min_cycle_fo4(),
                                self.config.tech.feature_size_um)
        return 1e12 / cycle_ps

    def fits_frequency(self, frequency_hz: float = 0.0) -> bool:
        """Whether the router meets the configured (or given) clock."""
        target = frequency_hz or self.config.tech.frequency_hz
        return self.max_frequency_hz() >= target

    def report(self) -> str:
        """Human-readable stage-delay table."""
        lines = [f"router: {self.config.router.kind}, "
                 f"{self.pipeline_depth}-stage pipeline"]
        for name, fo4 in self.delays.stages().items():
            ps = le.fo4_to_ps(fo4, self.config.tech.feature_size_um)
            lines.append(f"  {name:<3} {fo4:6.1f} FO4  ({ps:7.1f} ps)")
        lines.append(f"  buffer access {self.delays.buffer_access:6.1f} FO4")
        lines.append(
            f"  min cycle {self.min_cycle_fo4():.1f} FO4 -> max "
            f"{self.max_frequency_hz() / 1e9:.2f} GHz at "
            f"{self.config.tech.feature_size_um} um"
        )
        return "\n".join(lines)
