"""Orion: a power-performance simulator for interconnection networks.

A from-scratch Python reproduction of Wang, Zhu, Peh & Malik (MICRO
2002).  The package couples architectural-level parameterized power
models for router building blocks (FIFO buffers, crossbars, arbiters,
central buffers, links) with a flit-level cycle-accurate network
simulator whose microarchitectural events drive the power models.

Quick start::

    from repro import Orion, RunProtocol, preset

    orion = Orion(preset("VC16"))
    result = orion.run_uniform(0.05, RunProtocol(sample_packets=2000))
    print(result.avg_latency, result.total_power_w)

Fault injection::

    from repro.faults import FaultSpec

    protocol = RunProtocol(sample_packets=2000,
                           faults=FaultSpec(seed=3, link_kills=2),
                           on_stall="finish", livelock_cycles=50_000)
    result = orion.run_uniform(0.05, protocol)
    print(result.status, result.packets_misrouted)

See :mod:`repro.core.presets` for the paper's named configurations and
:mod:`repro.power` for the standalone component power models.
"""

from repro.core import (
    EnergyAccountant,
    LinkConfig,
    NetworkConfig,
    Orion,
    PowerBinding,
    RouterConfig,
    RunProtocol,
    SweepResult,
    TechConfig,
    preset,
)
from repro.tech import Technology

__version__ = "1.1.0"

from repro.exp import (
    ExperimentResult,
    ExperimentSpec,
    ResultCache,
    RunPoint,
    TrafficSpec,
    run_experiment,
)

__all__ = [
    "EnergyAccountant",
    "ExperimentResult",
    "ExperimentSpec",
    "LinkConfig",
    "NetworkConfig",
    "Orion",
    "PowerBinding",
    "ResultCache",
    "RouterConfig",
    "RunPoint",
    "RunProtocol",
    "SweepResult",
    "TechConfig",
    "Technology",
    "TrafficSpec",
    "preset",
    "run_experiment",
    "__version__",
]
