"""Orion: a power-performance simulator for interconnection networks.

A from-scratch Python reproduction of Wang, Zhu, Peh & Malik (MICRO
2002).  The package couples architectural-level parameterized power
models for router building blocks (FIFO buffers, crossbars, arbiters,
central buffers, links) with a flit-level cycle-accurate network
simulator whose microarchitectural events drive the power models.

Quick start::

    from repro import Orion, preset

    orion = Orion(preset("VC16"))
    result = orion.run_uniform(rate=0.05, sample_packets=2000)
    print(result.avg_latency, result.total_power_w)

See :mod:`repro.core.presets` for the paper's named configurations and
:mod:`repro.power` for the standalone component power models.
"""

from repro.core import (
    EnergyAccountant,
    LinkConfig,
    NetworkConfig,
    Orion,
    PowerBinding,
    RouterConfig,
    RunProtocol,
    SweepResult,
    TechConfig,
    preset,
)
from repro.tech import Technology

__version__ = "1.1.0"

from repro.exp import (
    ExperimentResult,
    ExperimentSpec,
    ResultCache,
    RunPoint,
    TrafficSpec,
    run_experiment,
)

__all__ = [
    "EnergyAccountant",
    "ExperimentResult",
    "ExperimentSpec",
    "LinkConfig",
    "NetworkConfig",
    "Orion",
    "PowerBinding",
    "ResultCache",
    "RouterConfig",
    "RunPoint",
    "RunProtocol",
    "SweepResult",
    "TechConfig",
    "Technology",
    "TrafficSpec",
    "preset",
    "run_experiment",
    "__version__",
]
