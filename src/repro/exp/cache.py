"""On-disk result cache for experiment points.

Outcomes are stored content-addressed under a root directory (by
convention ``results/.cache/``), keyed by :meth:`RunPoint.cache_key` —
a stable hash of (config, traffic spec, rate, protocol, code version).
Re-running a collection script or resuming a crashed sweep then skips
every already-simulated point.

Two directory layouts coexist:

* the **CAS layout** (current) — ``objects/<k[:2]>/<k[2:4]>/<key>.pkl``,
  a two-level fan-out over the key hash so a shard serving millions of
  cached points never piles every entry into 256 directories.  All new
  writes land here.
* the **legacy layout** (pre-shard) — ``<k[:2]>/<key>.pkl``.  Still
  readable: a legacy hit is transparently migrated into the CAS layout
  (rewrite + unlink) on first read, and :meth:`migrate` bulk-moves
  whatever remains, so an old cache directory upgrades in place with
  zero recomputation.

Entries are pickles written atomically (unique tmp file +
``os.replace``) so a killed run never leaves a truncated entry and
concurrent writers never clobber each other's tmp files; unreadable or
stale-schema entries are treated as misses.  Orphaned tmp files from
crashed writers are swept on cache construction once they are old
enough that no live writer can still own them.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.exp.spec import CACHE_SCHEMA

logger = logging.getLogger("repro.exp.cache")

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

#: Subdirectory holding the content-addressed layout.
CAS_DIR = "objects"

#: Tmp files older than this are considered abandoned by a crashed
#: writer (a live ``store`` holds its tmp for milliseconds).
STALE_TMP_SECONDS = 3600.0


class ResultCache:
    """Content-addressed pickle store with hit/miss counters."""

    def __init__(self, root=DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.migrated = 0
        self.sweep_stale_tmp()

    def _path(self, key: str) -> Path:
        """CAS location for ``key`` — where every new entry is written."""
        return self.root / CAS_DIR / key[:2] / key[2:4] / f"{key}.pkl"

    def _legacy_path(self, key: str) -> Path:
        """Pre-CAS location, kept readable for in-place migration."""
        return self.root / key[:2] / f"{key}.pkl"

    def _entry_paths(self) -> Iterator[Path]:
        """Every stored entry, CAS layout first, then legacy leftovers."""
        if not self.root.exists():
            return
        yield from self.root.glob(f"{CAS_DIR}/*/*/*.pkl")
        yield from self.root.glob("*/*.pkl")

    def _read(self, path: Path):
        """One entry payload, or ``None`` on any unreadable/stale file."""
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            return None
        except (OSError, pickle.PickleError, EOFError,
                AttributeError, ImportError, ValueError) as exc:
            logger.warning("cache entry %s unreadable (%s: %s); recomputing",
                           path, type(exc).__name__, exc)
            return None
        if not isinstance(payload, dict) or \
                payload.get("schema") != CACHE_SCHEMA:
            return None
        return payload

    def load(self, key: str):
        """The cached outcome for ``key``, or ``None`` on any miss
        (absent, unreadable, or written by an older schema).

        An *absent* entry is a silent miss; an entry that exists but
        cannot be read (truncated pickle, permission error, unpicklable
        class) is logged before being treated as a miss, so transient
        corruption degrades to recompute instead of killing the sweep.
        A hit found in the legacy layout is migrated into the CAS
        layout before being returned.
        """
        payload = self._read(self._path(key))
        if payload is None:
            payload = self._read(self._legacy_path(key))
            if payload is not None:
                self._migrate_entry(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload.get("outcome")

    def _migrate_entry(self, key: str) -> None:
        """Move one readable legacy entry into the CAS layout."""
        legacy = self._legacy_path(key)
        target = self._path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, target)
            self.migrated += 1
        except OSError:
            pass  # a concurrent reader migrated (or pruned) it first

    def migrate(self) -> int:
        """Bulk-move every legacy-layout entry into the CAS layout;
        returns the number moved.  Idempotent — an already-migrated
        cache is a no-op — and safe under concurrent readers (each
        entry moves with one atomic rename)."""
        moved = 0
        if not self.root.exists():
            return moved
        for path in list(self.root.glob("*/*.pkl")):
            key = path.stem
            target = self._path(key)
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
                moved += 1
            except OSError:
                continue
        self.migrated += moved
        return moved

    def store(self, key: str, outcome) -> None:
        """Atomically persist one outcome (always in the CAS layout).

        The tmp file name comes from ``mkstemp`` — PID suffixes collide
        between hosts sharing a cache over a network filesystem — and is
        unlinked on any failure so crashed writes leave no orphan."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f"{path.name}.tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump({"schema": CACHE_SCHEMA, "outcome": outcome}, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def sweep_stale_tmp(self,
                        max_age_seconds: float = STALE_TMP_SECONDS) -> int:
        """Remove abandoned tmp files older than ``max_age_seconds``;
        returns the number removed.  Young tmp files are left alone —
        they may belong to a live concurrent writer."""
        removed = 0
        if not self.root.exists():
            return removed
        now = time.time()
        for pattern in ("*/*.pkl.tmp*", f"{CAS_DIR}/*/*/*.pkl.tmp*"):
            for tmp in self.root.glob(pattern):
                try:
                    if now - tmp.stat().st_mtime >= max_age_seconds:
                        tmp.unlink()
                        removed += 1
                except OSError:
                    continue  # a concurrent sweep or writer got there first
        return removed

    def prune(self, max_age_s: Optional[float] = None,
              max_entries: Optional[int] = None) -> int:
        """Evict entries, LRU by file mtime; returns the number removed.

        ``max_age_s`` drops every entry older than that many seconds;
        ``max_entries`` then keeps only the newest that many.  Both
        ``None`` is a no-op.  ``load`` refreshes nothing — mtime is
        write time — so "LRU" here is strictly least-recently-*stored*,
        which is the right policy for a long-lived server whose hot keys
        are re-stored only when the code version (and hence the key)
        changes.  Entries that vanish mid-scan (a concurrent prune or
        writer) are skipped, not errors.  Both layouts are pruned.
        """
        if max_age_s is None and max_entries is None:
            return 0
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        entries = []
        for path in self._entry_paths():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        entries.sort()  # oldest first
        doomed = []
        if max_age_s is not None:
            cutoff = time.time() - max_age_s
            doomed += [path for mtime, path in entries if mtime < cutoff]
            entries = [(m, p) for m, p in entries if m >= cutoff]
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            doomed += [path for _, path in entries[:excess]]
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def stats(self) -> dict:
        """Size and age accounting of the on-disk store plus this
        instance's hit/miss counters, as a JSON-safe dict."""
        entries = 0
        legacy_entries = 0
        total_bytes = 0
        oldest = newest = None
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries += 1
            if path.parent.parent == self.root:
                legacy_entries += 1
            total_bytes += stat.st_size
            if oldest is None or stat.st_mtime < oldest:
                oldest = stat.st_mtime
            if newest is None or stat.st_mtime > newest:
                newest = stat.st_mtime
        now = time.time()
        return {
            "root": str(self.root),
            "entries": entries,
            "legacy_entries": legacy_entries,
            "total_bytes": total_bytes,
            "oldest_age_s": now - oldest if oldest is not None else None,
            "newest_age_s": now - newest if newest is not None else None,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> int:
        """Delete every entry (both layouts); returns the number
        removed."""
        removed = 0
        for entry in list(self._entry_paths()):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
