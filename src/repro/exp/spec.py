"""Declarative experiment descriptions.

An experiment is a grid of independent simulation points — (config ×
traffic × rate × seed) — each fully described by picklable data so it
can be dispatched to a worker process or hashed into a cache key:

* :class:`TrafficSpec` — a traffic pattern by registry name plus its
  declared parameters (workers rebuild the actual pattern object);
* :class:`RunPoint` — one simulation: config + traffic + rate +
  :class:`RunProtocol`;
* :class:`ExperimentSpec` — the full cartesian grid, expanded with
  :meth:`ExperimentSpec.points`.

Every spec also round-trips through plain JSON — ``to_dict``/``to_json``
and the matching ``from_dict``/``from_json`` constructors rebuild an
equal object (same dataclass equality, same cache keys), so specs can
cross process and *machine* boundaries as text: the ``repro.serve`` job
service accepts exactly these dictionaries as its wire format.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.core.config import (
    LinkConfig,
    NetworkConfig,
    RouterConfig,
    RunProtocol,
    TechConfig,
)
from repro.sim.topology import Topology
from repro.sim.traffic import (
    TrafficPattern,
    make_traffic,
    validate_traffic_params,
)

# --- JSON round-trips --------------------------------------------------------
#
# ``dataclasses.asdict`` handles the "to" direction; the ``from``
# direction rebuilds the nested frozen dataclasses (router/link/tech
# inside a config, fault events inside a protocol) so that
# ``from_dict(to_dict(x)) == x`` holds for every spec — including after
# a trip through ``json.dumps``/``loads`` (tuples become lists on the
# wire; the constructors re-tuple them).


def config_to_dict(config: NetworkConfig) -> Dict[str, Any]:
    """A :class:`NetworkConfig` as a JSON-safe nested dict."""
    return asdict(config)


def config_from_dict(data: Mapping[str, Any]) -> NetworkConfig:
    """Rebuild a :class:`NetworkConfig` from :func:`config_to_dict`
    output (or any mapping using the same field names; omitted fields
    take their defaults)."""
    fields = dict(data)
    router = fields.pop("router", {})
    link = fields.pop("link", {})
    tech = fields.pop("tech", {})
    return NetworkConfig(
        router=router if isinstance(router, RouterConfig)
        else RouterConfig(**router),
        link=link if isinstance(link, LinkConfig) else LinkConfig(**link),
        tech=tech if isinstance(tech, TechConfig) else TechConfig(**tech),
        **fields)


def protocol_to_dict(protocol: RunProtocol) -> Dict[str, Any]:
    """A :class:`RunProtocol` (fault spec included) as a JSON-safe
    dict."""
    return asdict(protocol)


def protocol_from_dict(data: Mapping[str, Any]) -> RunProtocol:
    """Rebuild a :class:`RunProtocol` from :func:`protocol_to_dict`
    output, reconstructing a nested fault spec and its events."""
    from repro.faults import FaultEvent, FaultSpec

    fields = dict(data)
    faults = fields.pop("faults", None)
    if faults is not None and not isinstance(faults, FaultSpec):
        fault_fields = dict(faults)
        events = tuple(
            event if isinstance(event, FaultEvent) else FaultEvent(**event)
            for event in fault_fields.pop("events", ()))
        faults = FaultSpec(events=events, **fault_fields)
    return RunProtocol(faults=faults, **fields)


#: Bump when cached payload semantics change: invalidates every entry.
#: 2: outcomes carry the windowed telemetry record.
#: 3: outcomes carry status and fault metadata (drops, misroutes,
#:    attempts).
CACHE_SCHEMA = 3


@dataclass(frozen=True)
class TrafficSpec:
    """A picklable, hashable description of one traffic pattern.

    ``params`` is a sorted tuple of ``(name, value)`` pairs; use
    :meth:`of` rather than the raw constructor.  Names and parameters
    are validated eagerly against the traffic registry.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        validate_traffic_params(self.name, dict(self.params))

    @classmethod
    def of(cls, name: str, **params) -> "TrafficSpec":
        """Build a spec from keyword parameters."""
        return cls(name, tuple(sorted(params.items())))

    def build(self, topo: Topology, rate: float, seed: int) -> TrafficPattern:
        """Instantiate the pattern for one topology/rate/seed."""
        return make_traffic(self.name, topo, rate, seed=seed,
                            **dict(self.params))

    def describe(self) -> str:
        """Short human-readable label, e.g. ``broadcast(source=9)``."""
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({inner})"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "TrafficSpec":
        """Rebuild from :meth:`to_dict` output; a bare traffic name is
        accepted as shorthand for a parameterless spec."""
        if isinstance(data, str):
            return cls.of(data)
        return cls.of(data["name"], **dict(data.get("params") or {}))


@dataclass(frozen=True)
class RunPoint:
    """One simulation of the experiment grid, fully described by data."""

    config: NetworkConfig
    traffic: TrafficSpec
    rate: float
    protocol: RunProtocol = field(default_factory=RunProtocol)
    #: Cosmetic grouping label (e.g. the preset name); not part of the
    #: cache key.
    label: str = ""

    def cache_key(self) -> str:
        """Stable content hash of everything that determines the result:
        configuration, traffic spec, rate, protocol and code version."""
        import repro

        payload = {
            "config": asdict(self.config),
            "traffic": {"name": self.traffic.name,
                        "params": [list(kv) for kv in self.traffic.params]},
            "rate": self.rate,
            "protocol": asdict(self.protocol),
            "code": repro.__version__,
            "schema": CACHE_SCHEMA,
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        tag = self.label or self.config.router.kind
        return (f"{tag} {self.traffic.describe()} rate={self.rate:g} "
                f"seed={self.protocol.seed}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; feeds :meth:`from_dict` and the job service."""
        return {"config": config_to_dict(self.config),
                "traffic": self.traffic.to_dict(),
                "rate": self.rate,
                "protocol": protocol_to_dict(self.protocol),
                "label": self.label}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunPoint":
        return cls(config=config_from_dict(data["config"]),
                   traffic=TrafficSpec.from_dict(data["traffic"]),
                   rate=float(data["rate"]),
                   protocol=protocol_from_dict(data.get("protocol") or {}),
                   label=data.get("label", ""))

    @classmethod
    def from_json(cls, text: str) -> "RunPoint":
        return cls.from_dict(json.loads(text))


ConfigsLike = Union[NetworkConfig,
                    Mapping[str, NetworkConfig],
                    Sequence[Tuple[str, NetworkConfig]]]
TrafficsLike = Union[str, TrafficSpec,
                     Sequence[Union[str, TrafficSpec]]]


def _normalize_configs(configs: ConfigsLike) -> Tuple[Tuple[str, NetworkConfig], ...]:
    if isinstance(configs, NetworkConfig):
        return ((configs.router.kind, configs),)
    if isinstance(configs, Mapping):
        return tuple(configs.items())
    return tuple(configs)


def _normalize_traffics(traffics: TrafficsLike) -> Tuple[TrafficSpec, ...]:
    if isinstance(traffics, (str, TrafficSpec)):
        traffics = [traffics]
    return tuple(t if isinstance(t, TrafficSpec) else TrafficSpec.of(t)
                 for t in traffics)


@dataclass(frozen=True)
class ExperimentSpec:
    """A cartesian grid of run points: configs × traffics × seeds × rates."""

    configs: Tuple[Tuple[str, NetworkConfig], ...]
    traffics: Tuple[TrafficSpec, ...]
    rates: Tuple[float, ...]
    seeds: Tuple[int, ...] = (1,)
    protocol: RunProtocol = field(default_factory=RunProtocol)

    def __post_init__(self) -> None:
        for name, values in (("configs", self.configs),
                             ("traffics", self.traffics),
                             ("rates", self.rates),
                             ("seeds", self.seeds)):
            if not values:
                raise ValueError(f"experiment needs at least one of {name}")

    @classmethod
    def of(cls, configs: ConfigsLike, traffics: TrafficsLike,
           rates: Iterable[float], seeds: Iterable[int] = (1,),
           protocol: RunProtocol = RunProtocol()) -> "ExperimentSpec":
        """Build a spec from friendlier argument shapes: a single config,
        a ``{label: config}`` mapping, traffic names or specs, any
        iterables of rates and seeds."""
        return cls(configs=_normalize_configs(configs),
                   traffics=_normalize_traffics(traffics),
                   rates=tuple(rates), seeds=tuple(seeds),
                   protocol=protocol)

    @property
    def num_points(self) -> int:
        return (len(self.configs) * len(self.traffics)
                * len(self.seeds) * len(self.rates))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; feeds :meth:`from_dict` and the job service."""
        return {"configs": [[label, config_to_dict(config)]
                            for label, config in self.configs],
                "traffics": [t.to_dict() for t in self.traffics],
                "rates": list(self.rates),
                "seeds": list(self.seeds),
                "protocol": protocol_to_dict(self.protocol)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            configs=tuple((label, config_from_dict(config))
                          for label, config in data["configs"]),
            traffics=tuple(TrafficSpec.from_dict(t)
                           for t in data["traffics"]),
            rates=tuple(float(r) for r in data["rates"]),
            seeds=tuple(int(s) for s in data.get("seeds") or (1,)),
            protocol=protocol_from_dict(data.get("protocol") or {}))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def points(self) -> List[RunPoint]:
        """Expand the grid; rates vary innermost so each (config,
        traffic, seed) group forms one latency/power curve."""
        out = []
        for label, config in self.configs:
            for traffic in self.traffics:
                for seed in self.seeds:
                    protocol = replace(self.protocol, seed=seed)
                    for rate in self.rates:
                        out.append(RunPoint(config=config, traffic=traffic,
                                            rate=rate, protocol=protocol,
                                            label=label))
        return out
