"""Experiment orchestration: declarative grids of simulation points run
across a process pool, with on-disk result caching, per-point failure
isolation and progress hooks.

Quick start::

    from repro import preset
    from repro.exp import ExperimentSpec, run_experiment

    spec = ExperimentSpec.of(
        configs={"VC16": preset("VC16"), "WH64": preset("WH64")},
        traffics=["uniform", "transpose"],
        rates=[0.02, 0.06, 0.10],
    )
    result = run_experiment(spec, processes=4, cache="results/.cache")
    for key, sweep in result.sweeps().items():
        print(sweep.table())
"""

from repro.exp.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exp.guided import (
    GuidedGrid,
    GuidedSweep,
    guided_rate_grid,
    run_guided_sweep,
)
from repro.exp.orchestrator import (
    ExperimentResult,
    PointOutcome,
    Progress,
    RunCancelled,
    fanout_progress,
    outcomes_to_sweep,
    run_experiment,
    run_points,
)
from repro.exp.pool import (
    WorkerPool,
    get_default_pool,
    shutdown_default_pool,
)
from repro.exp.spec import (
    CACHE_SCHEMA,
    ExperimentSpec,
    RunPoint,
    TrafficSpec,
    config_from_dict,
    config_to_dict,
    protocol_from_dict,
    protocol_to_dict,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "ExperimentResult",
    "ExperimentSpec",
    "GuidedGrid",
    "GuidedSweep",
    "PointOutcome",
    "Progress",
    "ResultCache",
    "RunCancelled",
    "RunPoint",
    "TrafficSpec",
    "WorkerPool",
    "config_from_dict",
    "config_to_dict",
    "protocol_from_dict",
    "protocol_to_dict",
    "fanout_progress",
    "get_default_pool",
    "guided_rate_grid",
    "outcomes_to_sweep",
    "run_experiment",
    "run_guided_sweep",
    "run_points",
    "shutdown_default_pool",
]
