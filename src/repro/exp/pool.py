"""Warm persistent worker pool for grid fan-out.

``run_points`` used to pay process-spawn + import + construction cost
per call (a throwaway ``multiprocessing.Pool``) and per point when a
``point_timeout`` was set (one dedicated subprocess per point).  This
module replaces both with a :class:`WorkerPool`: spawn-once worker
processes that stay warm across calls, speak a small pipe protocol
(task chunks down, begin/done/heartbeat up), enforce per-point timeouts
by killing and respawning the one worker whose in-flight point blew its
deadline, and survive worker crashes by respawning and retrying per the
existing backoff policy.

Inside each worker, a simulation-context cache keyed on
:func:`repro.sim.engine.structural_key` reuses the constructed
network/router/technology/power-binding graph across points that differ
only in injection rate, seed or traffic (via ``Network.reset()`` —
bit-identical to fresh construction, pinned by tests/test_pool.py), so
construction cost is paid once per configuration instead of once per
point.

The pool is shared: multiple threads may call :meth:`WorkerPool.run`
concurrently (the ``repro.serve`` worker threads do) and a single
dispatcher thread multiplexes their batches over the workers, capping
each batch at its own ``max_workers``.  Results are delivered to each
caller in submission order, so pool execution is observationally
identical to the serial path.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import multiprocessing.util  # ensures mp's atexit hook registers before ours
import os
import stat
import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.exp.orchestrator import (
    PointOutcome,
    RunCancelled,
    _execute_resilient,
)
from repro.sim.engine import SimulationContext, structural_key
from repro.sim.traffic import TRAFFIC_REGISTRY

#: Maximum points per task message.  Chunks bound pipe round-trips
#: without letting one worker hoard a small batch's tail.
CHUNK_POINTS = 4

#: Worker-side bound on cached simulation contexts (LRU) — one context
#: per structural (config, protocol) pair, evicted least-recently-used.
MAX_CONTEXTS = 8

_HEARTBEAT_INTERVAL = 0.5
_POLL_INTERVAL = 0.05


# --- worker side ---------------------------------------------------------------


def _ensure_traffic_kind(entry) -> None:
    """Adopt the parent's registry entry for this task's traffic kind.

    Payloads ship their :class:`~repro.sim.traffic.TrafficKind` so a
    worker forked before a kind was registered (tests register
    throwaway kinds at runtime) can still build it.  The parent's entry
    is authoritative — it overwrites any stale worker-side registration
    under the same name."""
    if entry is not None:
        TRAFFIC_REGISTRY[entry.name] = entry


def _run_payload(payload, contexts: "OrderedDict") -> PointOutcome:
    """Execute one orchestrator payload, reusing a cached context when
    the point carries no live references out of the run."""
    point, keep_result, retries, backoff, _capture = payload
    try:
        if keep_result:
            # The result will hold the monitor/accountant — those must
            # not alias a graph the next point resets underneath them.
            return _execute_resilient(point, True, retries, backoff, True)
        key = structural_key(point.config, point.protocol)
        context = contexts.get(key)
        if context is None:
            context = SimulationContext(point.config, point.protocol)
            contexts[key] = context
            while len(contexts) > MAX_CONTEXTS:
                contexts.popitem(last=False)
        else:
            contexts.move_to_end(key)
        return _execute_resilient(point, False, retries, backoff, True,
                                  context=context)
    except Exception as exc:  # noqa: BLE001 - worker survival boundary
        return PointOutcome(
            point=point, ok=False, status="crashed",
            error=f"{type(exc).__name__}: {exc}",
        )


def _close_inherited_sockets(keep_fd: int) -> None:
    """Close every socket fd the fork copied from the parent, except
    this worker's own pipe.

    Workers fork from whatever process owns the pool — for ``repro
    serve`` that process holds a listening socket and live client
    connections.  A long-lived child keeping those fds open means the
    parent's ``close()`` never sends FIN, so NDJSON streams (which end
    on connection close) hang at the client.  Only sockets are swept:
    the duplex task pipe is a socketpair (kept via ``keep_fd``), while
    files, pipes and the parent's epoll/eventfds are left alone."""
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):
        return
    for fd in fds:
        if fd < 3 or fd == keep_fd:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_main(conn) -> None:
    """Worker process entry: execute task chunks until shutdown.

    A daemon thread heartbeats every ``_HEARTBEAT_INTERVAL`` seconds —
    pure-Python simulation loops still yield the GIL, so a silent pipe
    means the worker is truly wedged, not merely busy.  ``begin``
    messages give the parent the per-point wall-clock anchor it enforces
    ``point_timeout`` against."""
    _close_inherited_sockets(conn.fileno())
    send_lock = threading.Lock()
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(_HEARTBEAT_INTERVAL):
            try:
                with send_lock:
                    conn.send(("hb",))
            except OSError:
                return

    threading.Thread(target=_beat, daemon=True,
                     name="repro-pool-heartbeat").start()
    contexts: "OrderedDict" = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None:
                return
            for payload, kind_entry in message:
                with send_lock:
                    conn.send(("begin",))
                _ensure_traffic_kind(kind_entry)
                outcome = _run_payload(payload, contexts)
                with send_lock:
                    conn.send(("done", outcome))
    finally:
        stop.set()


# --- parent side ---------------------------------------------------------------


class _Task:
    """One point queued on the pool, owned by one batch."""

    __slots__ = ("batch", "pos", "payload", "kind_entry", "hard_attempts",
                 "not_before")

    def __init__(self, batch: "_Batch", pos: int, payload: tuple,
                 kind_entry) -> None:
        self.batch = batch
        self.pos = pos
        self.payload = payload
        self.kind_entry = kind_entry
        #: Worker deaths this task has survived (parent-side retries).
        self.hard_attempts = 0
        #: Earliest monotonic time this task may be reassigned (backoff).
        self.not_before = 0.0


class _Batch:
    """One :meth:`WorkerPool.run` call's tasks and completion state."""

    def __init__(self, indices: Sequence[int], payloads: Sequence[tuple],
                 point_timeout: Optional[float], retries: int,
                 backoff: float, max_workers: int,
                 cancel_event: Optional[threading.Event] = None) -> None:
        self.indices = list(indices)
        self.point_timeout = point_timeout
        self.retries = retries
        self.backoff = backoff
        self.max_workers = max(1, max_workers)
        #: External abort switch: once set, the dispatcher kills this
        #: batch's in-flight workers and aborts with RunCancelled.
        self.cancel_event = cancel_event
        self.cond = threading.Condition()
        self.results: List[Optional[PointOutcome]] = [None] * len(payloads)
        self.completed = 0
        self.cancelled = False
        self.failed: Optional[BaseException] = None
        self.ready: Deque[_Task] = deque(
            _Task(self, pos, payload,
                  TRAFFIC_REGISTRY.get(payload[0].traffic.name))
            for pos, payload in enumerate(payloads)
        )
        #: Workers currently holding a chunk of this batch.
        self.workers_active = 0

    def complete(self, task: _Task, outcome: PointOutcome) -> None:
        with self.cond:
            if self.cancelled or self.results[task.pos] is not None:
                return
            self.results[task.pos] = outcome
            self.completed += 1
            self.cond.notify_all()

    def abort(self, error: BaseException) -> None:
        with self.cond:
            self.cancelled = True
            self.failed = error
            self.cond.notify_all()

    @property
    def drained(self) -> bool:
        return self.cancelled or self.completed == len(self.results)


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "tasks", "begun", "deadline", "last_msg",
                 "batch", "idle_since")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: Assigned tasks in execution order (head is next/current).
        self.tasks: Deque[_Task] = deque()
        self.begun = False
        self.deadline: Optional[float] = None
        self.last_msg = time.monotonic()
        self.batch: Optional[_Batch] = None
        #: Monotonic time this worker last went idle (None while busy);
        #: what ``idle_timeout_s`` reaping measures against.
        self.idle_since: Optional[float] = time.monotonic()


class WorkerPool:
    """Long-lived pool of spawn-once simulation worker processes.

    Thread-safe: concurrent :meth:`run` calls multiplex over the same
    warm workers.  Workers are spawned lazily on first use and respawned
    on crash, kill or timeout; :meth:`close` shuts them down.
    """

    def __init__(self, processes: int = 1, *,
                 heartbeat_timeout: float = 30.0,
                 idle_timeout_s: Optional[float] = None) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be positive, "
                             f"got {heartbeat_timeout}")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be positive, "
                             f"got {idle_timeout_s}")
        self._size = processes
        self.heartbeat_timeout = heartbeat_timeout
        #: Elasticity: a worker idle longer than this is reaped (its
        #: process shut down and dropped from the pool), never shrinking
        #: below a floor of one warm worker.  The pool re-grows to its
        #: target size lazily on the next ``run`` call.  ``None``
        #: disables reaping.
        self.idle_timeout_s = idle_timeout_s
        self._lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._batches: List[_Batch] = []
        self._dispatcher: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False
        # Lifetime counters (surfaced by stats() and /metrics).
        self.tasks_completed = 0
        self.respawns = 0
        self.timeouts = 0
        self.reaped = 0
        self.cancelled_batches = 0

    # --- lifecycle -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Target number of worker processes."""
        return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def ensure_size(self, processes: int) -> None:
        """Grow the pool to at least ``processes`` workers (never
        shrinks — warm workers are the point)."""
        if processes > self._size:
            with self._lock:
                self._size = max(self._size, processes)

    def stats(self) -> Dict[str, int]:
        """Lifetime pool counters (JSON-safe).  ``workers`` is the
        number of live worker processes right now — after idle reaping
        it can sit below ``workers_target`` until demand re-grows the
        pool."""
        with self._lock:
            spawned = len(self._workers)
            alive = sum(1 for w in self._workers if w.process.is_alive())
        return {
            "workers": spawned,
            "workers_target": self._size,
            "workers_alive": alive,
            "tasks_completed": self.tasks_completed,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
            "reaped": self.reaped,
            "cancelled_batches": self.cancelled_batches,
        }

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut the workers down and stop the dispatcher."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batches, self._batches = self._batches, []
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=join_timeout)
        for batch in batches:
            batch.abort(RuntimeError("worker pool closed"))
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass
        deadline = time.monotonic() + join_timeout
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def _spawn_worker(self) -> _Worker:
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(target=_worker_main, args=(child_conn,),
                              daemon=True, name="repro-pool-worker")
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_running(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            while len(self._workers) < self._size:
                self._workers.append(self._spawn_worker())
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, daemon=True,
                    name="repro-pool-dispatcher")
                self._dispatcher.start()

    # --- submission ----------------------------------------------------------

    def run(self, tasks: Sequence[Tuple[int, tuple]], *,
            point_timeout: Optional[float] = None,
            retries: int = 0,
            retry_backoff: float = 0.25,
            max_workers: Optional[int] = None,
            finish: Callable[[int, PointOutcome], None] = None,
            cancel_event: Optional[threading.Event] = None) -> None:
        """Execute ``(index, payload)`` tasks on the pool.

        Blocks until every task completes, calling ``finish(index,
        outcome)`` in submission order (exactly the serial path's
        ordering).  ``max_workers`` caps how many pool workers this
        batch may occupy at once, so concurrent callers share fairly.
        A ``finish`` that raises cancels the batch's unassigned tasks
        and propagates.  Setting ``cancel_event`` mid-run kills the
        batch's in-flight workers (respawned warm — the point_timeout
        mechanism) and raises :class:`RunCancelled` here.
        """
        if not tasks:
            return
        self._ensure_running()
        batch = _Batch([index for index, _ in tasks],
                       [payload for _, payload in tasks],
                       point_timeout, retries, retry_backoff,
                       max_workers or self._size,
                       cancel_event=cancel_event)
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._batches.append(batch)
        delivered = 0
        total = len(batch.results)
        try:
            while delivered < total:
                with batch.cond:
                    while batch.results[delivered] is None:
                        if batch.failed is not None:
                            raise batch.failed
                        batch.cond.wait(timeout=1.0)
                    outcome = batch.results[delivered]
                index = batch.indices[delivered]
                delivered += 1
                finish(index, outcome)
        except BaseException:
            with batch.cond:
                batch.cancelled = True
            raise

    # --- dispatcher ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        try:
            while not self._stop.is_set():
                self._service_cancellations()
                self._assign_work()
                with self._lock:
                    workers = list(self._workers)
                waitees = [w.conn for w in workers]
                waitees += [w.process.sentinel for w in workers]
                try:
                    ready = conn_wait(waitees, timeout=_POLL_INTERVAL)
                except OSError:
                    ready = []
                now = time.monotonic()
                ready = set(ready)
                for worker in workers:
                    if worker.conn in ready:
                        self._drain_conn(worker, now)
                for worker in workers:
                    if not worker.process.is_alive():
                        self._handle_death(worker)
                    elif worker.begun and worker.deadline is not None \
                            and now > worker.deadline:
                        self._handle_timeout(worker)
                    elif worker.tasks and \
                            now - worker.last_msg > self.heartbeat_timeout:
                        self._kill_process(worker)
                        self._handle_death(worker)
                self._reap_idle(time.monotonic())
        except Exception as exc:  # noqa: BLE001 - fail loudly, not silently
            with self._lock:
                batches, self._batches = self._batches, []
            for batch in batches:
                batch.abort(RuntimeError(
                    f"pool dispatcher died: {type(exc).__name__}: {exc}"))
            raise

    def _service_cancellations(self) -> None:
        """Abort batches whose cancel event fired: kill (and respawn
        warm) every worker holding one of their chunks — the same
        mechanism as a ``point_timeout`` expiry — and wake the waiting
        ``run`` call with :class:`RunCancelled`."""
        with self._lock:
            batches = list(self._batches)
            workers = list(self._workers)
        for batch in batches:
            if batch.cancelled or batch.cancel_event is None \
                    or not batch.cancel_event.is_set():
                continue
            batch.ready.clear()
            batch.abort(RunCancelled("run cancelled"))
            self.cancelled_batches += 1
            for worker in workers:
                if worker.batch is not batch:
                    continue
                self._kill_process(worker)
                worker.tasks = deque()
                self._release_batch(worker)
                self._respawn(worker)

    def _reap_idle(self, now: float) -> None:
        """Shrink the pool: shut down workers idle past
        ``idle_timeout_s``, never below a floor of one warm worker."""
        if self.idle_timeout_s is None:
            return
        doomed: List[_Worker] = []
        with self._lock:
            for worker in list(self._workers):
                if len(self._workers) - len(doomed) <= 1:
                    break  # floor: keep one warm worker
                if worker.tasks or worker.idle_since is None:
                    continue
                if now - worker.idle_since < self.idle_timeout_s:
                    continue
                doomed.append(worker)
            for worker in doomed:
                self._workers.remove(worker)
            self.reaped += len(doomed)
        for worker in doomed:
            try:
                worker.conn.send(None)
            except OSError:
                pass
            try:
                worker.conn.close()
            except OSError:
                pass

    def _assign_work(self) -> None:
        now = time.monotonic()
        with self._lock:
            self._batches = [b for b in self._batches
                             if not (b.drained and not b.ready)]
            batches = list(self._batches)
            workers = list(self._workers)
        for worker in workers:
            if worker.tasks or not worker.process.is_alive():
                continue
            chunk = self._next_chunk(batches, now)
            if chunk is None:
                return
            batch = chunk[0].batch
            batch.workers_active += 1
            worker.batch = batch
            worker.tasks.extend(chunk)
            worker.last_msg = now
            worker.idle_since = None
            try:
                worker.conn.send([(t.payload, t.kind_entry) for t in chunk])
            except (OSError, ValueError):
                # Death handler requeues the chunk next loop iteration.
                pass

    def _next_chunk(self, batches: List[_Batch],
                    now: float) -> Optional[List[_Task]]:
        for batch in batches:
            if batch.cancelled:
                batch.ready.clear()
                continue
            if not batch.ready or batch.workers_active >= batch.max_workers:
                continue
            slots = batch.max_workers - batch.workers_active
            take = max(1, min(CHUNK_POINTS,
                              math.ceil(len(batch.ready) / slots)))
            chunk: List[_Task] = []
            for _ in range(len(batch.ready)):
                if len(chunk) >= take:
                    break
                task = batch.ready.popleft()
                if task.not_before > now:
                    batch.ready.append(task)
                    continue
                chunk.append(task)
            if chunk:
                return chunk
        return None

    def _drain_conn(self, worker: _Worker, now: float) -> None:
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                worker.last_msg = now
                kind = message[0]
                if kind == "begin":
                    worker.begun = True
                    timeout = (worker.tasks[0].batch.point_timeout
                               if worker.tasks else None)
                    worker.deadline = (now + timeout
                                       if timeout is not None else None)
                elif kind == "done":
                    if not worker.tasks:
                        continue
                    task = worker.tasks.popleft()
                    worker.begun = False
                    worker.deadline = None
                    outcome = message[1]
                    outcome.attempts += task.hard_attempts
                    task.batch.complete(task, outcome)
                    self.tasks_completed += 1
                    if not worker.tasks:
                        self._release_batch(worker)
                        worker.idle_since = now
                # "hb" only refreshes last_msg.
        except (EOFError, OSError):
            pass  # the liveness pass handles the death

    def _release_batch(self, worker: _Worker) -> None:
        if worker.batch is not None:
            worker.batch.workers_active -= 1
            worker.batch = None

    def _requeue(self, tasks: Deque[_Task]) -> None:
        """Put unstarted tasks back at the front of their batches."""
        for task in reversed(tasks):
            task.batch.ready.appendleft(task)

    def _kill_process(self, worker: _Worker) -> None:
        worker.process.terminate()
        worker.process.join(2.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join()

    def _respawn(self, worker: _Worker) -> None:
        # Never respawn while shutting down: interpreter exit terminates
        # daemon workers, and resurrecting them would fight the
        # multiprocessing atexit join forever.
        if self._stop.is_set() or self._closed:
            return
        try:
            worker.conn.close()
        except OSError:
            pass
        fresh = self._spawn_worker()
        worker.process = fresh.process
        worker.conn = fresh.conn
        worker.tasks = deque()
        worker.begun = False
        worker.deadline = None
        worker.last_msg = time.monotonic()
        worker.batch = None
        worker.idle_since = worker.last_msg
        self.respawns += 1

    def _handle_death(self, worker: _Worker) -> None:
        """A worker died (crash, OOM kill, heartbeat wedge): retry its
        in-flight point per the batch's policy, requeue the rest of its
        chunk, respawn."""
        worker.process.join()
        exitcode = worker.process.exitcode
        tasks = worker.tasks
        worker.tasks = deque()
        self._release_batch(worker)
        if tasks:
            if worker.begun:
                task = tasks.popleft()
                batch = task.batch
                task.hard_attempts += 1
                if task.hard_attempts <= batch.retries \
                        and not batch.cancelled:
                    task.not_before = time.monotonic() + \
                        batch.backoff * 2 ** (task.hard_attempts - 1)
                    batch.ready.appendleft(task)
                else:
                    batch.complete(task, PointOutcome(
                        point=task.payload[0], ok=False, status="crashed",
                        error=f"RuntimeError: worker exited with code "
                              f"{exitcode}",
                        attempts=task.hard_attempts,
                    ))
            self._requeue(tasks)
        self._respawn(worker)

    def _handle_timeout(self, worker: _Worker) -> None:
        """The in-flight point blew its wall-clock cap: kill the worker,
        record the timeout (deterministic — never retried, matching the
        old per-point-subprocess semantics), requeue the chunk's
        remainder, respawn."""
        self._kill_process(worker)
        task = worker.tasks.popleft()
        timeout = task.batch.point_timeout
        rest = worker.tasks
        worker.tasks = deque()
        self._release_batch(worker)
        task.batch.complete(task, PointOutcome(
            point=task.payload[0], ok=False, status="timeout",
            error=f"TimeoutError: point exceeded {timeout:g}s wall-clock",
            wall_seconds=timeout,
            attempts=task.hard_attempts + 1,
        ))
        self.timeouts += 1
        self._requeue(rest)
        self._respawn(worker)


# --- module-level shared pool ---------------------------------------------------

_default_pool: Optional[WorkerPool] = None
_default_lock = threading.Lock()


def get_default_pool(processes: int = 1) -> WorkerPool:
    """The process-wide shared pool (created on first use), grown to at
    least ``processes`` workers."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            _default_pool = WorkerPool(processes)
        else:
            _default_pool.ensure_size(processes)
        return _default_pool


def shutdown_default_pool() -> None:
    """Close the shared pool (tests and interpreter shutdown)."""
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None and not pool.closed:
        pool.close()


atexit.register(shutdown_default_pool)
