"""Parallel experiment execution with caching and progress reporting.

The orchestrator takes a list of :class:`RunPoint` (usually expanded
from an :class:`ExperimentSpec`), serves whatever it can from a
:class:`ResultCache`, fans the remaining points out over a warm
:class:`repro.exp.pool.WorkerPool` of spawn-once worker processes, and
reports per-point progress (points done/total, cycles simulated,
wall-clock per point, cache hit rate) through a caller-supplied hook.

Each point is failure-isolated: a :class:`DeadlockError` or
:class:`SimulationTimeout` at one (config, traffic, rate) point is
recorded in its :class:`PointOutcome` and does not kill the rest of the
sweep (``on_error="record"``; the Orion facade uses ``"raise"`` to keep
its historical behaviour).

Workers receive only picklable data — the traffic pattern is rebuilt in
the worker from its :class:`TrafficSpec` — so *any* registered traffic
kind parallelises, not just uniform/broadcast.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.report import SweepPoint, SweepResult
from repro.sim.engine import (
    DeadlockError,
    Simulation,
    SimulationResult,
    SimulationTimeout,
)
from repro.sim.topology import topology_for
from repro.exp.cache import ResultCache
from repro.exp.spec import ExperimentSpec, RunPoint

_ERROR_TYPES = {
    "DeadlockError": DeadlockError,
    "SimulationTimeout": SimulationTimeout,
}


class RunCancelled(RuntimeError):
    """The caller cancelled an in-flight ``run_points`` call.

    Raised out of :func:`run_points` when its ``cancel_event`` fires:
    in-flight pool workers are killed and respawned warm (the same
    mechanism as a ``point_timeout`` expiry) and unstarted points are
    abandoned.  The ``repro.serve`` job service maps this onto the
    terminal ``"cancelled"`` job status.
    """


@dataclass
class PointOutcome:
    """What one run point produced: a summary, or a recorded failure."""

    point: RunPoint
    ok: bool
    #: Terminal status of the point: "ok"; "stalled"/"max_cycles" (the
    #: simulation's watchdogs fired — recorded whether the run raised or
    #: finished under ``on_stall="finish"``); "crashed" (the worker
    #: raised an unexpected exception, retries exhausted); "timeout"
    #: (the point exceeded ``point_timeout`` wall-clock seconds and its
    #: worker process was terminated).
    status: str = "ok"
    error: Optional[str] = None
    avg_latency: float = 0.0
    total_power_w: float = 0.0
    throughput_flits_per_cycle: float = 0.0
    breakdown_w: Dict[str, float] = field(default_factory=dict)
    total_cycles: int = 0
    wall_seconds: float = 0.0
    from_cache: bool = False
    #: Full simulation result; carried only when the orchestrator ran
    #: with ``keep_results=True`` or the protocol enabled the monitor.
    result: Optional[SimulationResult] = None
    #: Windowed telemetry record; carried (and cached) whenever the
    #: protocol's ``telemetry_window`` is non-zero.
    telemetry: Optional[object] = None
    #: Fault metadata from the simulation (zero on healthy fabrics).
    flits_dropped: int = 0
    packets_misrouted: int = 0
    #: Execution attempts this outcome took (> 1 after crash retries).
    attempts: int = 1

    def raise_error(self) -> None:
        """Re-raise a recorded failure as its original exception type."""
        if self.ok:
            return
        name, _, message = (self.error or "").partition(": ")
        raise _ERROR_TYPES.get(name, RuntimeError)(message or self.error)

    def summary_dict(self) -> Dict[str, object]:
        """A flat, JSON-safe summary of this outcome (no pickled
        simulation payloads) — the shape the ``repro.serve`` job
        service returns and streams.  Telemetry, when recorded, is
        compacted through :func:`repro.telemetry.telemetry_summary`."""
        summary = {
            "describe": self.point.describe(),
            "label": self.point.label,
            "traffic": self.point.traffic.describe(),
            "rate": self.point.rate,
            "seed": self.point.protocol.seed,
            "ok": self.ok,
            "status": self.status,
            "error": self.error,
            "avg_latency": self.avg_latency,
            "total_power_w": self.total_power_w,
            "throughput_flits_per_cycle": self.throughput_flits_per_cycle,
            "breakdown_w": dict(self.breakdown_w),
            "total_cycles": self.total_cycles,
            "wall_seconds": self.wall_seconds,
            "from_cache": self.from_cache,
            "flits_dropped": self.flits_dropped,
            "packets_misrouted": self.packets_misrouted,
            "attempts": self.attempts,
        }
        if self.telemetry is not None:
            from repro.telemetry import telemetry_summary
            summary["telemetry"] = telemetry_summary(self.telemetry)
        return summary

    def to_sweep_point(self) -> SweepPoint:
        return SweepPoint(
            rate=self.point.rate,
            avg_latency=self.avg_latency if self.ok else math.nan,
            total_power_w=self.total_power_w,
            throughput_flits_per_cycle=self.throughput_flits_per_cycle,
            breakdown_w=dict(self.breakdown_w),
            result=self.result,
            error=self.error,
            status=self.status,
        )


@dataclass
class Progress:
    """Snapshot handed to the progress hook after every finished point."""

    done: int
    total: int
    outcome: PointOutcome
    cache_hits: int
    failures: int
    #: Cycles simulated so far (fresh runs only — cache hits cost none).
    cycles_simulated: int
    elapsed_seconds: float
    #: Points not served from the cache so far (``done - cache_hits``),
    #: mirroring :class:`ResultCache`'s miss counter for this run.
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.done if self.done else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe snapshot of this progress event.

        Progress hooks run on whatever thread executes the sweep, so a
        hook that feeds an event loop (or a socket, or a queue) wants a
        plain dict it can hand across the boundary without touching the
        live outcome again; this is that dict.  The ``repro.serve``
        NDJSON progress stream emits these verbatim.
        """
        return {
            "done": self.done,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "failures": self.failures,
            "cycles_simulated": self.cycles_simulated,
            "elapsed_seconds": self.elapsed_seconds,
            "point": self.outcome.summary_dict(),
        }


ProgressHook = Callable[[Progress], None]


def fanout_progress(*hooks: Optional[ProgressHook]) -> ProgressHook:
    """Combine several progress hooks into one (``None`` entries are
    skipped) — e.g. a console printer plus a streaming publisher."""
    live = [hook for hook in hooks if hook is not None]

    def fan(progress: Progress) -> None:
        for hook in live:
            hook(progress)
    return fan


def _needs_result(point: RunPoint, keep_results: bool) -> bool:
    return keep_results or point.protocol.monitor


def _execute_point(point: RunPoint, keep_result: bool,
                   context=None) -> PointOutcome:
    """Run one point to completion, capturing failures as outcomes.

    ``context`` is an optional :class:`~repro.sim.engine.SimulationContext`
    whose constructed network graph is reset and reused instead of
    rebuilt — bit-identical to fresh construction, and only offered for
    points that do not carry live references out of the run
    (``keep_result=False``).
    """
    start = time.perf_counter()
    topo = topology_for(point.config)
    traffic = point.traffic.build(topo, point.rate, point.protocol.seed)
    sim = Simulation(point.config, traffic, point.protocol, context=context)
    try:
        result = sim.run()
    except (DeadlockError, SimulationTimeout) as exc:
        status = ("stalled" if isinstance(exc, DeadlockError)
                  else "max_cycles")
        return PointOutcome(
            point=point, ok=False, status=status,
            error=f"{type(exc).__name__}: {exc}",
            total_cycles=sim.network.cycle,
            wall_seconds=time.perf_counter() - start,
        )
    collect = point.protocol.collect_power
    ok = result.status == "ok"
    return PointOutcome(
        point=point, ok=ok, status=result.status,
        error=None if ok else f"terminated: {result.status}",
        avg_latency=result.avg_latency,
        total_power_w=result.total_power_w if collect else 0.0,
        throughput_flits_per_cycle=result.throughput_flits_per_cycle,
        breakdown_w=result.power_breakdown_w() if collect else {},
        total_cycles=result.total_cycles,
        wall_seconds=time.perf_counter() - start,
        result=result if keep_result else None,
        telemetry=result.telemetry,
        flits_dropped=result.flits_dropped,
        packets_misrouted=result.packets_misrouted,
    )


def _execute_resilient(point: RunPoint, keep_result: bool,
                       retries: int, backoff: float,
                       capture: bool, context=None) -> PointOutcome:
    """Run one point, retrying unexpected worker crashes.

    Simulation-level failures (deadlock, timeout, watchdog statuses)
    are deterministic and never retried — only *unexpected* exceptions
    (a buggy traffic generator, a transient OS error) get another
    attempt, with exponential backoff.  When attempts are exhausted the
    crash is either captured as a ``status="crashed"`` outcome
    (``on_error="record"``) or re-raised.
    """
    attempt = 0
    while True:
        attempt += 1
        start = time.perf_counter()
        try:
            outcome = _execute_point(point, keep_result, context=context)
            outcome.attempts = attempt
            return outcome
        except Exception as exc:  # noqa: BLE001 - crash isolation boundary
            if attempt <= retries:
                if backoff > 0:
                    time.sleep(backoff * 2 ** (attempt - 1))
                continue
            if not capture:
                raise
            return PointOutcome(
                point=point, ok=False, status="crashed",
                error=f"{type(exc).__name__}: {exc}",
                wall_seconds=time.perf_counter() - start,
                attempts=attempt,
            )


def _pool_point(payload) -> PointOutcome:
    """Module-level worker entry for the serial path (and a stable,
    picklable target tests can call directly)."""
    point, keep_result, retries, backoff, capture = payload
    return _execute_resilient(point, keep_result, retries, backoff, capture)


def run_points(points: Sequence[RunPoint], *,
               processes: int = 1,
               cache: Optional[ResultCache] = None,
               keep_results: bool = False,
               progress: Optional[ProgressHook] = None,
               on_error: str = "record",
               point_timeout: Optional[float] = None,
               retries: int = 0,
               retry_backoff: float = 0.25,
               pool: Optional[object] = None,
               cancel_event: Optional[object] = None) -> List[PointOutcome]:
    """Execute run points, in order, with caching and parallelism.

    ``on_error="record"`` isolates per-point failures; ``"raise"``
    re-raises the first one (after caching it, so a resumed sweep does
    not recompute the doomed point).

    Parallel work (``processes > 1``), wall-clock capped work
    (``point_timeout``), or an explicitly supplied ``pool`` all dispatch
    onto a warm :class:`repro.exp.pool.WorkerPool` of spawn-once worker
    processes (the shared default pool unless ``pool`` is given) that
    reuse simulation contexts across points sharing a structural
    (config, protocol) pair.  A point that exceeds ``point_timeout``
    wall-clock seconds has its worker killed and is recorded as
    ``status="timeout"``; the worker is respawned warm for the rest of
    the batch.  ``retries`` re-runs a point whose worker crashed with an
    unexpected exception (or died outright), sleeping
    ``retry_backoff * 2**(attempt-1)`` seconds between attempts.

    ``cancel_event`` (a ``threading.Event``) aborts the call early:
    once set, in-flight pool workers are killed and respawned (the
    ``point_timeout`` mechanism), unstarted points never run, and
    :class:`RunCancelled` is raised.
    """
    if on_error not in ("record", "raise"):
        raise ValueError(f"on_error must be 'record' or 'raise', "
                         f"got {on_error!r}")
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if point_timeout is not None and point_timeout <= 0:
        raise ValueError(f"point_timeout must be positive, "
                         f"got {point_timeout}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be >= 0, "
                         f"got {retry_backoff}")
    points = list(points)
    if not points:
        raise ValueError("experiment needs at least one run point")

    start = time.perf_counter()
    done = cache_hits = failures = cycles = 0
    outcomes: List[Optional[PointOutcome]] = [None] * len(points)

    def finish(index: int, outcome: PointOutcome) -> None:
        nonlocal done, cache_hits, failures, cycles
        outcomes[index] = outcome
        done += 1
        if outcome.from_cache:
            cache_hits += 1
        else:
            cycles += outcome.total_cycles
            if cache is not None:
                cache.store(points[index].cache_key(), outcome)
        if not outcome.ok:
            failures += 1
        if progress is not None:
            progress(Progress(done=done, total=len(points), outcome=outcome,
                              cache_hits=cache_hits, failures=failures,
                              cycles_simulated=cycles,
                              elapsed_seconds=time.perf_counter() - start,
                              cache_misses=done - cache_hits))
        if not outcome.ok and on_error == "raise":
            outcome.raise_error()

    pending: List[int] = []
    for index, point in enumerate(points):
        hit = cache.load(point.cache_key()) if cache is not None else None
        needs_result = _needs_result(point, keep_results)
        if hit is not None and point.protocol.telemetry_window \
                and hit.telemetry is None:
            hit = None  # entry predates telemetry for this key
        if hit is not None and (not needs_result or hit.result is not None):
            hit.from_cache = True
            if not needs_result:
                hit.result = None
            finish(index, hit)
        else:
            pending.append(index)

    use_pool = bool(pending) and (
        pool is not None
        or point_timeout is not None
        or (processes > 1 and len(pending) > 1)
    )
    if use_pool:
        from repro.exp.pool import get_default_pool

        # Workers always capture crashes as outcomes; the ``finish``
        # closure above applies the ``on_error`` policy parent-side.
        payloads = [(points[i], _needs_result(points[i], keep_results),
                     retries, retry_backoff, True)
                    for i in pending]
        workers = max(1, min(processes, len(pending)))
        active = pool if pool is not None else get_default_pool(workers)
        active.run(list(zip(pending, payloads)),
                   point_timeout=point_timeout,
                   retries=retries, retry_backoff=retry_backoff,
                   max_workers=workers, finish=finish,
                   cancel_event=cancel_event)
    else:
        capture = on_error == "record"
        for index in pending:
            if cancel_event is not None and cancel_event.is_set():
                raise RunCancelled("run cancelled before completion")
            finish(index, _pool_point(
                (points[index], _needs_result(points[index], keep_results),
                 retries, retry_backoff, capture)))
    return outcomes


@dataclass
class ExperimentResult:
    """All outcomes of one orchestrated experiment, in grid order."""

    outcomes: List[PointOutcome]
    wall_seconds: float = 0.0

    @property
    def num_points(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def simulated(self) -> int:
        return self.num_points - self.cache_hits

    @property
    def cycles_simulated(self) -> int:
        return sum(o.total_cycles for o in self.outcomes if not o.from_cache)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.num_points if self.num_points else 0.0

    @property
    def cache_misses(self) -> int:
        """Points that had to be simulated because the cache missed."""
        return self.simulated

    def select(self, label: Optional[str] = None,
               traffic: Optional[str] = None,
               seed: Optional[int] = None) -> List[PointOutcome]:
        """Outcomes filtered by group label, traffic name and/or seed."""
        return [o for o in self.outcomes
                if (label is None or o.point.label == label)
                and (traffic is None or o.point.traffic.name == traffic)
                and (seed is None or o.point.protocol.seed == seed)]

    def sweep(self, label: Optional[str] = None,
              traffic: Optional[str] = None,
              seed: Optional[int] = None,
              sweep_label: Optional[str] = None) -> SweepResult:
        """One latency/power curve assembled from matching outcomes."""
        selected = self.select(label, traffic, seed)
        if not selected:
            raise ValueError(
                f"no outcomes match label={label!r} traffic={traffic!r} "
                f"seed={seed!r}"
            )
        return outcomes_to_sweep(selected, label=sweep_label)

    def sweeps(self) -> Dict[tuple, SweepResult]:
        """Every (label, traffic, seed) group as its own sweep, in grid
        order."""
        groups: Dict[tuple, List[PointOutcome]] = {}
        for outcome in self.outcomes:
            key = (outcome.point.label, outcome.point.traffic.describe(),
                   outcome.point.protocol.seed)
            groups.setdefault(key, []).append(outcome)
        many_seeds = len({seed for _, _, seed in groups}) > 1
        out = {}
        for key, group in groups.items():
            label, traffic, seed = key
            parts = [label or group[0].point.config.router.kind, traffic]
            if many_seeds:
                parts.append(f"seed={seed}")
            out[key] = outcomes_to_sweep(group, label=" ".join(parts))
        return out

    def summary(self) -> str:
        """One-line accounting of the run, for logs and the CLI."""
        return (f"{self.num_points} points: {self.simulated} simulated, "
                f"{self.cache_hits} cached "
                f"({self.cache_hit_rate:.0%} hit rate), "
                f"{len(self.failures)} failed; "
                f"{self.cycles_simulated} cycles in "
                f"{self.wall_seconds:.1f}s")


def outcomes_to_sweep(outcomes: Iterable[PointOutcome],
                      label: Optional[str] = None) -> SweepResult:
    """Assemble outcomes (one traffic curve) into a :class:`SweepResult`."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("no outcomes to assemble")
    first = outcomes[0].point
    label = label or first.label or first.config.router.kind
    return SweepResult(label=label,
                       points=[o.to_sweep_point() for o in outcomes])


def run_experiment(spec: Union[ExperimentSpec, Sequence[RunPoint]], *,
                   processes: int = 1,
                   cache: Union[ResultCache, str, None] = None,
                   keep_results: bool = False,
                   progress: Optional[ProgressHook] = None,
                   on_error: str = "record",
                   point_timeout: Optional[float] = None,
                   retries: int = 0,
                   retry_backoff: float = 0.25,
                   pool: Optional[object] = None,
                   cancel_event: Optional[object] = None) -> ExperimentResult:
    """Run a whole experiment grid (or explicit point list).

    ``cache`` may be a :class:`ResultCache`, a directory path, or
    ``None`` to disable caching.  ``pool`` routes execution through an
    existing :class:`repro.exp.pool.WorkerPool` instead of the shared
    default one.
    """
    points = spec.points() if isinstance(spec, ExperimentSpec) else list(spec)
    if isinstance(cache, str):
        cache = ResultCache(cache)
    start = time.perf_counter()
    outcomes = run_points(points, processes=processes, cache=cache,
                          keep_results=keep_results, progress=progress,
                          on_error=on_error, point_timeout=point_timeout,
                          retries=retries, retry_backoff=retry_backoff,
                          pool=pool, cancel_event=cancel_event)
    return ExperimentResult(outcomes=outcomes,
                            wall_seconds=time.perf_counter() - start)
