"""Analytic-guided sweep grids: let the closed-form saturation
prediction decide where to spend simulation time.

A uniform rate grid wastes most of its points: latency curves are flat
until just below saturation, then blow up, so evenly spaced samples
over-resolve the flat region and spray points deep past saturation
where runs are slowest and least informative.  This module asks
:mod:`repro.analytic` for the predicted saturation rate first, then
places the grid around it:

* a few *sparse* points across the flat region (they anchor the
  zero-load proxy and the power-vs-rate trend),
* the bulk of the budget *dense* in a band straddling the predicted
  saturation (where the twice-zero-load crossing actually happens),
* nothing deep past saturation — rates beyond ``past_fraction`` times
  the prediction are skipped entirely, since the analytic model already
  knows they diverge.

``run_guided_sweep`` feeds the resulting grid through the ordinary
orchestrator (same caching, parallelism and failure isolation) and
returns the measured sweep next to the prediction that placed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import NetworkConfig, RunProtocol
from repro.core.report import SweepResult

#: Default share of the point budget spent below the dense band.
SPARSE_FRACTION = 0.35
#: Dense band, as fractions of the predicted saturation rate.  The
#: analytic prediction carries a ~20% tolerance, so the band extends
#: well past 1.0x to guarantee the measured crossing falls inside it.
DENSE_BAND = (0.7, 1.3)


def guided_rate_grid(config: NetworkConfig, traffic: str = "uniform", *,
                     points: int = 8,
                     past_fraction: float = 1.3,
                     **traffic_params) -> "GuidedGrid":
    """Place ``points`` injection rates around the predicted saturation.

    ``past_fraction`` caps the grid at that multiple of the predicted
    saturation rate — everything beyond is a skipped point.
    """
    from repro.analytic import estimate_saturation

    if points < 4:
        raise ValueError(f"a guided grid needs >= 4 points, got {points}")
    prediction = estimate_saturation(config, traffic, **traffic_params)
    sat = prediction.rate
    if not math.isfinite(sat) or sat <= 0.0:
        raise ValueError(
            f"traffic {traffic!r} has no finite predicted saturation; "
            f"use an explicit rate grid"
        )
    top = min(past_fraction * sat, 0.98 * prediction.throughput_bound)
    dense_lo = min(DENSE_BAND[0] * sat, top)
    num_sparse = max(1, round(points * SPARSE_FRACTION))
    num_dense = points - num_sparse
    sparse_lo = sat * 0.1
    sparse = [sparse_lo + i * (dense_lo - sparse_lo) / num_sparse
              for i in range(num_sparse)]
    dense = [dense_lo + i * (top - dense_lo) / max(1, num_dense - 1)
             for i in range(num_dense)]
    rates = sorted(set(round(r, 10) for r in sparse + dense))
    return GuidedGrid(rates=rates, prediction=prediction,
                      skipped_above=top)


@dataclass(frozen=True)
class GuidedGrid:
    """An analytically placed rate grid plus the prediction behind it."""

    rates: List[float]
    prediction: "object"  # SaturationEstimate
    #: Rates above this were skipped as deep-past-saturation.
    skipped_above: float

    @property
    def dense_step(self) -> float:
        """Spacing of the dense band (the grid's saturation resolution)."""
        diffs = [b - a for a, b in zip(self.rates, self.rates[1:])]
        return min(diffs) if diffs else 0.0


@dataclass
class GuidedSweep:
    """A measured sweep run on an analytically placed grid."""

    sweep: SweepResult
    grid: GuidedGrid
    prediction: "object" = None  # SaturationEstimate

    def saturation_rate(self, interpolate: bool = False) -> Optional[float]:
        """Measured saturation on the guided grid (paper criterion)."""
        return self.sweep.saturation_rate(interpolate=interpolate)


def run_guided_sweep(config: NetworkConfig, traffic: str = "uniform",
                     protocol: Optional[RunProtocol] = None, *,
                     points: int = 8,
                     past_fraction: float = 1.1,
                     label: Optional[str] = None,
                     processes: int = 1,
                     cache=None,
                     progress=None,
                     **traffic_params) -> GuidedSweep:
    """Sweep a traffic kind on an analytic-guided rate grid.

    Mirrors ``Orion.sweep_traffic`` but chooses the rates itself: dense
    around the predicted saturation, sparse below, none deep past it.
    Failures at individual points are recorded, not raised — a point
    that saturates into a timeout still leaves the rest of the curve.
    """
    from repro.exp.cache import ResultCache
    from repro.exp.orchestrator import outcomes_to_sweep, run_points
    from repro.exp.spec import RunPoint, TrafficSpec

    grid = guided_rate_grid(config, traffic, points=points,
                            past_fraction=past_fraction, **traffic_params)
    protocol = protocol or RunProtocol()
    label = label or f"{config.router.kind} {traffic} (guided)"
    spec = TrafficSpec.of(traffic, **traffic_params)
    run_list = [RunPoint(config=config, traffic=spec, rate=rate,
                         protocol=protocol, label=label)
                for rate in grid.rates]
    if isinstance(cache, str):
        cache = ResultCache(cache)
    outcomes = run_points(run_list, processes=processes, cache=cache,
                          progress=progress, on_error="record")
    return GuidedSweep(sweep=outcomes_to_sweep(outcomes, label=label),
                       grid=grid, prediction=grid.prediction)
