"""Source dimension-ordered routing (DOR).

The paper uses "simple source dimension-ordered routing where the route is
encoded in a packet beforehand at source", routing "along the y-axis
first" (section 4.3).  Routes are lists of output-port indices, one per
router visited, ending with the destination's LOCAL (ejection) port.

On a torus, minimal routing may take the wraparound channel.  When the two
directions are equidistant (distance exactly half the ring), the tie-break
policy matters:

* ``"avoid_wrap"`` — choose the direction whose path does not cross the
  ring's wraparound edge.  With rings of size <= 4 this makes every
  multi-hop straight run wrap-free, which breaks all intra-ring channel
  cycles and renders plain wormhole routing deadlock-free (used for the
  wormhole and central-buffer routers, which have no VC classes to spend
  on datelines).
* ``"even"`` — alternate directions deterministically by source parity,
  preserving the torus's load symmetry (used with VC routers, whose
  deadlock freedom comes from dateline VC classes instead).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.topology import (EAST, LOCAL, NORTH, OPPOSITE, SOUTH, WEST,
                                Topology)

TIE_BREAKS = ("avoid_wrap", "even")


def _ring_steps(position: int, target: int, size: int, wraparound: bool,
                tie_break: str, parity: int) -> Tuple[int, int]:
    """Direction and hop count along one ring.

    Returns ``(step, hops)`` with ``step`` in ``{-1, 0, +1}``.
    """
    if position == target:
        return 0, 0
    if not wraparound:
        return (1, target - position) if target > position else (-1, position - target)
    forward = (target - position) % size
    backward = (position - target) % size
    if forward < backward:
        return 1, forward
    if backward < forward:
        return -1, backward
    # Equidistant: apply the tie-break policy.
    if tie_break == "avoid_wrap":
        # Going +1 wraps iff the path passes the size-1 -> 0 edge.
        wraps_forward = position + forward >= size
        return (-1, backward) if wraps_forward else (1, forward)
    if tie_break == "even":
        return (1, forward) if parity % 2 == 0 else (-1, backward)
    raise ValueError(f"unknown tie_break {tie_break!r}; options: {TIE_BREAKS}")


def dimension_ordered_route(topo: Topology, src: int, dst: int,
                            tie_break: str = "avoid_wrap") -> List[int]:
    """Compute the y-then-x DOR route from ``src`` to ``dst``.

    The returned list holds one output port per router visited, with the
    final entry being LOCAL (ejection at the destination).
    """
    if src == dst:
        raise ValueError(f"source and destination are both node {src}")
    if tie_break not in TIE_BREAKS:
        raise ValueError(f"unknown tie_break {tie_break!r}; options: {TIE_BREAKS}")
    sx, sy = topo.coords(src)
    dx_, dy_ = topo.coords(dst)
    parity = sx + sy
    route: List[int] = []
    # Y dimension first (paper section 4.3: "we route along the y-axis
    # first").
    step, hops = _ring_steps(sy, dy_, topo.height, topo.wraparound,
                             tie_break, parity)
    route.extend([NORTH if step > 0 else SOUTH] * hops)
    # Then X.
    step, hops = _ring_steps(sx, dx_, topo.width, topo.wraparound,
                             tie_break, parity)
    route.extend([EAST if step > 0 else WEST] * hops)
    route.append(LOCAL)
    return route


def route_around_faults(topo: Topology, node: int, dst: int, in_port: int,
                        faulted_out: int, faulted_links,
                        tie_break: str = "avoid_wrap"):
    """Minimal detour from ``node`` to ``dst`` around faulted links.

    The fault fallback for source-routed DOR: when a packet's next output
    port is dead, pick a healthy neighbouring port and re-plan with plain
    DOR from that neighbour.  Candidates exclude ``faulted_out`` ports
    (a bitmask of dead outputs at ``node``), the arrival port (u-turns
    are protocol violations) and detours whose DOR continuation
    immediately bounces back over the link just taken (a ping-pong
    livelock).  Among the survivors, prefer detours whose continuation
    crosses no *known*-faulted link (``faulted_links`` is the network's
    set of ``(node, port)`` dead links), then the shortest, then the
    lowest port index — fully deterministic.

    Returns the replacement route (starting with the detour port, ending
    in LOCAL) or ``None`` when no detour exists; the caller then drops
    the packet.  The detour is minimal-effort by design: it re-plans
    once and does not guarantee delivery when later links die.
    """
    best = best_key = None
    for port in (NORTH, SOUTH, EAST, WEST):
        if faulted_out >> port & 1 or port == in_port:
            continue
        nbr = topo.neighbor(node, port)
        if nbr is None:
            continue
        if nbr == dst:
            route = [port, LOCAL]
        else:
            cont = dimension_ordered_route(topo, nbr, dst, tie_break)
            if cont[0] == OPPOSITE[port]:
                continue
            route = [port] + cont
        clean = _crosses_faulted(topo, node, route, faulted_links)
        key = (clean, topo.manhattan_distance(nbr, dst), port)
        if best_key is None or key < best_key:
            best, best_key = route, key
    return best


def _crosses_faulted(topo: Topology, src: int, route: List[int],
                     faulted_links) -> bool:
    """Whether a route traverses any known-dead ``(node, port)`` link."""
    if not faulted_links:
        return False
    node = src
    for port in route[:-1]:
        if (node, port) in faulted_links:
            return True
        node = topo.neighbor(node, port)
    return False


def route_hops(route: List[int]) -> int:
    """Number of router-to-router hops in a route (excludes ejection)."""
    return len(route) - 1


def route_nodes(topo: Topology, src: int, route: List[int]) -> List[int]:
    """The node sequence a route visits, starting at ``src``."""
    nodes = [src]
    for port in route[:-1]:
        nxt = topo.neighbor(nodes[-1], port)
        if nxt is None:
            raise ValueError(
                f"route leaves the topology at node {nodes[-1]} port {port}"
            )
        nodes.append(nxt)
    return nodes
