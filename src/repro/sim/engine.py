"""Simulation engine implementing the paper's measurement protocol.

Section 4.1: "Each simulation is run for a warm-up phase of 1000 cycles
with 10,000 packets injected thereafter and the simulation continued at
the prescribed packet injection rate till these packets in the sample
space have all been received, and their average latency calculated. ...
The simulator records energy consumption of each component ... over the
entire simulation excluding the first 1000 cycles.  Average power is then
computed by multiplying the total energy by frequency and then dividing by
total simulation cycles."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.core.config import NetworkConfig, RunProtocol, resolve_protocol
from repro.core.events import EnergyAccountant
from repro.core.power_binding import CounterBinding, NullBinding, PowerBinding
from repro.sim.network import Network
from repro.sim.stats import LatencyStats
from repro.sim.traffic import TrafficPattern


class DeadlockError(RuntimeError):
    """No flit moved for the watchdog window while traffic was pending."""


class SimulationTimeout(RuntimeError):
    """The run exceeded ``max_cycles`` before the sample drained."""


@dataclass
class SimulationResult:
    """Everything one run produces."""

    config: NetworkConfig
    avg_latency: float
    latency: LatencyStats
    sample_packets: int
    warmup_cycles: int
    measured_cycles: int
    total_cycles: int
    flits_injected: int
    flits_ejected: int
    measured_flits_ejected: int
    packets_delivered: int
    accountant: Optional[EnergyAccountant]
    #: Occupancy/utilization monitor, when enabled.
    monitor: Optional[object] = None
    #: Windowed :class:`~repro.telemetry.recorder.TelemetryRecord`, when
    #: the protocol's ``telemetry_window`` is non-zero.
    telemetry: Optional[object] = None
    #: How the run ended: "ok" (sample drained), or — under
    #: ``RunProtocol.on_stall="finish"`` — "stalled" (deadlock/livelock
    #: watchdog fired) or "max_cycles" (cycle limit hit).  With the
    #: default ``on_stall="raise"`` those conditions raise instead.
    status: str = "ok"
    #: Fault-handling outcomes (all zero on a healthy fabric).
    flits_dropped: int = 0
    packets_dropped: int = 0
    packets_misrouted: int = 0
    #: Sample-tagged packets dropped rather than delivered (they count
    #: toward run completion but contribute no latency observation).
    sample_dropped: int = 0

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Network-wide accepted flit rate over the measured window."""
        if self.measured_cycles == 0:
            return 0.0
        return self.measured_flits_ejected / self.measured_cycles

    @property
    def total_energy_j(self) -> float:
        if self.accountant is None:
            raise ValueError("run had power collection disabled")
        return self.accountant.total_energy()

    @property
    def total_power_w(self) -> float:
        """Average network power over the measured window."""
        if self.measured_cycles == 0:
            return 0.0
        frequency = self.config.tech.frequency_hz
        return self.total_energy_j * frequency / self.measured_cycles

    def power_breakdown_w(self) -> Dict[str, float]:
        """Average power per component category (W)."""
        if self.accountant is None:
            raise ValueError("run had power collection disabled")
        if self.measured_cycles == 0:
            return {c: 0.0 for c in self.accountant.breakdown()}
        frequency = self.config.tech.frequency_hz
        scale = frequency / self.measured_cycles
        return {component: energy * scale
                for component, energy in self.accountant.breakdown().items()}

    def node_power_w(self) -> List[float]:
        """Average power per node (W) — Figure 6's spatial data."""
        if self.accountant is None:
            raise ValueError("run had power collection disabled")
        if self.measured_cycles == 0:
            return [0.0] * self.config.num_nodes
        frequency = self.config.tech.frequency_hz
        scale = frequency / self.measured_cycles
        return [energy * scale for energy in self.accountant.spatial_map()]


class SimulationContext:
    """A constructed network + power binding, reusable across runs.

    Construction of the simulation graph — topology wiring, router and
    arbiter allocation, technology and power-model precomputation — is a
    fixed cost independent of the workload.  Grid points that differ
    only in injection rate, seed or traffic pattern can therefore share
    one constructed graph: build a context once per
    :func:`structural_key` and pass it to :class:`Simulation` for each
    point.  The context resets itself (:meth:`Network.reset`) before
    every run after the first, which is bit-identical to fresh
    construction (pinned by tests/test_pool.py).

    Not safe for points that carry live object references out of the
    run: ``protocol.monitor`` results hold the shared network, and
    callers keeping ``result.accountant`` would see it zeroed by the
    next reuse — such points must construct fresh (the worker pool gates
    them out).
    """

    def __init__(self, config: NetworkConfig,
                 protocol: RunProtocol) -> None:
        self.config = config
        self.key = structural_key(config, protocol)
        if protocol.collect_power:
            self.accountant: Optional[EnergyAccountant] = \
                EnergyAccountant(config.num_nodes)
            if protocol.kernel == "sparse" and \
                    config.activity_mode == "average":
                self.binding = CounterBinding(config, self.accountant)
            else:
                self.binding = PowerBinding(config, self.accountant)
        else:
            self.accountant = None
            self.binding = NullBinding()
        self.network = Network(config, self.binding,
                               kernel=protocol.kernel)
        self._used = False

    def acquire(self) -> "SimulationContext":
        """Hand the context to one run, resetting first when reused."""
        if self._used:
            self.network.reset()
        self._used = True
        return self


def structural_key(config: NetworkConfig, protocol: RunProtocol) -> tuple:
    """The parts of (config, protocol) that determine graph construction.

    Everything else — seed, rate, traffic, warm-up/sample lengths,
    watchdogs, faults, telemetry — only parameterises the run, so
    points agreeing on this key can share one
    :class:`SimulationContext`.
    """
    return (config, protocol.kernel, protocol.collect_power)


class Simulation:
    """One network + one workload, run to the paper's completion rule."""

    def __init__(self, config: NetworkConfig, traffic: TrafficPattern,
                 protocol: Optional[RunProtocol] = None,
                 context: Optional[SimulationContext] = None,
                 **overrides) -> None:
        """``overrides`` accepts any :class:`RunProtocol` field as a
        deprecated per-run keyword (``None`` meaning "not given"); new
        code passes one ``protocol`` instead.  ``context`` supplies a
        prebuilt (and reusable) network/binding graph in place of fresh
        construction; it must have been built for a matching
        :func:`structural_key`."""
        protocol = resolve_protocol(protocol, **overrides)
        self.protocol = protocol
        self.traffic = traffic
        self.warmup_cycles = protocol.warmup_cycles
        self.sample_packets = protocol.sample_packets
        self.max_cycles = protocol.max_cycles
        self.watchdog_cycles = protocol.watchdog_cycles
        self.audit_every = protocol.audit_every
        if context is not None:
            if context.key != structural_key(config, protocol):
                raise ValueError(
                    "simulation context was built for a different "
                    "structural (config, protocol) pair"
                )
            context.acquire()
            self.accountant = context.accountant
            self.binding = context.binding
            self.network = context.network
        elif protocol.collect_power:
            self.accountant = EnergyAccountant(config.num_nodes)
            # The sparse kernel defers average-mode energy into integer
            # event counters converted to joules at finalization; data
            # mode needs per-payload Hamming distances, so it keeps the
            # per-event deposit path.
            if protocol.kernel == "sparse" and \
                    config.activity_mode == "average":
                self.binding = CounterBinding(config, self.accountant)
            else:
                self.binding = PowerBinding(config, self.accountant)
            self.network = Network(config, self.binding,
                                   kernel=protocol.kernel)
        else:
            self.accountant = None
            self.binding = NullBinding()
            self.network = Network(config, self.binding,
                                   kernel=protocol.kernel)
        self.config = config
        if protocol.monitor:
            from repro.sim.monitor import NetworkMonitor
            self.monitor = NetworkMonitor(self.network)
        else:
            self.monitor = None
        if protocol.telemetry_window:
            from repro.telemetry import TelemetryRecorder
            self.recorder = TelemetryRecorder(
                self.network, self.binding, protocol.telemetry_window)
        else:
            self.recorder = None
        if protocol.faults is not None and protocol.faults.has_faults:
            from repro.faults import build_schedule
            self.fault_schedule = build_schedule(protocol.faults, config)
            self.network.fault_policy = protocol.faults.policy
        else:
            self.fault_schedule = None

    def run(self) -> SimulationResult:
        """Execute the full warm-up / sample / drain protocol."""
        network = self.network
        stats = LatencyStats()
        sample_tagged = 0
        sample_done = 0

        def on_delivered(packet) -> None:
            nonlocal sample_done
            if packet.in_sample:
                sample_done += 1
                stats.record(packet)

        network.on_packet_delivered = on_delivered
        sample_dropped = 0
        # Fault machinery engages only when a schedule exists: the
        # healthy-fabric loop below stays bit-identical and pays one
        # falsy test per cycle for the hook.
        fault_queue = None
        if self.fault_schedule is not None and self.fault_schedule.events:
            fault_queue = deque(self.fault_schedule.events)

            def on_dropped(packet) -> None:
                nonlocal sample_done, sample_dropped
                if packet.in_sample:
                    sample_done += 1
                    sample_dropped += 1

            network.on_packet_dropped = on_dropped
        status = "ok"
        on_stall = self.protocol.on_stall
        livelock_cycles = self.protocol.livelock_cycles
        progress_streak = 0
        last_progress = 0
        idle_streak = 0
        ejected_at_warmup = 0
        recorder = self.recorder
        # Wall-clock phase spans are profiled only when telemetry is on:
        # the disabled path stays free of perf_counter calls.
        profiling = recorder is not None
        span_inject = span_step = span_observe = 0.0
        if profiling:
            from time import perf_counter
        while True:
            cycle = network.cycle
            if cycle == self.warmup_cycles:
                ejected_at_warmup = network.flits_ejected
                if self.accountant is not None:
                    self.binding.reset()
                if self.monitor is not None:
                    self.monitor.begin()
                if recorder is not None:
                    recorder.begin(cycle)
            # The single fault hook shared by both kernels: due events
            # mutate the network between cycles, before injection and
            # stepping, so dense and sparse timelines perturb
            # identically.
            if fault_queue and fault_queue[0].cycle <= cycle:
                self._apply_due_faults(fault_queue, cycle)
            if profiling:
                t0 = perf_counter()
            for src, dst in self.traffic.packets_at(cycle):
                in_sample = (cycle >= self.warmup_cycles
                             and sample_tagged < self.sample_packets)
                if in_sample:
                    sample_tagged += 1
                network.create_packet(src, dst, cycle, in_sample)
            if profiling:
                t1 = perf_counter()
                span_inject += t1 - t0
            moved = network.step()
            if profiling:
                t2 = perf_counter()
                span_step += t2 - t1
            if self.audit_every and network.cycle % self.audit_every == 0:
                network.audit()
            if cycle >= self.warmup_cycles:
                if self.monitor is not None:
                    self.monitor.sample()
                if recorder is not None:
                    recorder.on_cycle(network.cycle)
            if profiling:
                span_observe += perf_counter() - t2
            if sample_tagged >= self.sample_packets and \
                    sample_done >= self.sample_packets:
                break
            if moved == 0 and (network.flits_in_flight > 0
                               or network.flits_awaiting_injection > 0):
                idle_streak += 1
                if idle_streak >= self.watchdog_cycles:
                    if on_stall == "raise":
                        raise DeadlockError(
                            f"no flit moved for {idle_streak} cycles at "
                            f"cycle {network.cycle} with "
                            f"{network.flits_in_flight} flits in flight"
                        )
                    status = "stalled"
                    break
            else:
                idle_streak = 0
            if livelock_cycles:
                # Livelock watchdog: flits may keep moving (so the idle
                # detector stays quiet) while no packet ever completes —
                # e.g. traffic ping-ponging around dead links.
                progressed = (network.packets_delivered
                              + network.packets_dropped)
                if progressed != last_progress:
                    last_progress = progressed
                    progress_streak = 0
                elif network.flits_in_flight > 0 \
                        or network.flits_awaiting_injection > 0:
                    progress_streak += 1
                    if progress_streak >= livelock_cycles:
                        if on_stall == "raise":
                            raise DeadlockError(
                                f"no packet delivered or dropped for "
                                f"{progress_streak} cycles at cycle "
                                f"{network.cycle} (livelock) with "
                                f"{network.flits_in_flight} flits in "
                                f"flight"
                            )
                        status = "stalled"
                        break
                else:
                    progress_streak = 0
            if network.cycle >= self.max_cycles:
                if on_stall == "raise":
                    raise SimulationTimeout(
                        f"exceeded {self.max_cycles} cycles with "
                        f"{sample_done}/{self.sample_packets} sample "
                        f"packets delivered"
                    )
                status = "max_cycles"
                break
        # Drop the delivery/drop closures so results (and the monitor's
        # network reference) stay picklable across process pools.
        network.on_packet_delivered = None
        network.on_packet_dropped = None
        total_cycles = network.cycle
        # A stall can terminate inside warm-up; clamp so downstream
        # power math never sees a negative window.
        measured = max(0, total_cycles - self.warmup_cycles)
        if profiling:
            t0 = perf_counter()
        if self.accountant is not None:
            self.binding.finalize(measured, network.links_per_node())
        if recorder is not None:
            recorder.finalize(total_cycles)
            recorder.add_span("inject", span_inject)
            recorder.add_span("router_step", span_step)
            recorder.add_span("observe", span_observe)
            recorder.add_span("finalize", perf_counter() - t0)
        return SimulationResult(
            config=self.config,
            avg_latency=stats.average,
            latency=stats,
            sample_packets=sample_done,
            warmup_cycles=self.warmup_cycles,
            measured_cycles=measured,
            total_cycles=total_cycles,
            flits_injected=network.flits_injected,
            flits_ejected=network.flits_ejected,
            measured_flits_ejected=network.flits_ejected - ejected_at_warmup,
            packets_delivered=network.packets_delivered,
            accountant=self.accountant,
            monitor=self.monitor,
            telemetry=recorder.record if recorder is not None else None,
            status=status,
            flits_dropped=network.flits_dropped,
            packets_dropped=network.packets_dropped,
            packets_misrouted=network.packets_misrouted,
            sample_dropped=sample_dropped,
        )

    def _apply_due_faults(self, queue, cycle: int) -> None:
        """Feed due fault events to the network; an event the network
        cannot apply yet (busy output VC) is deferred one cycle, keeping
        the remaining timeline in order."""
        network = self.network
        while queue and queue[0].cycle <= cycle:
            event = queue.popleft()
            if not network.apply_fault(event):
                queue.appendleft(replace(event, cycle=cycle + 1))
                break
