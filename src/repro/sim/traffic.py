"""Communication workloads (paper section 4.1/4.3).

Traffic patterns decide, per node per cycle, whether a packet is created
and to which destination.  Injection is an open-loop Bernoulli process at
the prescribed packet injection rate (packets/cycle/node); created packets
wait in an unbounded source queue until the injection port accepts them,
so source queuing time is part of packet latency, as the paper specifies.

Patterns provided:

* :class:`UniformRandomTraffic` — each node sends to uniformly random
  destinations other than itself (the paper's default workload);
* :class:`BroadcastTraffic` — one node sends to all others (section 4.3);
  successive packets sweep the other nodes round-robin so every
  destination receives the same share;
* :class:`TransposeTraffic`, :class:`BitComplementTraffic`,
  :class:`HotspotTraffic`, :class:`NearestNeighborTraffic` — standard
  synthetic patterns for additional studies;
* :class:`TraceTraffic` — replays an explicit (cycle, src, dst) trace,
  the hook for "actual communication traces" the paper mentions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.topology import Topology


class TrafficPattern:
    """Base class: per-cycle packet generation decisions."""

    def __init__(self, topo: Topology, seed: int = 1) -> None:
        self.topo = topo
        self.rng = random.Random(seed)

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        """``(src, dst)`` pairs for packets created this cycle."""
        raise NotImplementedError

    def reset(self, seed: Optional[int] = None) -> None:
        """Restart the pattern's random stream."""
        if seed is not None:
            self.rng = random.Random(seed)


class UniformRandomTraffic(TrafficPattern):
    """Every node injects at ``rate`` to uniformly random destinations."""

    def __init__(self, topo: Topology, rate: float, seed: int = 1) -> None:
        super().__init__(topo, seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.rate = rate

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        pairs = []
        n = self.topo.num_nodes
        rng = self.rng
        for src in range(n):
            if rng.random() < self.rate:
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
                pairs.append((src, dst))
        return pairs


class BroadcastTraffic(TrafficPattern):
    """One source node injects at ``rate`` to all other nodes in turn.

    The paper's section 4.3 broadcast: the node at (1, 2) injects at the
    maximum rate of 0.2 packets/cycle while every other node is silent,
    keeping total network injection equal to the uniform workload's.
    """

    def __init__(self, topo: Topology, source: int, rate: float,
                 seed: int = 1) -> None:
        super().__init__(topo, seed)
        topo.coords(source)  # validates
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.source = source
        self.rate = rate
        self._targets = [n for n in range(topo.num_nodes) if n != source]
        self._next_target = 0

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        if self.rng.random() >= self.rate:
            return []
        dst = self._targets[self._next_target]
        self._next_target = (self._next_target + 1) % len(self._targets)
        return [(self.source, dst)]

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._next_target = 0


class TransposeTraffic(TrafficPattern):
    """Node (x, y) sends to node (y, x); diagonal nodes stay silent."""

    def __init__(self, topo: Topology, rate: float, seed: int = 1) -> None:
        super().__init__(topo, seed)
        if topo.width != topo.height:
            raise ValueError("transpose traffic needs a square topology")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._dst = {}
        for node in range(topo.num_nodes):
            x, y = topo.coords(node)
            if x != y:
                self._dst[node] = topo.node_at(y, x)

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        rng = self.rng
        return [(src, dst) for src, dst in self._dst.items()
                if rng.random() < self.rate]


class BitComplementTraffic(TrafficPattern):
    """Node (x, y) sends to (width-1-x, height-1-y)."""

    def __init__(self, topo: Topology, rate: float, seed: int = 1) -> None:
        super().__init__(topo, seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._dst = {}
        for node in range(topo.num_nodes):
            x, y = topo.coords(node)
            dst = topo.node_at(topo.width - 1 - x, topo.height - 1 - y)
            if dst != node:
                self._dst[node] = dst

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        rng = self.rng
        return [(src, dst) for src, dst in self._dst.items()
                if rng.random() < self.rate]


class HotspotTraffic(TrafficPattern):
    """Uniform random, but a fraction of packets target one hot node."""

    def __init__(self, topo: Topology, rate: float, hotspot: int,
                 hot_fraction: float = 0.2, seed: int = 1) -> None:
        super().__init__(topo, seed)
        topo.coords(hotspot)  # validates
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(
                f"hot fraction must be in [0, 1], got {hot_fraction}"
            )
        self.rate = rate
        self.hotspot = hotspot
        self.hot_fraction = hot_fraction

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        pairs = []
        n = self.topo.num_nodes
        rng = self.rng
        for src in range(n):
            if rng.random() >= self.rate:
                continue
            if src != self.hotspot and rng.random() < self.hot_fraction:
                dst = self.hotspot
            else:
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
            pairs.append((src, dst))
        return pairs


class NearestNeighborTraffic(TrafficPattern):
    """Each node sends to a random adjacent node (distance-1 traffic)."""

    def __init__(self, topo: Topology, rate: float, seed: int = 1) -> None:
        super().__init__(topo, seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._neighbors = {
            node: [topo.neighbor(node, p) for p in range(4)
                   if topo.neighbor(node, p) is not None]
            for node in range(topo.num_nodes)
        }

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        pairs = []
        rng = self.rng
        for src, neighbors in self._neighbors.items():
            if rng.random() < self.rate:
                pairs.append((src, rng.choice(neighbors)))
        return pairs


class TornadoTraffic(TrafficPattern):
    """Node (x, y) sends half-way around both rings: the classic
    worst case for minimal routing on tori."""

    def __init__(self, topo: Topology, rate: float, seed: int = 1) -> None:
        super().__init__(topo, seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.rate = rate
        dx = max(1, (topo.width + 1) // 2 - 1) if topo.width > 2 else 1
        dy = max(1, (topo.height + 1) // 2 - 1) if topo.height > 2 else 1
        self._dst = {}
        for node in range(topo.num_nodes):
            x, y = topo.coords(node)
            dst = topo.node_at((x + dx) % topo.width,
                               (y + dy) % topo.height)
            if dst != node:
                self._dst[node] = dst

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        rng = self.rng
        return [(src, dst) for src, dst in self._dst.items()
                if rng.random() < self.rate]


class ShuffleTraffic(TrafficPattern):
    """Perfect-shuffle permutation on node indices (rotate the node id's
    bits left by one).  Requires a power-of-two node count."""

    def __init__(self, topo: Topology, rate: float, seed: int = 1) -> None:
        super().__init__(topo, seed)
        n = topo.num_nodes
        if n & (n - 1):
            raise ValueError(
                f"shuffle traffic needs a power-of-two node count, got {n}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        self.rate = rate
        bits = n.bit_length() - 1
        self._dst = {}
        for node in range(n):
            dst = ((node << 1) | (node >> (bits - 1))) & (n - 1)
            if dst != node:
                self._dst[node] = dst

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        rng = self.rng
        return [(src, dst) for src, dst in self._dst.items()
                if rng.random() < self.rate]


class BurstyTraffic(TrafficPattern):
    """Two-state Markov-modulated uniform random traffic.

    Each node alternates between an OFF state (silent) and an ON state
    injecting at ``rate / duty_cycle``, with mean burst length
    ``burst_length`` cycles — same average ``rate`` as the uniform
    pattern, much burstier arrivals.
    """

    def __init__(self, topo: Topology, rate: float,
                 burst_length: float = 10.0, duty_cycle: float = 0.25,
                 seed: int = 1) -> None:
        super().__init__(topo, seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        if burst_length < 1.0:
            raise ValueError(
                f"burst length must be >= 1, got {burst_length}"
            )
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError(
                f"duty cycle must be in (0, 1], got {duty_cycle}"
            )
        on_rate = rate / duty_cycle
        if on_rate > 1.0:
            raise ValueError(
                f"rate {rate} at duty cycle {duty_cycle} needs an in-burst "
                f"rate above 1 packet/cycle"
            )
        self.rate = rate
        self.on_rate = on_rate
        #: P(ON -> OFF) per cycle: bursts last burst_length on average.
        self._p_off = 1.0 / burst_length
        #: P(OFF -> ON) chosen so the steady-state ON fraction is the
        #: duty cycle.
        self._p_on = self._p_off * duty_cycle / (1.0 - duty_cycle) \
            if duty_cycle < 1.0 else 1.0
        self._state = [False] * topo.num_nodes

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        pairs = []
        n = self.topo.num_nodes
        rng = self.rng
        for src in range(n):
            if self._state[src]:
                if rng.random() < self._p_off:
                    self._state[src] = False
            else:
                if rng.random() < self._p_on:
                    self._state[src] = True
            if self._state[src] and rng.random() < self.on_rate:
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
                pairs.append((src, dst))
        return pairs

    def reset(self, seed: Optional[int] = None) -> None:
        super().reset(seed)
        self._state = [False] * self.topo.num_nodes


class TraceTraffic(TrafficPattern):
    """Replays an explicit trace of ``(cycle, src, dst)`` records."""

    def __init__(self, topo: Topology,
                 trace: Sequence[Tuple[int, int, int]]) -> None:
        super().__init__(topo, seed=0)
        self._by_cycle: Dict[int, List[Tuple[int, int]]] = {}
        for cycle, src, dst in trace:
            if cycle < 0:
                raise ValueError(f"trace cycle must be >= 0, got {cycle}")
            topo.coords(src)
            topo.coords(dst)
            if src == dst:
                raise ValueError(f"trace record {cycle}: src == dst == {src}")
            self._by_cycle.setdefault(cycle, []).append((src, dst))

    def packets_at(self, cycle: int) -> List[Tuple[int, int]]:
        return self._by_cycle.get(cycle, [])

    @property
    def last_cycle(self) -> int:
        """Cycle of the final trace record (0 for an empty trace)."""
        return max(self._by_cycle) if self._by_cycle else 0


# --- traffic registry ---------------------------------------------------------

#: Sentinel default marking a registry parameter the caller must supply.
REQUIRED = object()


@dataclass(frozen=True)
class TrafficParam:
    """One extra constructor parameter a traffic kind accepts beyond
    ``(topo, rate, seed)``."""

    name: str
    kind: type = int
    default: Any = REQUIRED
    help: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED


@dataclass(frozen=True)
class TrafficKind:
    """Registry entry: a named, declaratively-parameterised traffic
    pattern that the CLI and the experiment orchestrator can build and
    validate without pattern-specific code."""

    name: str
    factory: Any
    params: Tuple[TrafficParam, ...] = ()
    #: Whether ``rate`` is per node (vs whole-network, e.g. broadcast).
    per_node: bool = True
    description: str = ""

    def resolve_params(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Validate caller params against the declaration and fill in
        defaults; raises :class:`ValueError` on unknown or missing ones."""
        known = {p.name for p in self.params}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(
                f"traffic {self.name!r} got unknown parameter(s) {unknown}; "
                f"accepts: {sorted(known) or 'none'}"
            )
        resolved = {}
        for param in self.params:
            if param.name in params:
                resolved[param.name] = params[param.name]
            elif param.required:
                raise ValueError(
                    f"traffic {self.name!r} requires parameter "
                    f"{param.name!r} ({param.help or param.kind.__name__})"
                )
            else:
                resolved[param.name] = param.default
        return resolved


#: All registered rate-driven traffic kinds, by name.
TRAFFIC_REGISTRY: Dict[str, TrafficKind] = {}


def register_traffic(name: str, factory, params: Sequence[TrafficParam] = (),
                     per_node: bool = True,
                     description: str = "") -> TrafficKind:
    """Register a traffic pattern class under ``name``."""
    kind = TrafficKind(name, factory, tuple(params), per_node, description)
    TRAFFIC_REGISTRY[name] = kind
    return kind


def traffic_names() -> Tuple[str, ...]:
    """Registered traffic kind names, sorted."""
    return tuple(sorted(TRAFFIC_REGISTRY))


def validate_traffic_params(name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Check ``name`` is registered and ``params`` match its declaration.

    Returns the resolved parameter dict (defaults filled in).
    """
    try:
        kind = TRAFFIC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic {name!r}; options: {traffic_names()}"
        ) from None
    return kind.resolve_params(params)


def make_traffic(name: str, topo: Topology, rate: float, seed: int = 1,
                 **params) -> TrafficPattern:
    """Build a registered traffic pattern by name.

    Extra keyword arguments are validated against the kind's declared
    :class:`TrafficParam` list (e.g. ``source`` for broadcast,
    ``hotspot``/``hot_fraction`` for hotspot traffic).
    """
    resolved = validate_traffic_params(name, params)
    kind = TRAFFIC_REGISTRY[name]
    return kind.factory(topo, rate=rate, seed=seed, **resolved)


register_traffic(
    "uniform", UniformRandomTraffic,
    description="uniformly random destinations (the paper's default)")
register_traffic(
    "broadcast", BroadcastTraffic, per_node=False,
    params=(TrafficParam("source", int, help="broadcasting node id"),),
    description="one source sends to all other nodes (section 4.3)")
register_traffic(
    "transpose", TransposeTraffic,
    description="node (x, y) sends to (y, x)")
register_traffic(
    "bitcomp", BitComplementTraffic,
    description="node (x, y) sends to (W-1-x, H-1-y)")
register_traffic(
    "hotspot", HotspotTraffic,
    params=(TrafficParam("hotspot", int, help="hot node id"),
            TrafficParam("hot_fraction", float, 0.2,
                         "share of packets sent to the hot node")),
    description="uniform random with a fraction aimed at one hot node")
register_traffic(
    "neighbor", NearestNeighborTraffic,
    description="random adjacent-node (distance-1) traffic")
register_traffic(
    "tornado", TornadoTraffic,
    description="half-way-around-the-ring worst case for tori")
register_traffic(
    "shuffle", ShuffleTraffic,
    description="perfect-shuffle permutation (power-of-two node counts)")
register_traffic(
    "bursty", BurstyTraffic,
    params=(TrafficParam("burst_length", float, 10.0,
                         "mean ON-burst length in cycles"),
            TrafficParam("duty_cycle", float, 0.25,
                         "steady-state fraction of time spent ON")),
    description="two-state Markov-modulated uniform random traffic")
