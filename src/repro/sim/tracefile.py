"""Trace file I/O — the hook for "actual communication traces".

The paper notes that "Orion can be interfaced with actual communication
traces for more realistic results" (section 4.3).  This module defines a
minimal, line-oriented trace format and converters:

* a trace file is CSV with a ``cycle,src,dst`` header, one packet per
  line, cycles non-decreasing not required (records are grouped);
* :func:`load_trace` / :func:`save_trace` convert between files and the
  ``(cycle, src, dst)`` record lists :class:`TraceTraffic` consumes;
* :func:`synthesize_trace` bakes any live traffic pattern into a
  replayable trace (useful for repeatable cross-configuration studies).
"""

from __future__ import annotations

import csv
from typing import List, Tuple

from repro.sim.topology import Topology
from repro.sim.traffic import TraceTraffic, TrafficPattern

TraceRecord = Tuple[int, int, int]


def load_trace(path: str) -> List[TraceRecord]:
    """Read ``cycle,src,dst`` records from a CSV trace file."""
    records: List[TraceRecord] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header is None:
            return records
        expected = ["cycle", "src", "dst"]
        if [h.strip().lower() for h in header] != expected:
            raise ValueError(
                f"{path}: expected header {expected}, got {header}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ValueError(
                    f"{path}:{line_no}: expected 3 fields, got {len(row)}"
                )
            try:
                cycle, src, dst = (int(v) for v in row)
            except ValueError:
                raise ValueError(
                    f"{path}:{line_no}: non-integer field in {row}"
                ) from None
            records.append((cycle, src, dst))
    return records


def save_trace(records: List[TraceRecord], path: str) -> None:
    """Write ``(cycle, src, dst)`` records as a CSV trace file."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["cycle", "src", "dst"])
        for cycle, src, dst in sorted(records):
            writer.writerow([cycle, src, dst])


def trace_traffic_from_file(topo: Topology, path: str) -> TraceTraffic:
    """Build a replayable traffic pattern from a trace file."""
    return TraceTraffic(topo, load_trace(path))


def synthesize_trace(pattern: TrafficPattern,
                     cycles: int) -> List[TraceRecord]:
    """Freeze ``cycles`` worth of a live pattern into trace records."""
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    records: List[TraceRecord] = []
    for cycle in range(cycles):
        for src, dst in pattern.packets_at(cycle):
            records.append((cycle, src, dst))
    return records
