"""Flit-level, cycle-accurate interconnection network simulator.

The performance half of Orion: topologies, routing, traffic, flow
control, router microarchitectures and the cycle engine whose events
drive the power models.
"""

from repro.sim.engine import (
    DeadlockError,
    Simulation,
    SimulationResult,
    SimulationTimeout,
)
from repro.sim.message import Flit, FlitType, Packet
from repro.sim.network import Network
from repro.sim.routing import dimension_ordered_route, route_hops, route_nodes
from repro.sim.stats import (
    LatencyStats,
    is_saturated,
    saturation_rate,
    zero_load_latency_estimate,
)
from repro.sim.topology import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    Mesh,
    Torus,
    topology_for,
)
from repro.sim.traffic import (
    TRAFFIC_REGISTRY,
    BitComplementTraffic,
    BroadcastTraffic,
    BurstyTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    TraceTraffic,
    TrafficKind,
    TrafficParam,
    TrafficPattern,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic,
    traffic_names,
    validate_traffic_params,
)

__all__ = [
    "DeadlockError",
    "Simulation",
    "SimulationResult",
    "SimulationTimeout",
    "Flit",
    "FlitType",
    "Packet",
    "Network",
    "dimension_ordered_route",
    "route_hops",
    "route_nodes",
    "LatencyStats",
    "is_saturated",
    "saturation_rate",
    "zero_load_latency_estimate",
    "NORTH", "SOUTH", "EAST", "WEST", "LOCAL",
    "Mesh",
    "Torus",
    "topology_for",
    "TRAFFIC_REGISTRY",
    "TrafficKind",
    "TrafficParam",
    "make_traffic",
    "traffic_names",
    "validate_traffic_params",
    "TrafficPattern",
    "UniformRandomTraffic",
    "BroadcastTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "HotspotTraffic",
    "BurstyTraffic",
    "ShuffleTraffic",
    "TornadoTraffic",
    "NearestNeighborTraffic",
    "TraceTraffic",
]
