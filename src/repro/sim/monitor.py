"""Network occupancy/utilization monitoring.

An optional observer that accumulates:

* per-channel utilization (fraction of cycles a flit was in flight) —
  the load map behind saturation behaviour;
* per-router buffer occupancy (average and peak flits buffered);
* per-node ejection counts (accepted traffic distribution).

Utilization and ejection ride the network's maintained counters (each
channel counts its sends, the network counts per-node ejections), so
:meth:`NetworkMonitor.sample` never scans the channel list: a flit sent
during cycle *t* is exactly the flit a post-step busy scan would
observe after cycle *t* (single-cycle channels drain unconditionally at
*t*+1), so send-count deltas reproduce the per-cycle scan bit for bit.
Occupancy sampling reads the routers' O(1) maintained ``_buffered``
counters; under the sparse kernel only the active set is visited —
retired routers hold zero flits (an audited invariant).

Monitoring is opt-in (``Simulation(..., monitor=True)``).  The engine
calls :meth:`NetworkMonitor.begin` at the end of warm-up to baseline
the counters, then :meth:`NetworkMonitor.sample` once per measured
cycle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.network import Network
from repro.sim.topology import PORT_NAMES


class NetworkMonitor:
    """Accumulates occupancy/utilization statistics for one network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._channels: List = []
        for router in network.routers:
            for channel in router.out_channels:
                if channel is not None:
                    self._channels.append(channel)
        self.cycles = 0
        n = len(network.routers)
        self._occupancy_sum = [0] * n
        self._occupancy_peak = [0] * n
        self._sparse = network.kernel == "sparse"
        self.begin()

    def begin(self) -> None:
        """Baseline the maintained counters (the engine calls this at
        the end of warm-up, so deltas cover measured cycles only)."""
        self._sent_baseline = [ch.flits_sent for ch in self._channels]
        self._ejected_baseline = list(self.network.node_flits_ejected)

    def sample(self) -> None:
        """Record one cycle's occupancy (call once per measured cycle).

        Channel utilization and ejections need no per-cycle work — the
        network maintains those counters as the events happen."""
        self.cycles += 1
        occupancy_sum = self._occupancy_sum
        occupancy_peak = self._occupancy_peak
        if self._sparse:
            routers = self.network.routers
            for node in self.network._active:
                buffered = routers[node]._buffered
                occupancy_sum[node] += buffered
                if buffered > occupancy_peak[node]:
                    occupancy_peak[node] = buffered
            return
        for node, router in enumerate(self.network.routers):
            buffered = router._buffered
            occupancy_sum[node] += buffered
            if buffered > occupancy_peak[node]:
                occupancy_peak[node] = buffered

    # --- queries ---------------------------------------------------------------

    def channel_utilization(self) -> Dict[Tuple[int, int], float]:
        """``(src_node, out_port) -> busy fraction`` for every channel."""
        if self.cycles == 0:
            raise ValueError("no cycles sampled yet")
        return {
            (ch.src_node, ch.src_port):
                (ch.flits_sent - base) / self.cycles
            for ch, base in zip(self._channels, self._sent_baseline)
        }

    def max_channel_utilization(self) -> float:
        """Utilization of the most loaded channel (the bottleneck)."""
        return max(self.channel_utilization().values())

    def mean_channel_utilization(self) -> float:
        """Average utilization across all channels."""
        utils = self.channel_utilization()
        return sum(utils.values()) / len(utils)

    def average_occupancy(self, node: int) -> float:
        """Mean flits buffered at one router."""
        if self.cycles == 0:
            raise ValueError("no cycles sampled yet")
        return self._occupancy_sum[node] / self.cycles

    def peak_occupancy(self, node: int) -> int:
        """Most flits ever buffered at one router."""
        return self._occupancy_peak[node]

    def ejection_counts(self) -> List[int]:
        """Flits ejected per node since :meth:`begin` — the accepted
        traffic distribution."""
        return [count - base for count, base
                in zip(self.network.node_flits_ejected,
                       self._ejected_baseline)]

    def hottest_channels(self, count: int = 5) -> List[Tuple[str, float]]:
        """The ``count`` most utilized channels, labelled for humans."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        utils = self.channel_utilization()
        ranked = sorted(utils.items(), key=lambda kv: -kv[1])[:count]
        out = []
        for (node, port), util in ranked:
            x, y = self.network.topo.coords(node)
            out.append((f"({x},{y}) {PORT_NAMES[port]}", util))
        return out

    def report(self) -> str:
        """Human-readable utilization/occupancy summary."""
        lines = [
            f"cycles sampled: {self.cycles}",
            f"channel utilization: mean "
            f"{self.mean_channel_utilization():.3f}, max "
            f"{self.max_channel_utilization():.3f}",
            "hottest channels:",
        ]
        for label, util in self.hottest_channels():
            lines.append(f"  {label:<16} {util:.3f}")
        occupancies = [self.average_occupancy(n)
                       for n in range(len(self.network.routers))]
        peaks = [self.peak_occupancy(n)
                 for n in range(len(self.network.routers))]
        ejected = self.ejection_counts()
        lines.append(
            f"buffer occupancy: avg {sum(occupancies) / len(occupancies):.2f} "
            f"flits/router, peak {max(peaks)} flits"
        )
        lines.append(f"flits ejected: {sum(ejected)} "
                     f"(max {max(ejected)} at one node)")
        return "\n".join(lines)
