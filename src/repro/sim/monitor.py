"""Network occupancy/utilization monitoring.

An optional observer that samples the network once per cycle and
accumulates:

* per-channel utilization (fraction of cycles a flit was in flight) —
  the load map behind saturation behaviour;
* per-router buffer occupancy (average and peak flits buffered);
* per-node ejection counts (accepted traffic distribution).

Monitoring is opt-in (``Simulation(..., monitor=True)``) since sampling
touches every channel every cycle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.network import Network
from repro.sim.topology import PORT_NAMES


class NetworkMonitor:
    """Accumulates per-cycle occupancy statistics for one network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._channels: List = []
        for router in network.routers:
            for channel in router.out_channels:
                if channel is not None:
                    self._channels.append(channel)
        self.cycles = 0
        self._channel_busy = [0] * len(self._channels)
        n = len(network.routers)
        self._occupancy_sum = [0] * n
        self._occupancy_peak = [0] * n
        self._ejected_before = [0] * n

    def sample(self) -> None:
        """Record one cycle's state (call once per simulated cycle)."""
        self.cycles += 1
        for i, channel in enumerate(self._channels):
            if channel.busy:
                self._channel_busy[i] += 1
        for node, router in enumerate(self.network.routers):
            buffered = router.buffered_flits()
            self._occupancy_sum[node] += buffered
            if buffered > self._occupancy_peak[node]:
                self._occupancy_peak[node] = buffered

    # --- queries ---------------------------------------------------------------

    def channel_utilization(self) -> Dict[Tuple[int, int], float]:
        """``(src_node, out_port) -> busy fraction`` for every channel."""
        if self.cycles == 0:
            raise ValueError("no cycles sampled yet")
        return {
            (ch.src_node, ch.src_port): busy / self.cycles
            for ch, busy in zip(self._channels, self._channel_busy)
        }

    def max_channel_utilization(self) -> float:
        """Utilization of the most loaded channel (the bottleneck)."""
        return max(self.channel_utilization().values())

    def mean_channel_utilization(self) -> float:
        """Average utilization across all channels."""
        utils = self.channel_utilization()
        return sum(utils.values()) / len(utils)

    def average_occupancy(self, node: int) -> float:
        """Mean flits buffered at one router."""
        if self.cycles == 0:
            raise ValueError("no cycles sampled yet")
        return self._occupancy_sum[node] / self.cycles

    def peak_occupancy(self, node: int) -> int:
        """Most flits ever buffered at one router."""
        return self._occupancy_peak[node]

    def hottest_channels(self, count: int = 5) -> List[Tuple[str, float]]:
        """The ``count`` most utilized channels, labelled for humans."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        utils = self.channel_utilization()
        ranked = sorted(utils.items(), key=lambda kv: -kv[1])[:count]
        out = []
        for (node, port), util in ranked:
            x, y = self.network.topo.coords(node)
            out.append((f"({x},{y}) {PORT_NAMES[port]}", util))
        return out

    def report(self) -> str:
        """Human-readable utilization/occupancy summary."""
        lines = [
            f"cycles sampled: {self.cycles}",
            f"channel utilization: mean "
            f"{self.mean_channel_utilization():.3f}, max "
            f"{self.max_channel_utilization():.3f}",
            "hottest channels:",
        ]
        for label, util in self.hottest_channels():
            lines.append(f"  {label:<16} {util:.3f}")
        occupancies = [self.average_occupancy(n)
                       for n in range(len(self.network.routers))]
        peaks = [self.peak_occupancy(n)
                 for n in range(len(self.network.routers))]
        lines.append(
            f"buffer occupancy: avg {sum(occupancies) / len(occupancies):.2f} "
            f"flits/router, peak {max(peaks)} flits"
        )
        return "\n".join(lines)
