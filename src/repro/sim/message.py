"""Packets and flits — the units of network transfer.

A packet is segmented into flits (flow-control units): one head flit
carrying the route, zero or more body flits, and a tail flit that releases
resources.  The paper's experiments use 5-flit packets ("a head flit
leading 4 data flits").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class FlitType(enum.IntEnum):
    """Role of a flit within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    #: Single-flit packet: plays head and tail at once.
    HEAD_TAIL = 3

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


@dataclass(slots=True)
class Packet:
    """One network packet.

    ``route`` is the source-computed list of output-port indices, one per
    router visited (ending with the destination's ejection port), per the
    paper's source dimension-ordered routing.
    """

    packet_id: int
    src: int
    dst: int
    length_flits: int
    creation_cycle: int
    route: List[int] = field(default_factory=list)
    #: Set when the tail flit is ejected at the destination.
    eject_cycle: Optional[int] = None
    #: True when this packet counts toward the measured sample.
    in_sample: bool = False
    #: True when fault handling discarded this packet (its remaining
    #: flits stream to the local ejector and are counted as dropped,
    #: not delivered).
    dropped: bool = False

    @property
    def latency(self) -> int:
        """Creation-to-last-flit-ejection latency (paper's definition,
        including source queuing)."""
        if self.eject_cycle is None:
            raise ValueError(f"packet {self.packet_id} not yet ejected")
        return self.eject_cycle - self.creation_cycle

    def make_flits(self, payloads: Optional[List[int]] = None) -> List["Flit"]:
        """Segment this packet into its flit sequence."""
        if self.length_flits < 1:
            raise ValueError(f"packet length must be >= 1, got {self.length_flits}")
        if payloads is not None and len(payloads) != self.length_flits:
            raise ValueError(
                f"got {len(payloads)} payloads for {self.length_flits} flits"
            )
        flits = []
        for i in range(self.length_flits):
            if self.length_flits == 1:
                ftype = FlitType.HEAD_TAIL
            elif i == 0:
                ftype = FlitType.HEAD
            elif i == self.length_flits - 1:
                ftype = FlitType.TAIL
            else:
                ftype = FlitType.BODY
            flits.append(Flit(
                packet=self,
                seq=i,
                ftype=ftype,
                payload=payloads[i] if payloads is not None else None,
            ))
        return flits


@dataclass(slots=True)
class Flit:
    """One flow-control unit.

    ``route_idx`` tracks the head flit's progress along the packet route
    (which hop's output port to use next); body/tail flits follow the
    connection their head established and never consult the route.
    ``payload`` carries the data bits when payload-level switching-activity
    tracking is enabled, else ``None``.
    """

    packet: Packet
    seq: int
    ftype: FlitType
    payload: Optional[int] = None
    route_idx: int = 0
    #: Virtual channel this flit occupies on its current input buffer,
    #: assigned by the upstream router (or at injection).
    vc: int = 0
    #: Cycle the flit entered its current input buffer.  Pipeline stages
    #: only consider flits that arrived in an earlier cycle, so each
    #: stage costs one full cycle.
    arrived_cycle: int = -1
    #: Dateline bookkeeping for torus deadlock avoidance (head flits
    #: only): whether the packet crossed a wraparound edge in the
    #: dimension it is currently traversing, and that dimension
    #: ("y"/"x"/None).
    crossed_dateline: bool = False
    travel_dim: Optional[str] = None
    #: Derived flags, filled by ``__post_init__`` (fields so the class
    #: can carry ``__slots__``).
    is_head: bool = field(init=False)
    is_tail: bool = field(init=False)

    def __post_init__(self) -> None:
        # Plain attributes, not properties: these are read on every hop
        # of every flit, and a dataclass-field/property pair would cost
        # two attribute lookups plus a call in the simulator's hottest
        # loops.
        self.is_head = self.ftype in (FlitType.HEAD, FlitType.HEAD_TAIL)
        self.is_tail = self.ftype in (FlitType.TAIL, FlitType.HEAD_TAIL)

    def next_output_port(self) -> int:
        """The output port this head flit takes at the current router."""
        route = self.packet.route
        if self.route_idx >= len(route):
            raise IndexError(
                f"packet {self.packet.packet_id} flit {self.seq}: route "
                f"exhausted at index {self.route_idx} (route {route})"
            )
        return route[self.route_idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flit(pkt={self.packet.packet_id}, seq={self.seq}, "
            f"{self.ftype.name}, hop={self.route_idx})"
        )
