"""Functional arbiters — the decision logic the power models are hooked to.

Each arbiter picks one winner among requesters.  The policies mirror the
power-model variants of :mod:`repro.power.arbiter`:

* :class:`MatrixArbiter` — least-recently-served via an explicit pairwise
  priority matrix (the hardware the matrix arbiter power model describes);
* :class:`RoundRobinArbiter` — rotating pointer;
* :class:`QueuingArbiter` — strict FCFS on request arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence


class Arbiter:
    """Base arbiter over ``size`` requester slots."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        #: The stamp list when this arbiter is a :class:`FastMatrixArbiter`
        #: (whose ``grant_single`` is one list store plus a counter bump),
        #: else ``None``.  Hot sparse-kernel call sites test this to
        #: inline the uncontended grant instead of paying a method call:
        #: ``st[v] = arb._next; arb._next += 1`` is exactly
        #: ``grant_single(v)`` minus the bounds check (indices at those
        #: sites are structurally in range).
        self._fstamp: Optional[list] = None

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        """Pick a winner among ``requests`` (requester indices).

        Returns ``None`` when there are no requests.  Updates internal
        priority state when a grant is issued.
        """
        raise NotImplementedError

    def grant_single(self, request: int) -> int:
        """Fast path for the uncontended case: exactly equivalent to
        ``grant([request])`` — same winner, same priority-state update —
        without building the candidate machinery.  The sparse kernel's
        hot loops call this when only one requester is active."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore construction-time priority state in place.

        Part of the simulation-context reuse contract
        (:meth:`repro.sim.network.Network.reset`): after ``reset()`` the
        arbiter must be grant-for-grant indistinguishable from a freshly
        constructed instance, without reallocating any state that hot
        call sites may have cached (notably ``_fstamp``).
        """
        raise NotImplementedError

    def _check(self, requests: Sequence[int]) -> None:
        for r in requests:
            if not 0 <= r < self.size:
                raise ValueError(
                    f"requester {r} outside 0..{self.size - 1}"
                )


class MatrixArbiter(Arbiter):
    """Least-recently-served arbiter with a pairwise priority matrix.

    ``self._pri[i][j]`` is True when requester ``i`` beats ``j``.  After a
    grant, the winner loses priority against everyone (its row clears, its
    column sets) — exactly the update whose flip-flop energy the matrix
    arbiter power model charges.
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._pri = [[i < j for j in range(size)] for i in range(size)]

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        active = set(requests)
        winner = None
        for i in active:
            if all(self._pri[i][j] for j in active if j != i):
                winner = i
                break
        if winner is None:
            # The priority matrix is a total order among any subset, so a
            # maximum always exists; this is unreachable but kept defensive.
            winner = min(active)
        for j in range(self.size):
            if j != winner:
                self._pri[winner][j] = False
                self._pri[j][winner] = True
        return winner

    def grant_single(self, request: int) -> int:
        if not 0 <= request < self.size:
            raise ValueError(
                f"requester {request} outside 0..{self.size - 1}"
            )
        pri = self._pri
        row = pri[request]
        for j in range(self.size):
            if j != request:
                row[j] = False
                pri[j][request] = True
        return request

    def reset(self) -> None:
        for i, row in enumerate(self._pri):
            for j in range(self.size):
                row[j] = i < j


class FastMatrixArbiter(Arbiter):
    """Drop-in replacement for :class:`MatrixArbiter` with O(1) grants.

    The priority matrix is a total order at reset (``i`` beats ``j`` iff
    ``i < j``) and every grant moves only the winner — to the bottom,
    against everyone.  The relation therefore stays a total order whose
    rank is "least recently granted first, never-granted by index", so
    it can be carried as one integer per requester: never-granted slot
    ``i`` holds ``i``, and each grant restamps the winner with the next
    value of a monotonic counter.  The winner among any request set is
    the minimum stamp — identical, grant for grant, to the matrix scan
    (the equivalence is pinned by tests/test_kernel_equivalence.py).

    Used by the sparse kernel, where matrix updates would otherwise be
    the hottest arbiter cost; the explicit-matrix class remains the
    reference (and the hardware the power model describes).
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._stamp = list(range(size))
        self._next = size
        self._fstamp = self._stamp

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        stamp = self._stamp
        winner = min(requests, key=stamp.__getitem__)
        stamp[winner] = self._next
        self._next += 1
        return winner

    def grant_single(self, request: int) -> int:
        if not 0 <= request < self.size:
            raise ValueError(
                f"requester {request} outside 0..{self.size - 1}"
            )
        self._stamp[request] = self._next
        self._next += 1
        return request

    def reset(self) -> None:
        # In place: router hot loops alias this list through ``_fstamp``.
        self._stamp[:] = range(self.size)
        self._next = self.size


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: the pointer moves past each winner."""

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._pointer = 0

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        active = set(requests)
        for offset in range(self.size):
            candidate = (self._pointer + offset) % self.size
            if candidate in active:
                self._pointer = (candidate + 1) % self.size
                return candidate
        return None  # pragma: no cover - active is non-empty

    def grant_single(self, request: int) -> int:
        if not 0 <= request < self.size:
            raise ValueError(
                f"requester {request} outside 0..{self.size - 1}"
            )
        self._pointer = (request + 1) % self.size
        return request

    def reset(self) -> None:
        self._pointer = 0


class QueuingArbiter(Arbiter):
    """First-come-first-served arbiter.

    Requesters join a queue the first round they request; grants pop the
    oldest requester that is still requesting.
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._queue: Deque[int] = deque()
        self._queued = set()

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        active = set(requests)
        for r in requests:
            if r not in self._queued:
                self._queue.append(r)
                self._queued.add(r)
        # Drop queued requesters that withdrew.
        while self._queue and self._queue[0] not in active:
            stale = self._queue.popleft()
            self._queued.discard(stale)
        if not self._queue:
            return None
        winner = self._queue.popleft()
        self._queued.discard(winner)
        return winner

    def grant_single(self, request: int) -> int:
        if not 0 <= request < self.size:
            raise ValueError(
                f"requester {request} outside 0..{self.size - 1}"
            )
        if request not in self._queued:
            self._queue.append(request)
            self._queued.add(request)
        # Queued requesters ahead of this one have withdrawn (they are
        # not requesting this round) — drop them, exactly as grant()
        # does with a one-element active set.
        while self._queue[0] != request:
            stale = self._queue.popleft()
            self._queued.discard(stale)
        self._queue.popleft()
        self._queued.discard(request)
        return request

    def reset(self) -> None:
        self._queue.clear()
        self._queued.clear()


ARBITER_KINDS = {
    "matrix": MatrixArbiter,
    "round_robin": RoundRobinArbiter,
    "queuing": QueuingArbiter,
}

#: Behaviourally-identical fast implementations picked by the sparse
#: kernel (only the matrix arbiter has a cheaper equivalent form).
FAST_ARBITER_KINDS = {
    "matrix": FastMatrixArbiter,
    "round_robin": RoundRobinArbiter,
    "queuing": QueuingArbiter,
}


def make_arbiter(kind: str, size: int, fast: bool = False) -> Arbiter:
    """Instantiate an arbiter by policy name.

    ``fast=True`` (the sparse kernel) selects the grant-for-grant
    equivalent implementation optimised for per-grant cost."""
    kinds = FAST_ARBITER_KINDS if fast else ARBITER_KINDS
    try:
        cls = kinds[kind]
    except KeyError:
        raise ValueError(
            f"unknown arbiter kind {kind!r}; options: {sorted(ARBITER_KINDS)}"
        ) from None
    return cls(size)
