"""Functional arbiters — the decision logic the power models are hooked to.

Each arbiter picks one winner among requesters.  The policies mirror the
power-model variants of :mod:`repro.power.arbiter`:

* :class:`MatrixArbiter` — least-recently-served via an explicit pairwise
  priority matrix (the hardware the matrix arbiter power model describes);
* :class:`RoundRobinArbiter` — rotating pointer;
* :class:`QueuingArbiter` — strict FCFS on request arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence


class Arbiter:
    """Base arbiter over ``size`` requester slots."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        """Pick a winner among ``requests`` (requester indices).

        Returns ``None`` when there are no requests.  Updates internal
        priority state when a grant is issued.
        """
        raise NotImplementedError

    def _check(self, requests: Sequence[int]) -> None:
        for r in requests:
            if not 0 <= r < self.size:
                raise ValueError(
                    f"requester {r} outside 0..{self.size - 1}"
                )


class MatrixArbiter(Arbiter):
    """Least-recently-served arbiter with a pairwise priority matrix.

    ``self._pri[i][j]`` is True when requester ``i`` beats ``j``.  After a
    grant, the winner loses priority against everyone (its row clears, its
    column sets) — exactly the update whose flip-flop energy the matrix
    arbiter power model charges.
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._pri = [[i < j for j in range(size)] for i in range(size)]

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        active = set(requests)
        winner = None
        for i in active:
            if all(self._pri[i][j] for j in active if j != i):
                winner = i
                break
        if winner is None:
            # The priority matrix is a total order among any subset, so a
            # maximum always exists; this is unreachable but kept defensive.
            winner = min(active)
        for j in range(self.size):
            if j != winner:
                self._pri[winner][j] = False
                self._pri[j][winner] = True
        return winner


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: the pointer moves past each winner."""

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._pointer = 0

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        if not requests:
            return None
        active = set(requests)
        for offset in range(self.size):
            candidate = (self._pointer + offset) % self.size
            if candidate in active:
                self._pointer = (candidate + 1) % self.size
                return candidate
        return None  # pragma: no cover - active is non-empty


class QueuingArbiter(Arbiter):
    """First-come-first-served arbiter.

    Requesters join a queue the first round they request; grants pop the
    oldest requester that is still requesting.
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._queue: Deque[int] = deque()
        self._queued = set()

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        self._check(requests)
        active = set(requests)
        for r in requests:
            if r not in self._queued:
                self._queue.append(r)
                self._queued.add(r)
        # Drop queued requesters that withdrew.
        while self._queue and self._queue[0] not in active:
            stale = self._queue.popleft()
            self._queued.discard(stale)
        if not self._queue:
            return None
        winner = self._queue.popleft()
        self._queued.discard(winner)
        return winner


ARBITER_KINDS = {
    "matrix": MatrixArbiter,
    "round_robin": RoundRobinArbiter,
    "queuing": QueuingArbiter,
}


def make_arbiter(kind: str, size: int) -> Arbiter:
    """Instantiate an arbiter by policy name."""
    try:
        cls = ARBITER_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown arbiter kind {kind!r}; options: {sorted(ARBITER_KINDS)}"
        ) from None
    return cls(size)
