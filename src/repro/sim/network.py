"""Network assembly: routers, channels, sources and sinks.

Builds the paper's experimental fabric (section 4.1): a grid of routers
with five bidirectional ports each, single-cycle data and credit channels,
credit-based flow control, unbounded source queues at the injection ports
(source queuing counts toward latency) and immediate ejection at the
LOCAL ports.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.core.config import KERNELS, NetworkConfig
from repro.core.power_binding import NullBinding
from repro.faults import STUCK_VC, FaultEvent
from repro.sim.message import Flit, Packet
from repro.sim.routers import ROUTER_CLASSES, Channel
from repro.sim.routing import dimension_ordered_route
from repro.sim.topology import LOCAL, OPPOSITE, Mesh, Torus


class _Ejector:
    """Per-node ejection sink.

    A module-level class rather than a closure so networks (and
    therefore monitor-bearing simulation results) pickle across process
    pools.
    """

    def __init__(self, network: "Network", node: int) -> None:
        self.network = network
        self.node = node

    def __call__(self, flit: Flit) -> None:
        network = self.network
        if flit.packet.dropped:
            # Fault handling rerouted this packet into the local ejector:
            # its flits leave the network as drops, not deliveries.
            network.flits_dropped += 1
            network.node_flits_dropped[self.node] += 1
            if flit.is_tail:
                network.packets_dropped += 1
                if network.on_packet_dropped is not None:
                    network.on_packet_dropped(flit.packet)
            return
        network.flits_ejected += 1
        network.node_flits_ejected[self.node] += 1
        if flit.packet.dst != self.node:
            raise RuntimeError(
                f"flit of packet {flit.packet.packet_id} ejected at "
                f"node {self.node}, destination is {flit.packet.dst}"
            )
        if flit.is_tail:
            packet = flit.packet
            packet.eject_cycle = network.cycle
            network.packets_delivered += 1
            if network.on_packet_delivered is not None:
                network.on_packet_delivered(packet)


class Network:
    """A simulatable interconnection network instance."""

    def __init__(self, config: NetworkConfig, binding=None,
                 payload_seed: int = 7, kernel: str = "dense") -> None:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; options: {KERNELS}"
            )
        self.config = config
        self.kernel = kernel
        self.binding = binding if binding is not None else NullBinding()
        if config.topology == "torus":
            self.topo = Torus(config.width, config.height)
        else:
            self.topo = Mesh(config.width, config.height)
        router_cls = ROUTER_CLASSES[config.router.kind]
        self.routers = [
            router_cls(node, config, self.binding,
                       sparse=(kernel == "sparse"))
            for node in range(self.topo.num_nodes)
        ]
        #: Sparse kernel: routers that may do work next cycle.  Routers
        #: enrol via channel notifiers / injection and retire once their
        #: buffers and pending channel work drain.
        self._active: set = set()
        #: Nodes whose source queue may be non-empty (superset).
        self._pending_src: set = set()
        #: Flits sitting in source queues, maintained O(1).
        self._awaiting = 0
        self._wire()
        self.source_queues: List[Deque[Flit]] = [
            deque() for _ in range(self.topo.num_nodes)
        ]
        self.cycle = 0
        self._packet_counter = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        #: Per-node injection/ejection counters (telemetry and monitor
        #: read these; sums shadow the scalars above — see audit()).
        self.node_flits_injected: List[int] = [0] * self.topo.num_nodes
        self.node_flits_ejected: List[int] = [0] * self.topo.num_nodes
        self.packets_created = 0
        self.packets_delivered = 0
        # Fault bookkeeping (all zero on a healthy fabric).
        self.flits_dropped = 0
        self.packets_dropped = 0
        self.packets_misrouted = 0
        self.node_flits_dropped: List[int] = [0] * self.topo.num_nodes
        self.node_packets_misrouted: List[int] = [0] * self.topo.num_nodes
        #: Packet policy when a routed output port is faulted; set from
        #: the FaultSpec by the engine.  See BaseRouter._fault_redirect.
        self.fault_policy = "misroute"
        #: Currently-dead directed links as (node, out_port) pairs —
        #: detour planning avoids known-dead links downstream.
        self.faulted_links: set = set()
        #: Installed by the engine: called with each completed packet.
        self.on_packet_delivered: Optional[Callable[[Packet], None]] = None
        #: Installed by the engine: called with each dropped packet.
        self.on_packet_dropped: Optional[Callable[[Packet], None]] = None
        self._payload_rng = random.Random(payload_seed)
        self._track_payloads = config.activity_mode == "data"

    # --- construction -----------------------------------------------------------

    def _wire(self) -> None:
        """Create data+credit channels and initialise credit counters."""
        rc = self.config.router
        sparse = self.kernel == "sparse"
        for src, out_port, dst in self.topo.channels():
            in_port = OPPOSITE[out_port]
            channel = Channel(src, out_port, dst, in_port)
            self.routers[src].connect_out(out_port, channel)
            self.routers[dst].connect_in(in_port, channel)
            self.routers[src].set_downstream_depth(
                out_port, rc.buffer_depth, rc.num_vcs)
            if sparse:
                channel.active_set = self._active
                channel.flit_router = self.routers[dst]
                channel.flit_bit = 1 << in_port
                channel.credit_router = self.routers[src]
                channel.credit_bit = 1 << out_port
        for router in self.routers:
            router.eject = _Ejector(self, router.node)
            router.network = self
            # VC routers need the topology for dateline tracking.
            if hasattr(router, "topo"):
                router.topo = self.topo

    # --- simulation-context reuse ------------------------------------------------

    def reset(self, payload_seed: int = 7) -> None:
        """Restore the network to its just-constructed state in place.

        Construction of a network — wiring, router/arbiter allocation,
        technology and power-model precomputation — dominates short-run
        cost, so warm worker processes reuse one constructed graph across
        grid points.  ``reset()`` clears every piece of dynamic state
        (buffers, channels, credits, arbiter priorities, counters, fault
        state, payload RNG) while keeping all wiring and cached
        references intact; after it, a run is bit-identical to one on a
        freshly constructed network (pinned by tests/test_pool.py).
        """
        for router in self.routers:
            router.reset()
            for channel in router.out_channels:
                if channel is not None:
                    channel.reset()
        self._active.clear()
        self._pending_src.clear()
        self._awaiting = 0
        for queue in self.source_queues:
            queue.clear()
        self.cycle = 0
        self._packet_counter = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        n = self.topo.num_nodes
        self.node_flits_injected[:] = [0] * n
        self.node_flits_ejected[:] = [0] * n
        self.packets_created = 0
        self.packets_delivered = 0
        self.flits_dropped = 0
        self.packets_dropped = 0
        self.packets_misrouted = 0
        self.node_flits_dropped[:] = [0] * n
        self.node_packets_misrouted[:] = [0] * n
        self.fault_policy = "misroute"
        self.faulted_links.clear()
        self.on_packet_delivered = None
        self.on_packet_dropped = None
        self._payload_rng = random.Random(payload_seed)
        self.binding.reset_run()

    # --- packet creation -----------------------------------------------------------

    def create_packet(self, src: int, dst: int, cycle: int,
                      in_sample: bool = False) -> Packet:
        """Create a packet, segment it and queue its flits at the source."""
        route = dimension_ordered_route(self.topo, src, dst,
                                        tie_break=self.config.tie_break)
        packet = Packet(
            packet_id=self._packet_counter,
            src=src,
            dst=dst,
            length_flits=self.config.packet_length_flits,
            creation_cycle=cycle,
            route=route,
            in_sample=in_sample,
        )
        self._packet_counter += 1
        self.packets_created += 1
        payloads = None
        if self._track_payloads:
            bits = self.config.router.flit_bits
            payloads = [self._payload_rng.getrandbits(bits)
                        for _ in range(packet.length_flits)]
        self.source_queues[src].extend(packet.make_flits(payloads))
        self._awaiting += packet.length_flits
        self._pending_src.add(src)
        return packet

    # --- simulation step ---------------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns the number of flits that moved
        (traversals plus injections — the deadlock watchdog's signal)."""
        if self.kernel == "sparse":
            return self._step_sparse()
        cycle = self.cycle
        for router in self.routers:
            router.moved_flits = 0
        for router in self.routers:
            router.arrival_phase(cycle)
        for router in self.routers:
            router.traversal_phase(cycle)
        for router in self.routers:
            router.allocation_phase(cycle)
        moved = self._injection_phase(cycle)
        moved += sum(r.moved_flits for r in self.routers)
        self.cycle = cycle + 1
        return moved

    def _step_sparse(self) -> int:
        """Event-sparse cycle: run the three phases only over the active
        set, in ascending node order (matching the dense scan — inactive
        routers have no work, so the event sequence is identical).

        Routers enrol through channel notifiers (a neighbour sent a flit
        or returned a credit) and through injection; they retire once
        their buffers and pending channel work are drained.  A retired
        router is skipped entirely until something arrives for it again.
        """
        cycle = self.cycle
        routers = self.routers
        active = sorted(self._active)
        for node in active:
            router = routers[node]
            router.moved_flits = 0
            router.arrival_phase(cycle)
        # Traversal and allocation share one pass: neither phase reads
        # any state another router's other phase writes within a cycle
        # (traversal output lands on channels drained at next cycle's
        # arrival; allocation reads only router-local state; energy
        # deposits are keyed by the depositing node), so per-router
        # traverse-then-allocate observes exactly what the dense
        # all-traversals-then-all-allocations order does.  Routers that
        # merely drained credits this cycle skip both stages.
        for node in active:
            router = routers[node]
            if router._buffered:
                router.work_phase(cycle)
        moved = self._injection_phase(cycle)
        for node in active:
            router = routers[node]
            moved += router.moved_flits
            if not (router._buffered or router._pending_in
                    or router._pending_credit):
                self._active.discard(node)
        self.cycle = cycle + 1
        return moved

    def _injection_phase(self, cycle: int) -> int:
        """Move at most one flit per node from its source queue into the
        router's injection port (one-flit-per-cycle injection channel)."""
        injected = 0
        if self.kernel == "sparse":
            for node in sorted(self._pending_src):
                queue = self.source_queues[node]
                if not queue:
                    self._pending_src.discard(node)
                    continue
                router = self.routers[node]
                # Sleeping routers never ran arrival this cycle, so
                # refresh the clock before the flit is timestamped.
                router.now = cycle
                if router.inject_flit(queue[0]):
                    queue.popleft()
                    self.flits_injected += 1
                    self.node_flits_injected[node] += 1
                    self._awaiting -= 1
                    injected += 1
                    self._active.add(node)
                    if not queue:
                        self._pending_src.discard(node)
            return injected
        for node, queue in enumerate(self.source_queues):
            if not queue:
                continue
            if self.routers[node].inject_flit(queue[0]):
                queue.popleft()
                self.flits_injected += 1
                self.node_flits_injected[node] += 1
                self._awaiting -= 1
                injected += 1
        return injected

    # --- fault application ---------------------------------------------------------------

    def apply_fault(self, event: FaultEvent) -> bool:
        """Apply one fault event to the live network (between cycles).

        The single mutation point both kernels share: the engine drives
        due events through here, so a fault timeline perturbs dense and
        sparse runs identically.  Returns ``False`` when the event
        cannot apply *yet* (a ``vc_stuck`` on a currently-owned output
        VC — wedging it mid-packet would corrupt the connection) and
        should be retried next cycle.  Raises :class:`ValueError` for
        events naming nonexistent hardware.

        Link faults have graceful semantics: established connections and
        already-allocated VCs finish streaming over the dying wire; only
        *new* allocations are refused and redirected.
        """
        kind = event.kind
        router = self.routers[event.node]
        if kind == "link_kill" or kind == "link_restore":
            if not (0 <= event.port < router.PORTS) \
                    or router.out_channels[event.port] is None:
                raise ValueError(
                    f"fault {event.describe()}: node {event.node} has no "
                    f"outgoing link on port {event.port}"
                )
            if kind == "link_kill":
                router._faulted_out |= 1 << event.port
                self.faulted_links.add((event.node, event.port))
            else:
                router._faulted_out &= ~(1 << event.port)
                self.faulted_links.discard((event.node, event.port))
            return True
        if kind == "router_freeze":
            router.freeze()
            return True
        if kind == "router_thaw":
            router.thaw()
            if self.kernel == "sparse":
                # Re-enrol so buffered work accumulated while frozen
                # resumes; harmless when there is none (the router
                # retires again after one scan).
                self._active.add(event.node)
            return True
        if kind == "vc_stuck":
            owners = getattr(router, "out_vc_owner", None)
            if owners is None:
                raise ValueError(
                    f"fault {event.describe()}: vc_stuck needs a VC "
                    f"router, got {self.config.router.kind!r}"
                )
            if not (0 <= event.port < router.PORTS) \
                    or not (0 <= event.vc < router.num_vcs):
                raise ValueError(
                    f"fault {event.describe()}: no such output VC"
                )
            if owners[event.port][event.vc] is not None:
                return False
            owners[event.port][event.vc] = STUCK_VC
            return True
        raise ValueError(f"unknown fault kind {kind!r}")

    # --- accounting ------------------------------------------------------------------------

    @property
    def flits_in_flight(self) -> int:
        """Flits injected into routers but not yet ejected or dropped."""
        return self.flits_injected - self.flits_ejected - self.flits_dropped

    @property
    def flits_awaiting_injection(self) -> int:
        """Flits sitting in source queues — an O(1) maintained counter
        (cross-checked against the queues by :meth:`audit`)."""
        return self._awaiting

    def links_per_node(self) -> List[int]:
        """Outgoing inter-router link count per node (for constant-power
        link accounting)."""
        return [router.out_degree for router in self.routers]

    def audit(self) -> None:
        """Flit-conservation check: every injected flit is buffered, in
        flight on a channel, or ejected; the maintained counters match
        the structures they shadow; and (sparse kernel) no router holding
        work has retired from the active set.  Raises on violation."""
        buffered = sum(r.buffered_flits() for r in self.routers)
        on_wire = sum(
            1 for r in self.routers for c in r.out_channels
            if c is not None and c.busy
        )
        accounted = buffered + on_wire + self.flits_ejected \
            + self.flits_dropped
        if accounted != self.flits_injected:
            raise RuntimeError(
                f"flit conservation violated: {self.flits_injected} "
                f"injected but {accounted} accounted for "
                f"({buffered} buffered, {on_wire} on wire, "
                f"{self.flits_ejected} ejected, "
                f"{self.flits_dropped} dropped)"
            )
        if sum(self.node_flits_injected) != self.flits_injected:
            raise RuntimeError(
                f"flit conservation violated: per-node injection counters "
                f"sum to {sum(self.node_flits_injected)} but "
                f"{self.flits_injected} flits were injected"
            )
        if sum(self.node_flits_ejected) != self.flits_ejected:
            raise RuntimeError(
                f"flit conservation violated: per-node ejection counters "
                f"sum to {sum(self.node_flits_ejected)} but "
                f"{self.flits_ejected} flits were ejected"
            )
        if sum(self.node_flits_dropped) != self.flits_dropped:
            raise RuntimeError(
                f"flit conservation violated: per-node drop counters "
                f"sum to {sum(self.node_flits_dropped)} but "
                f"{self.flits_dropped} flits were dropped"
            )
        queued = sum(len(q) for q in self.source_queues)
        if queued != self._awaiting:
            raise RuntimeError(
                f"flit conservation violated: awaiting-injection counter "
                f"says {self._awaiting} but source queues hold {queued}"
            )
        for router in self.routers:
            actual = router.buffered_flits()
            if router._buffered != actual:
                raise RuntimeError(
                    f"flit conservation violated: node {router.node} "
                    f"occupancy counter says {router._buffered} but "
                    f"buffers hold {actual}"
                )
            router.check_invariants()
        if self.kernel == "sparse":
            for node, queue in enumerate(self.source_queues):
                if queue and node not in self._pending_src:
                    raise RuntimeError(
                        f"sparse kernel invariant violated: node {node} "
                        f"has queued source flits but is not pending "
                        f"injection"
                    )
            for router in self.routers:
                if router.node in self._active:
                    continue
                if (router._buffered or router._pending_in
                        or router._pending_credit):
                    raise RuntimeError(
                        f"sparse kernel invariant violated: node "
                        f"{router.node} holds work but retired from the "
                        f"active set"
                    )
