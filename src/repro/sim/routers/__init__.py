"""Router microarchitectures: wormhole, virtual-channel, central-buffered."""

from repro.sim.routers.base import BaseRouter, Channel
from repro.sim.routers.wormhole import WormholeRouter
from repro.sim.routers.vc import VCRouter
from repro.sim.routers.central import CentralBufferRouter
from repro.sim.routers.speculative import SpeculativeVCRouter

ROUTER_CLASSES = {
    "wormhole": WormholeRouter,
    "vc": VCRouter,
    "speculative_vc": SpeculativeVCRouter,
    "central": CentralBufferRouter,
}

__all__ = [
    "BaseRouter",
    "Channel",
    "WormholeRouter",
    "VCRouter",
    "CentralBufferRouter",
    "SpeculativeVCRouter",
    "ROUTER_CLASSES",
]
