"""Central-buffered router (paper section 4.4).

A shared central buffer forwards flits between input and output ports, as
in the IBM SP/2 and InfiniBand switches [19, 8].  Flits drain from
per-port input FIFOs through an input crossbar into the shared memory
(limited by its write ports), queue there per output port, and leave
through an output crossbar (limited by its read ports).  Because flits
rest in per-output queues rather than a single input FIFO, packets from
the same input port "need not line up behind one another if they are
destined for different output ports" — no head-of-line blocking — at the
cost of a fabric with fewer ports (2 read + 2 write versus the crossbar's
5).

Pipeline: write allocation -> central-buffer write -> read allocation ->
central-buffer read, with allocations overlapped so a flit spends three
cycles in an empty router — the same depth as the VC router's three
stages, keeping the section 4.4 comparison fair.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import NetworkConfig
from repro.sim.arbiters import make_arbiter
from repro.sim.message import Flit
from repro.sim.routers.base import BaseRouter
from repro.sim.topology import LOCAL


class _PacketRecord:
    """A packet's flits resting in the central buffer for one output."""

    __slots__ = ("flits", "tail_seen")

    def __init__(self) -> None:
        self.flits: Deque[Flit] = deque()
        self.tail_seen = False


class CentralBufferRouter(BaseRouter):
    """Shared-memory (central-buffered) router."""

    def __init__(self, node: int, config: NetworkConfig, binding,
                 sparse: bool = False) -> None:
        super().__init__(node, config, binding, sparse)
        rc = config.router
        self.depth = rc.buffer_depth
        self.capacity = rc.cb_capacity_flits
        self.write_ports = rc.cb_write_ports
        self.read_ports = rc.cb_read_ports
        self.fifos: List[Deque[Flit]] = [deque() for _ in range(self.PORTS)]
        #: Per-output queues of packet records inside the central buffer.
        self.out_queues: List[Deque[_PacketRecord]] = [
            deque() for _ in range(self.PORTS)
        ]
        #: Open records (tail not yet written), by packet id.
        self._open_records: Dict[int, _PacketRecord] = {}
        self.occupancy = 0
        self.out_credits: List[Optional[int]] = [None] * self.PORTS
        self.write_arbiter = make_arbiter(rc.arbiter_type, self.PORTS,
                                          fast=sparse)
        self.read_arbiter = make_arbiter(rc.arbiter_type, self.PORTS,
                                         fast=sparse)
        self._write_grants: List[int] = []
        self._read_grants: List[int] = []

    # --- wiring ---------------------------------------------------------------

    def set_downstream_depth(self, port: int, flits: int,
                             num_vcs: int = 1) -> None:
        if port == LOCAL:
            raise ValueError("ejection port has unlimited credits")
        self.out_credits[port] = flits

    # --- arrivals ----------------------------------------------------------------

    def accept_flit(self, port: int, flit: Flit) -> None:
        fifo = self.fifos[port]
        if len(fifo) >= self.depth:
            raise RuntimeError(
                f"node {self.node} port {port}: buffer overflow — credit "
                f"accounting is broken"
            )
        flit.arrived_cycle = self.now
        fifo.append(flit)
        self._buffered += 1
        self.binding.buffer_write(self.node, port, flit.payload)

    def credit_return(self, port: int, vc: int) -> None:
        if self.out_credits[port] is None:
            raise RuntimeError(
                f"node {self.node}: credit on un-wired output {port}"
            )
        self.out_credits[port] += 1
        if self.out_credits[port] > self.depth:
            raise RuntimeError(
                f"node {self.node} output {port}: credit overflow"
            )

    # --- pipeline ----------------------------------------------------------------

    def traversal_phase(self, cycle: int) -> None:
        """Execute last cycle's read and write grants."""
        reads, self._read_grants = self._read_grants, []
        for out_port in reads:
            queue = self.out_queues[out_port]
            record = queue[0]
            flit = record.flits.popleft()
            self.occupancy -= 1
            self._buffered -= 1
            self.binding.cb_read(self.node, flit.payload)
            if flit.is_tail:
                queue.popleft()
            self._send(out_port, flit)
        writes, self._write_grants = self._write_grants, []
        for in_port in writes:
            fifo = self.fifos[in_port]
            flit = fifo.popleft()
            self.binding.buffer_read(self.node)
            self.binding.cb_write(self.node, flit.payload)
            self.occupancy += 1
            self.moved_flits += 1
            channel = self.in_channels[in_port]
            if channel is not None:
                channel.send_credit(0)
            pid = flit.packet.packet_id
            if flit.is_head:
                record = _PacketRecord()
                out_port = flit.next_output_port()
                if self._faulted_out >> out_port & 1:
                    out_port = self._fault_redirect(flit, in_port)
                self.out_queues[out_port].append(record)
                if not flit.is_tail:
                    self._open_records[pid] = record
            else:
                record = self._open_records[pid]
            record.flits.append(flit)
            if flit.is_tail:
                record.tail_seen = True
                self._open_records.pop(pid, None)

    def allocation_phase(self, cycle: int) -> None:
        """Grant next cycle's central-buffer reads and writes."""
        # Read allocation: at most one flit per output port, at most
        # read_ports flits total, credits permitting.
        candidates = []
        for out_port in range(self.PORTS):
            queue = self.out_queues[out_port]
            if not queue or not queue[0].flits:
                continue
            credits = self.out_credits[out_port]
            if out_port != LOCAL and credits is not None and credits <= 0:
                continue
            candidates.append(out_port)
        for _ in range(self.read_ports):
            if not candidates:
                break
            if self.sparse and len(candidates) == 1:
                winner = self.read_arbiter.grant_single(candidates[0])
            else:
                winner = self.read_arbiter.grant(candidates)
            self.binding.arbitration(self.node, "cb", len(candidates))
            candidates.remove(winner)
            credits = self.out_credits[winner]
            if winner != LOCAL and credits is not None:
                self.out_credits[winner] = credits - 1
            self._read_grants.append(winner)
        # Write allocation: at most one flit per input port, at most
        # write_ports flits total, capacity permitting.
        budget = self.capacity - self.occupancy
        candidates = [p for p in range(self.PORTS)
                      if self.fifos[p]
                      and self.fifos[p][0].arrived_cycle < cycle]
        for _ in range(self.write_ports):
            if not candidates or budget <= 0:
                break
            if self.sparse and len(candidates) == 1:
                winner = self.write_arbiter.grant_single(candidates[0])
            else:
                winner = self.write_arbiter.grant(candidates)
            self.binding.arbitration(self.node, "cb", len(candidates))
            candidates.remove(winner)
            budget -= 1
            self._write_grants.append(winner)

    # --- injection / introspection ----------------------------------------------------

    def injection_space(self) -> int:
        return self.depth - len(self.fifos[LOCAL])

    def buffered_flits(self) -> int:
        return sum(len(f) for f in self.fifos) + self.occupancy

    def reset(self) -> None:
        super().reset()
        for fifo in self.fifos:
            fifo.clear()
        for queue in self.out_queues:
            queue.clear()
        self._open_records.clear()
        self.occupancy = 0
        for port in range(self.PORTS):
            if self.out_credits[port] is not None:
                self.out_credits[port] = self.depth
        self.write_arbiter.reset()
        self.read_arbiter.reset()
        self._write_grants = []
        self._read_grants = []
