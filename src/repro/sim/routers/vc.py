"""Virtual-channel router: 3-stage pipeline (VA, SA, ST).

The VC16/VC64/VC128 configurations of section 4.2 and the XB router of
section 4.4.  Each input port holds ``num_vcs`` virtual channels of
``buffer_depth`` flits, all stored in one SRAM array per port (so buffer
power follows the *total* per-port flit count).  Head flits first acquire
an output virtual channel (VA), then flits compete cycle-by-cycle for the
crossbar in two separable stages (a V:1 stage per input port and a 4:1
stage per output port), and finally traverse the switch (ST) — the
three-stage pipeline prescribed by the Peh-Dally delay model [15].

Deadlock freedom on tori comes either from the routing tie-break (see
:mod:`repro.sim.routing`) or, for ``vc_class_mode="dateline"``, from
splitting the VCs of each ring channel into before/after-dateline
classes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import NetworkConfig
from repro.sim.arbiters import make_arbiter
from repro.sim.message import Flit
from repro.sim.routers.base import BaseRouter
from repro.sim.topology import LOCAL, NORTH, SOUTH


class _InputVC:
    """State of one virtual channel at one input port."""

    __slots__ = ("fifo", "active", "out_port", "out_vc")

    def __init__(self) -> None:
        self.fifo: Deque[Flit] = deque()
        self.active = False
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None


class VCRouter(BaseRouter):
    """Input-buffered virtual-channel router."""

    def __init__(self, node: int, config: NetworkConfig, binding) -> None:
        super().__init__(node, config, binding)
        rc = config.router
        self.num_vcs = rc.num_vcs
        self.vc_depth = rc.buffer_depth
        self.vcs: List[List[_InputVC]] = [
            [_InputVC() for _ in range(self.num_vcs)]
            for _ in range(self.PORTS)
        ]
        #: (in_port, in_vc) owning each output VC, or None.
        self.out_vc_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * self.num_vcs for _ in range(self.PORTS)
        ]
        #: Per-output-VC downstream credits; None = unlimited (ejection).
        self.out_credits: List[Optional[List[int]]] = [None] * self.PORTS
        self.switch_arbiters = [
            make_arbiter(rc.arbiter_type, self.PORTS)
            for _ in range(self.PORTS)
        ]
        self.local_arbiters = [
            make_arbiter(rc.arbiter_type, self.num_vcs)
            for _ in range(self.PORTS)
        ]
        self.vc_arbiters = [
            [make_arbiter(rc.arbiter_type, self.PORTS * self.num_vcs)
             for _ in range(self.num_vcs)]
            for _ in range(self.PORTS)
        ]
        #: Switch grants executed next traversal phase:
        #: (in_port, in_vc, out_port, out_vc) tuples.
        self._st_grants: List[Tuple[int, int, int, int]] = []
        self.dateline = rc.vc_class_mode == "dateline"
        #: Topology reference, installed by the network (needed for
        #: dateline wrap-edge detection).
        self.topo = None
        # Injection bookkeeping: VC receiving the in-progress packet.
        self._inject_vc: Optional[int] = None
        self._inject_rr = 0

    # --- wiring -----------------------------------------------------------------

    def set_downstream_depth(self, port: int, flits: int,
                             num_vcs: int = 1) -> None:
        if port == LOCAL:
            raise ValueError("ejection port has unlimited credits")
        if num_vcs != self.num_vcs:
            raise ValueError(
                f"node {self.node}: neighbour has {num_vcs} VCs, expected "
                f"{self.num_vcs} (heterogeneous VC counts not supported)"
            )
        self.out_credits[port] = [flits] * num_vcs

    # --- arrivals ------------------------------------------------------------------

    def accept_flit(self, port: int, flit: Flit) -> None:
        vc = self.vcs[port][flit.vc]
        if len(vc.fifo) >= self.vc_depth:
            raise RuntimeError(
                f"node {self.node} port {port} vc {flit.vc}: buffer "
                f"overflow — credit accounting is broken"
            )
        flit.arrived_cycle = self.now
        vc.fifo.append(flit)
        self.binding.buffer_write(self.node, port, flit.payload)

    def credit_return(self, port: int, vc: int) -> None:
        credits = self.out_credits[port]
        if credits is None:
            raise RuntimeError(
                f"node {self.node}: credit on un-wired output {port}"
            )
        credits[vc] += 1
        if credits[vc] > self.vc_depth:
            raise RuntimeError(
                f"node {self.node} output {port} vc {vc}: credit overflow"
            )

    # --- pipeline stages ------------------------------------------------------------

    def traversal_phase(self, cycle: int) -> None:
        """ST: execute last cycle's switch grants."""
        grants, self._st_grants = self._st_grants, []
        for in_port, in_vc, out_port, out_vc in grants:
            vc = self.vcs[in_port][in_vc]
            flit = vc.fifo.popleft()
            self.binding.buffer_read(self.node)
            self.binding.xbar_traversal(self.node, out_port, flit.payload)
            channel = self.in_channels[in_port]
            if channel is not None:
                channel.send_credit(in_vc)
            if flit.is_head:
                self._update_dateline(flit, out_port)
            if flit.is_tail:
                self.out_vc_owner[out_port][out_vc] = None
                vc.active = False
                vc.out_port = None
                vc.out_vc = None
            flit.vc = out_vc
            self._send(out_port, flit)

    def allocation_phase(self, cycle: int) -> None:
        """SA then VA (so VA grants become SA-visible next cycle)."""
        self._switch_allocation(cycle)
        self._vc_allocation(cycle)

    #: Allocation iterations per cycle.  A single pass of a separable
    #: allocator wastes input slots (a stage-1 winner that loses the
    #: output stage idles its whole port); two iterations recover most
    #: of the matching quality, as in iSLIP.
    SA_ITERATIONS = 2

    def _switch_allocation(self, cycle: int) -> Tuple[set, set]:
        """Iterative two-stage separable switch allocation.

        Returns the sets of matched input and output ports (used by the
        speculative subclass to fill leftover slots)."""
        matched_inputs = set()
        matched_outputs = set()
        for _ in range(self.SA_ITERATIONS):
            stage1: List[Tuple[int, int]] = []
            for in_port in range(self.PORTS):
                if in_port in matched_inputs:
                    continue
                candidates = []
                for v, vc in enumerate(self.vcs[in_port]):
                    if not vc.active or not vc.fifo or \
                            vc.fifo[0].arrived_cycle >= cycle:
                        continue
                    if vc.out_port in matched_outputs:
                        continue
                    credits = self.out_credits[vc.out_port]
                    if credits is not None and credits[vc.out_vc] <= 0:
                        continue
                    candidates.append(v)
                if not candidates:
                    continue
                winner = self.local_arbiters[in_port].grant(candidates)
                self.binding.arbitration(self.node, "local",
                                         len(candidates))
                stage1.append((in_port, winner))
            if not stage1:
                break
            by_output: Dict[int, List[Tuple[int, int]]] = {}
            for in_port, v in stage1:
                out_port = self.vcs[in_port][v].out_port
                by_output.setdefault(out_port, []).append((in_port, v))
            for out_port, contenders in by_output.items():
                ports = [p for p, _ in contenders]
                winner_port = self.switch_arbiters[out_port].grant(ports)
                self.binding.arbitration(self.node, "switch", len(ports))
                winner_vc = next(v for p, v in contenders
                                 if p == winner_port)
                vc = self.vcs[winner_port][winner_vc]
                credits = self.out_credits[out_port]
                if credits is not None:
                    credits[vc.out_vc] -= 1
                matched_inputs.add(winner_port)
                matched_outputs.add(out_port)
                self._st_grants.append(
                    (winner_port, winner_vc, out_port, vc.out_vc))
        return matched_inputs, matched_outputs

    def _vc_allocation(self, cycle: int) -> List[Tuple[int, int]]:
        """Heads of idle VCs request one candidate output VC each.

        Returns the input VCs granted an output VC this cycle (used by
        the speculative subclass)."""
        requests: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for in_port in range(self.PORTS):
            for v, vc in enumerate(self.vcs[in_port]):
                if vc.active or not vc.fifo or \
                        vc.fifo[0].arrived_cycle >= cycle:
                    continue
                head = vc.fifo[0]
                if not head.is_head:
                    raise RuntimeError(
                        f"node {self.node} port {in_port} vc {v}: idle VC "
                        f"headed by a {head.ftype.name} flit"
                    )
                out_port = head.next_output_port()
                candidate = self._pick_output_vc(head, out_port)
                if candidate is None:
                    continue
                requests.setdefault((out_port, candidate), []).append(
                    (in_port, v))
        granted: List[Tuple[int, int]] = []
        for (out_port, out_vc), reqs in requests.items():
            ids = [p * self.num_vcs + v for p, v in reqs]
            winner_id = self.vc_arbiters[out_port][out_vc].grant(ids)
            self.binding.arbitration(self.node, "vc", len(ids))
            in_port, v = divmod(winner_id, self.num_vcs)
            vc = self.vcs[in_port][v]
            vc.active = True
            vc.out_port = out_port
            vc.out_vc = out_vc
            self.out_vc_owner[out_port][out_vc] = (in_port, v)
            granted.append((in_port, v))
        return granted

    def _pick_output_vc(self, head: Flit, out_port: int) -> Optional[int]:
        """First free output VC in the head's allowed class, scanning from
        a packet-dependent start for load balance."""
        lo, hi = self._allowed_vc_range(head, out_port)
        owners = self.out_vc_owner[out_port]
        span = hi - lo
        start = (head.packet.packet_id + self.node) % span
        for i in range(span):
            candidate = lo + (start + i) % span
            if owners[candidate] is None:
                return candidate
        return None

    def _allowed_vc_range(self, head: Flit, out_port: int) -> Tuple[int, int]:
        """VC class restriction: [lo, hi) of usable output VCs."""
        if not self.dateline or out_port == LOCAL:
            return 0, self.num_vcs
        dim = "y" if out_port in (NORTH, SOUTH) else "x"
        crossed = head.crossed_dateline and head.travel_dim == dim
        half = self.num_vcs // 2
        return (half, self.num_vcs) if crossed else (0, half)

    def _update_dateline(self, head: Flit, out_port: int) -> None:
        """Track dateline crossings for the class restriction."""
        if not self.dateline or out_port == LOCAL or self.topo is None:
            return
        dim = "y" if out_port in (NORTH, SOUTH) else "x"
        if head.travel_dim != dim:
            head.travel_dim = dim
            head.crossed_dateline = False
        if self.topo.crosses_wrap_edge(self.node, out_port):
            head.crossed_dateline = True

    # --- injection --------------------------------------------------------------------

    def injection_space(self) -> int:
        return sum(self.vc_depth - len(vc.fifo)
                   for vc in self.vcs[LOCAL])

    def inject_flit(self, flit: Flit) -> bool:
        """Place one flit into an injection-port VC.

        A packet's flits all enter the same VC; heads pick the next VC
        (round-robin) with room for at least one flit.
        """
        if flit.is_head:
            chosen = None
            for i in range(self.num_vcs):
                v = (self._inject_rr + i) % self.num_vcs
                if len(self.vcs[LOCAL][v].fifo) < self.vc_depth:
                    chosen = v
                    break
            if chosen is None:
                return False
            self._inject_rr = (chosen + 1) % self.num_vcs
            self._inject_vc = chosen
        elif self._inject_vc is None:
            raise RuntimeError(
                f"node {self.node}: body flit injected with no open packet"
            )
        v = self._inject_vc
        if len(self.vcs[LOCAL][v].fifo) >= self.vc_depth:
            return False
        flit.vc = v
        self.accept_flit(LOCAL, flit)
        if flit.is_tail:
            self._inject_vc = None
        return True

    # --- introspection ----------------------------------------------------------------

    def buffered_flits(self) -> int:
        return sum(len(vc.fifo)
                   for port in self.vcs for vc in port)
