"""Virtual-channel router: 3-stage pipeline (VA, SA, ST).

The VC16/VC64/VC128 configurations of section 4.2 and the XB router of
section 4.4.  Each input port holds ``num_vcs`` virtual channels of
``buffer_depth`` flits, all stored in one SRAM array per port (so buffer
power follows the *total* per-port flit count).  Head flits first acquire
an output virtual channel (VA), then flits compete cycle-by-cycle for the
crossbar in two separable stages (a V:1 stage per input port and a 4:1
stage per output port), and finally traverse the switch (ST) — the
three-stage pipeline prescribed by the Peh-Dally delay model [15].

Deadlock freedom on tori comes either from the routing tie-break (see
:mod:`repro.sim.routing`) or, for ``vc_class_mode="dateline"``, from
splitting the VCs of each ring channel into before/after-dateline
classes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import NetworkConfig
from repro.sim.arbiters import make_arbiter
from repro.sim.message import Flit
from repro.sim.routers.base import BaseRouter
from repro.sim.topology import LOCAL, NORTH, SOUTH


_LOWBIT_TABLES: Dict[int, List[int]] = {}


def _lowbit_table(num_vcs: int) -> List[int]:
    """Shared table mapping an isolated low bit (``mask & -mask``) to its
    index — one C-level list index instead of an ``int.bit_length`` call
    in the allocation scans' inner loops."""
    table = _LOWBIT_TABLES.get(num_vcs)
    if table is None:
        table = [0] * (1 << num_vcs)
        for i in range(num_vcs):
            table[1 << i] = i
        _LOWBIT_TABLES[num_vcs] = table
    return table


class _InputVC:
    """State of one virtual channel at one input port."""

    __slots__ = ("fifo", "active", "out_port", "out_vc")

    def __init__(self) -> None:
        self.fifo: Deque[Flit] = deque()
        self.active = False
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None


class VCRouter(BaseRouter):
    """Input-buffered virtual-channel router."""

    def __init__(self, node: int, config: NetworkConfig, binding,
                 sparse: bool = False) -> None:
        super().__init__(node, config, binding, sparse)
        rc = config.router
        self.num_vcs = rc.num_vcs
        self.vc_depth = rc.buffer_depth
        self.vcs: List[List[_InputVC]] = [
            [_InputVC() for _ in range(self.num_vcs)]
            for _ in range(self.PORTS)
        ]
        #: Per-input-port bitmasks over VC indices, maintained O(1) so
        #: the sparse kernel's allocation scans visit only live VCs:
        #: ``_sa_mask`` — active (output VC held) and non-empty, the only
        #: VCs that can request the switch; ``_va_mask`` — idle and
        #: non-empty, the only VCs that can request an output VC.
        self._sa_mask: List[int] = [0] * self.PORTS
        self._va_mask: List[int] = [0] * self.PORTS
        #: Bitmasks over input ports with a nonzero ``_sa_mask`` /
        #: ``_va_mask`` entry — let allocation skip dead ports (and
        #: whole calls) outright.
        self._sa_ports = 0
        self._va_ports = 0
        self._low5 = _lowbit_table(self.PORTS)
        self._lowbit = _lowbit_table(self.num_vcs)
        #: (in_port, in_vc) owning each output VC, or None.
        self.out_vc_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * self.num_vcs for _ in range(self.PORTS)
        ]
        #: Per-output-VC downstream credits; None = unlimited (ejection).
        self.out_credits: List[Optional[List[int]]] = [None] * self.PORTS
        self.switch_arbiters = [
            make_arbiter(rc.arbiter_type, self.PORTS, fast=sparse)
            for _ in range(self.PORTS)
        ]
        self.local_arbiters = [
            make_arbiter(rc.arbiter_type, self.num_vcs, fast=sparse)
            for _ in range(self.PORTS)
        ]
        self.vc_arbiters = [
            [make_arbiter(rc.arbiter_type, self.PORTS * self.num_vcs,
                          fast=sparse)
             for _ in range(self.num_vcs)]
            for _ in range(self.PORTS)
        ]
        #: Switch grants executed next traversal phase:
        #: (in_port, in_vc, out_port, out_vc) tuples.
        self._st_grants: List[Tuple[int, int, int, int]] = []
        self.dateline = rc.vc_class_mode == "dateline"
        #: Topology reference, installed by the network (needed for
        #: dateline wrap-edge detection).
        self.topo = None
        # Injection bookkeeping: VC receiving the in-progress packet.
        self._inject_vc: Optional[int] = None
        self._inject_rr = 0
        # Sparse fast paths.  When the binding is counter-based
        # (CounterBinding exposes its per-node event counters as stable,
        # in-place-zeroed lists), the hot loops bump the counters
        # directly instead of paying a method call per event — the
        # deposits are identical, only the call is elided.  ``None``
        # keeps every other binding on the sink-method path.
        arb_counts = getattr(binding, "n_arb", None)
        if sparse and arb_counts is not None:
            self._c_arb_local = arb_counts["local"][node]
            self._c_arb_switch = arb_counts["switch"][node]
            self._c_arb_vc = arb_counts["vc"][node]
            self._c_buf_write = binding.n_buf_write
            self._c_buf_read = binding.n_buf_read
            self._c_xbar = binding.n_xbar
        else:
            self._c_arb_local = None
            self._c_arb_switch = None
            self._c_arb_vc = None
            self._c_buf_write = None
            self._c_buf_read = None
            self._c_xbar = None
        if sparse and type(self).allocation_phase is VCRouter.allocation_phase:
            # Skip the per-call kernel dispatch and fuse the traversal +
            # allocation pass (the speculative subclass overrides
            # allocation_phase, so only bind when this class's
            # dispatcher would run).
            self.allocation_phase = self._allocation_phase_sparse
            self.work_phase = self._work_phase_sparse

    # --- wiring -----------------------------------------------------------------

    def set_downstream_depth(self, port: int, flits: int,
                             num_vcs: int = 1) -> None:
        if port == LOCAL:
            raise ValueError("ejection port has unlimited credits")
        if num_vcs != self.num_vcs:
            raise ValueError(
                f"node {self.node}: neighbour has {num_vcs} VCs, expected "
                f"{self.num_vcs} (heterogeneous VC counts not supported)"
            )
        self.out_credits[port] = [flits] * num_vcs

    # --- arrivals ------------------------------------------------------------------

    def accept_flit(self, port: int, flit: Flit) -> None:
        vc = self.vcs[port][flit.vc]
        if len(vc.fifo) >= self.vc_depth:
            raise RuntimeError(
                f"node {self.node} port {port} vc {flit.vc}: buffer "
                f"overflow — credit accounting is broken"
            )
        flit.arrived_cycle = self.now
        vc.fifo.append(flit)
        self._buffered += 1
        if vc.active:
            self._sa_mask[port] |= 1 << flit.vc
            self._sa_ports |= 1 << port
        else:
            self._va_mask[port] |= 1 << flit.vc
            self._va_ports |= 1 << port
        counts = self._c_buf_write
        if counts is not None:
            counts[self.node] += 1
        else:
            self.binding.buffer_write(self.node, port, flit.payload)

    def credit_return(self, port: int, vc: int) -> None:
        credits = self.out_credits[port]
        if credits is None:
            raise RuntimeError(
                f"node {self.node}: credit on un-wired output {port}"
            )
        credits[vc] += 1
        if credits[vc] > self.vc_depth:
            raise RuntimeError(
                f"node {self.node} output {port} vc {vc}: credit overflow"
            )

    def _arrival_phase_sparse(self, cycle: int) -> None:
        """Event-driven channel drain (see the base-class twin), with
        :meth:`accept_flit` / :meth:`credit_return` and the channel
        accessors inlined — identical mutations and deposits per event,
        only the call frames elided."""
        self.now = cycle
        pending = self._pending_in
        if pending:
            self._pending_in = 0
            in_channels = self.in_channels
            vcs = self.vcs
            vc_depth = self.vc_depth
            c_buf_write = self._c_buf_write
            node = self.node
            port = 0
            while pending:
                if pending & 1:
                    channel = in_channels[port]
                    flit = channel._flit
                    if flit is not None:
                        channel._flit = None
                        fv = flit.vc
                        vc = vcs[port][fv]
                        if len(vc.fifo) >= vc_depth:
                            raise RuntimeError(
                                f"node {node} port {port} vc {fv}: buffer "
                                f"overflow — credit accounting is broken"
                            )
                        flit.arrived_cycle = cycle
                        vc.fifo.append(flit)
                        self._buffered += 1
                        if vc.active:
                            self._sa_mask[port] |= 1 << fv
                            self._sa_ports |= 1 << port
                        else:
                            self._va_mask[port] |= 1 << fv
                            self._va_ports |= 1 << port
                        if c_buf_write is not None:
                            c_buf_write[node] += 1
                        else:
                            self.binding.buffer_write(node, port,
                                                      flit.payload)
                pending >>= 1
                port += 1
        pending = self._pending_credit
        if pending:
            self._pending_credit = 0
            out_channels = self.out_channels
            out_credits = self.out_credits
            vc_depth = self.vc_depth
            port = 0
            while pending:
                if pending & 1:
                    channel = out_channels[port]
                    returned = channel._credits
                    if returned:
                        channel._credits = []
                        credits = out_credits[port]
                        for v in returned:
                            credits[v] += 1
                            if credits[v] > vc_depth:
                                raise RuntimeError(
                                    f"node {self.node} output {port} vc "
                                    f"{v}: credit overflow"
                                )
                pending >>= 1
                port += 1

    # --- pipeline stages ------------------------------------------------------------

    def traversal_phase(self, cycle: int) -> None:
        """ST: execute last cycle's switch grants."""
        grants = self._st_grants
        if not grants:
            return
        self._st_grants = []
        vcs = self.vcs
        sa_mask = self._sa_mask
        in_channels = self.in_channels
        binding = self.binding
        buffer_read = binding.buffer_read
        xbar_traversal = binding.xbar_traversal
        c_buf_read = self._c_buf_read
        c_xbar = self._c_xbar
        node = self.node
        dateline = self.dateline
        for in_port, in_vc, out_port, out_vc in grants:
            vc = vcs[in_port][in_vc]
            flit = vc.fifo.popleft()
            self._buffered -= 1
            if not vc.fifo:
                masked = sa_mask[in_port] & ~(1 << in_vc)
                sa_mask[in_port] = masked
                if not masked:
                    self._sa_ports &= ~(1 << in_port)
            if c_buf_read is not None:
                c_buf_read[node] += 1
                c_xbar[node] += 1
            else:
                buffer_read(node)
                xbar_traversal(node, out_port, flit.payload)
            channel = in_channels[in_port]
            if channel is not None:
                channel.send_credit(in_vc)
            if dateline and flit.is_head:
                self._update_dateline(flit, out_port)
            if flit.is_tail:
                self.out_vc_owner[out_port][out_vc] = None
                vc.active = False
                vc.out_port = None
                vc.out_vc = None
                masked = sa_mask[in_port] & ~(1 << in_vc)
                sa_mask[in_port] = masked
                if not masked:
                    self._sa_ports &= ~(1 << in_port)
                if vc.fifo:
                    # The next packet's head is already queued behind
                    # the departing tail: it now awaits VC allocation.
                    self._va_mask[in_port] |= 1 << in_vc
                    self._va_ports |= 1 << in_port
            flit.vc = out_vc
            self._send(out_port, flit)

    def _work_phase_sparse(self, cycle: int) -> None:
        """Fused ST + SA + VA pass for the sparse kernel.

        The traversal block is the twin of :meth:`traversal_phase` with
        the per-flit helper calls (``_send``, ``Channel.send_flit``,
        ``Channel.send_credit``) inlined — identical state mutations and
        energy deposits, only the call frames elided; the sparse kernel
        wires every channel's notifier fields, so the inlined sends
        notify unconditionally.  The equivalence suite and the audit
        invariants pin this twin to the canonical phase methods.
        """
        grants = self._st_grants
        if grants:
            self._st_grants = []
            vcs = self.vcs
            sa_mask = self._sa_mask
            in_channels = self.in_channels
            out_channels = self.out_channels
            binding = self.binding
            c_buf_read = self._c_buf_read
            c_xbar = self._c_xbar
            c_link = self._c_link
            node = self.node
            dateline = self.dateline
            eject = self.eject
            moved = 0
            for in_port, in_vc, out_port, out_vc in grants:
                vc = vcs[in_port][in_vc]
                flit = vc.fifo.popleft()
                self._buffered -= 1
                if not vc.fifo:
                    masked = sa_mask[in_port] & ~(1 << in_vc)
                    sa_mask[in_port] = masked
                    if not masked:
                        self._sa_ports &= ~(1 << in_port)
                if c_buf_read is not None:
                    c_buf_read[node] += 1
                    c_xbar[node] += 1
                else:
                    binding.buffer_read(node)
                    binding.xbar_traversal(node, out_port, flit.payload)
                channel = in_channels[in_port]
                if channel is not None:
                    channel._credits.append(in_vc)
                    upstream = channel.credit_router
                    upstream._pending_credit |= channel.credit_bit
                    channel.active_set.add(upstream.node)
                if dateline and flit.is_head:
                    self._update_dateline(flit, out_port)
                if flit.is_tail:
                    self.out_vc_owner[out_port][out_vc] = None
                    vc.active = False
                    vc.out_port = None
                    vc.out_vc = None
                    masked = sa_mask[in_port] & ~(1 << in_vc)
                    sa_mask[in_port] = masked
                    if not masked:
                        self._sa_ports &= ~(1 << in_port)
                    if vc.fifo:
                        self._va_mask[in_port] |= 1 << in_vc
                        self._va_ports |= 1 << in_port
                flit.vc = out_vc
                moved += 1
                if out_port == LOCAL:
                    eject(flit)
                else:
                    if flit.is_head:
                        flit.route_idx += 1
                    channel = out_channels[out_port]
                    if c_link is not None:
                        c_link[node] += 1
                    else:
                        binding.link_traversal(node, out_port, flit.payload)
                    if channel._flit is not None:
                        raise RuntimeError(
                            f"channel {channel.src_node}:{channel.src_port}"
                            f"->{channel.dst_node}:{channel.dst_port} "
                            f"already carries a flit"
                        )
                    channel._flit = flit
                    channel.flits_sent += 1
                    downstream = channel.flit_router
                    downstream._pending_in |= channel.flit_bit
                    channel.active_set.add(downstream.node)
            self.moved_flits = moved
        self._switch_allocation_sparse(cycle)
        if self._va_ports:
            self._vc_allocation_sparse(cycle)

    def allocation_phase(self, cycle: int) -> None:
        """SA then VA (so VA grants become SA-visible next cycle)."""
        if self.sparse:
            self._switch_allocation_sparse(cycle)
            self._vc_allocation_sparse(cycle)
        else:
            self._switch_allocation(cycle)
            self._vc_allocation(cycle)

    def _allocation_phase_sparse(self, cycle: int) -> None:
        """Pre-bound sparse allocation (installed as the instance's
        ``allocation_phase`` to skip the kernel dispatch per call)."""
        self._switch_allocation_sparse(cycle)
        if self._va_ports:
            self._vc_allocation_sparse(cycle)

    #: Allocation iterations per cycle.  A single pass of a separable
    #: allocator wastes input slots (a stage-1 winner that loses the
    #: output stage idles its whole port); two iterations recover most
    #: of the matching quality, as in iSLIP.
    SA_ITERATIONS = 2

    def _switch_allocation(self, cycle: int) -> Tuple[set, set]:
        """Iterative two-stage separable switch allocation.

        Returns the sets of matched input and output ports (used by the
        speculative subclass to fill leftover slots)."""
        matched_inputs = set()
        matched_outputs = set()
        fast = self.sparse
        sa_mask = self._sa_mask
        vcs = self.vcs
        out_credits = self.out_credits
        arbitration = self.binding.arbitration
        for _ in range(self.SA_ITERATIONS):
            stage1: List[Tuple[int, int]] = []
            for in_port in range(self.PORTS):
                if in_port in matched_inputs:
                    continue
                if fast and not sa_mask[in_port]:
                    continue
                candidates = []
                for v, vc in enumerate(vcs[in_port]):
                    if not vc.active or not vc.fifo or \
                            vc.fifo[0].arrived_cycle >= cycle:
                        continue
                    if vc.out_port in matched_outputs:
                        continue
                    credits = out_credits[vc.out_port]
                    if credits is not None and credits[vc.out_vc] <= 0:
                        continue
                    candidates.append(v)
                if not candidates:
                    continue
                if fast and len(candidates) == 1:
                    winner = self.local_arbiters[in_port].grant_single(
                        candidates[0])
                else:
                    winner = self.local_arbiters[in_port].grant(candidates)
                arbitration(self.node, "local", len(candidates))
                stage1.append((in_port, winner))
            if not stage1:
                break
            by_output: Dict[int, List[Tuple[int, int]]] = {}
            for in_port, v in stage1:
                out_port = vcs[in_port][v].out_port
                by_output.setdefault(out_port, []).append((in_port, v))
            for out_port, contenders in by_output.items():
                ports = [p for p, _ in contenders]
                if fast and len(ports) == 1:
                    winner_port = self.switch_arbiters[out_port] \
                        .grant_single(ports[0])
                else:
                    winner_port = self.switch_arbiters[out_port].grant(ports)
                arbitration(self.node, "switch", len(ports))
                winner_vc = next(v for p, v in contenders
                                 if p == winner_port)
                vc = vcs[winner_port][winner_vc]
                credits = out_credits[out_port]
                if credits is not None:
                    credits[vc.out_vc] -= 1
                matched_inputs.add(winner_port)
                matched_outputs.add(out_port)
                self._st_grants.append(
                    (winner_port, winner_vc, out_port, vc.out_vc))
        return matched_inputs, matched_outputs

    def _switch_allocation_sparse(self, cycle: int) -> None:
        """Sparse-kernel switch allocation, event-for-event equivalent
        to :meth:`_switch_allocation`.

        Differences are purely mechanical: the stage-1 scan walks the
        ``_sa_mask`` bitmasks (active non-empty VCs, ascending — the
        exact candidate set the dense scan filters out of all V VCs),
        matched ports are bitmasks, and an iteration ends the loop early
        when no stage-1 winner lost stage 2 — in that case the next
        dense iteration provably finds no candidates (candidate sets
        only shrink as outputs match and credits drain), so it would
        touch no arbiter and emit no event.
        """
        pmask = self._sa_ports
        if not pmask:
            return
        sa_mask = self._sa_mask
        vcs = self.vcs
        out_credits = self.out_credits
        lowbit = self._lowbit
        if not (pmask & (pmask - 1)):
            # Single requesting port — the dominant shape at paper
            # operating points.  Stage 2 is uncontended for whichever VC
            # wins stage 1, only one grant can issue (the port is then
            # matched), and a second iteration finds no candidates, so
            # the whole allocation collapses to one local pick plus one
            # uncontended switch grant — or to nothing when no head is
            # eligible.
            in_port = self._low5[pmask]
            mask = sa_mask[in_port]
            port_vcs = vcs[in_port]
            first = -1
            extras = None
            while mask:
                v = lowbit[mask & -mask]
                mask &= mask - 1
                vc = port_vcs[v]
                if vc.fifo[0].arrived_cycle >= cycle:
                    continue
                credits = out_credits[vc.out_port]
                if credits is not None and credits[vc.out_vc] <= 0:
                    continue
                if first < 0:
                    first = v
                elif extras is None:
                    extras = [first, v]
                else:
                    extras.append(v)
            if first < 0:
                return
            arb = self.local_arbiters[in_port]
            st = arb._fstamp
            if extras is None:
                winner = first
                n_req = 1
                if st is not None:
                    st[winner] = arb._next
                    arb._next += 1
                else:
                    arb.grant_single(winner)
            else:
                n_req = len(extras)
                if st is not None and n_req == 2:
                    # Two candidates: the fast-matrix winner is simply
                    # the lower stamp (stamps are unique), restamped —
                    # grant() minus the bounds check and min machinery.
                    a, b = extras
                    winner = a if st[a] < st[b] else b
                    st[winner] = arb._next
                    arb._next += 1
                else:
                    winner = arb.grant(extras)
            vc = port_vcs[winner]
            out_port = vc.out_port
            arb = self.switch_arbiters[out_port]
            st = arb._fstamp
            if st is not None:
                st[in_port] = arb._next
                arb._next += 1
            else:
                arb.grant_single(in_port)
            c_local = self._c_arb_local
            if c_local is not None:
                c_local[n_req] += 1
                self._c_arb_switch[1] += 1
            else:
                arbitration = self.binding.arbitration
                arbitration(self.node, "local", n_req)
                arbitration(self.node, "switch", 1)
            credits = out_credits[out_port]
            if credits is not None:
                credits[vc.out_vc] -= 1
            self._st_grants.append((in_port, winner, out_port, vc.out_vc))
            return
        matched_in = 0
        matched_out = 0
        local_arbiters = self.local_arbiters
        switch_arbiters = self.switch_arbiters
        arbitration = self.binding.arbitration
        c_local = self._c_arb_local
        c_switch = self._c_arb_switch
        st_grants = self._st_grants
        low5 = self._low5
        node = self.node
        for _ in range(self.SA_ITERATIONS):
            stage1: List[Tuple[int, int]] = []
            out_seen = 0
            out_contested = 0
            pm = pmask & ~matched_in
            while pm:
                in_port = low5[pm & -pm]
                pm &= pm - 1
                mask = sa_mask[in_port]
                port_vcs = vcs[in_port]
                first = -1
                extras = None
                while mask:
                    v = lowbit[mask & -mask]
                    mask &= mask - 1
                    vc = port_vcs[v]
                    if vc.fifo[0].arrived_cycle >= cycle:
                        continue
                    if matched_out >> vc.out_port & 1:
                        continue
                    credits = out_credits[vc.out_port]
                    if credits is not None and credits[vc.out_vc] <= 0:
                        continue
                    if first < 0:
                        first = v
                    elif extras is None:
                        extras = [first, v]
                    else:
                        extras.append(v)
                if first < 0:
                    continue
                if extras is None:
                    winner = first
                    arb = local_arbiters[in_port]
                    st = arb._fstamp
                    if st is not None:
                        st[first] = arb._next
                        arb._next += 1
                    else:
                        arb.grant_single(first)
                    if c_local is not None:
                        c_local[1] += 1
                    else:
                        arbitration(node, "local", 1)
                else:
                    arb = local_arbiters[in_port]
                    st = arb._fstamp
                    if st is not None and len(extras) == 2:
                        a, b = extras
                        winner = a if st[a] < st[b] else b
                        st[winner] = arb._next
                        arb._next += 1
                    else:
                        winner = arb.grant(extras)
                    if c_local is not None:
                        c_local[len(extras)] += 1
                    else:
                        arbitration(node, "local", len(extras))
                stage1.append((in_port, winner))
                bit = 1 << port_vcs[winner].out_port
                if out_seen & bit:
                    out_contested |= bit
                else:
                    out_seen |= bit
            if not stage1:
                break
            if not out_contested:
                # Common case: every stage-1 winner targets a distinct
                # output, so each wins stage 2 uncontested.
                for in_port, v in stage1:
                    vc = vcs[in_port][v]
                    out_port = vc.out_port
                    arb = switch_arbiters[out_port]
                    st = arb._fstamp
                    if st is not None:
                        st[in_port] = arb._next
                        arb._next += 1
                    else:
                        arb.grant_single(in_port)
                    if c_switch is not None:
                        c_switch[1] += 1
                    else:
                        arbitration(node, "switch", 1)
                    credits = out_credits[out_port]
                    if credits is not None:
                        credits[vc.out_vc] -= 1
                    matched_in |= 1 << in_port
                    matched_out |= 1 << out_port
                    st_grants.append((in_port, v, out_port, vc.out_vc))
                # No stage-1 winner lost, so the next iteration would
                # find no candidates, touch no arbiter and emit no
                # event: stop here.
                break
            by_output: Dict[int, List[Tuple[int, int]]] = {}
            for in_port, v in stage1:
                out_port = vcs[in_port][v].out_port
                by_output.setdefault(out_port, []).append((in_port, v))
            for out_port, contenders in by_output.items():
                if len(contenders) == 1:
                    winner_port, winner_vc = contenders[0]
                    arb = switch_arbiters[out_port]
                    st = arb._fstamp
                    if st is not None:
                        st[winner_port] = arb._next
                        arb._next += 1
                    else:
                        arb.grant_single(winner_port)
                    if c_switch is not None:
                        c_switch[1] += 1
                    else:
                        arbitration(node, "switch", 1)
                else:
                    ports = [p for p, _ in contenders]
                    arb = switch_arbiters[out_port]
                    st = arb._fstamp
                    if st is not None and len(ports) == 2:
                        a, b = ports
                        winner_port = a if st[a] < st[b] else b
                        st[winner_port] = arb._next
                        arb._next += 1
                    else:
                        winner_port = arb.grant(ports)
                    if c_switch is not None:
                        c_switch[len(ports)] += 1
                    else:
                        arbitration(node, "switch", len(ports))
                    winner_vc = next(v for p, v in contenders
                                     if p == winner_port)
                vc = vcs[winner_port][winner_vc]
                credits = out_credits[out_port]
                if credits is not None:
                    credits[vc.out_vc] -= 1
                matched_in |= 1 << winner_port
                matched_out |= 1 << out_port
                st_grants.append(
                    (winner_port, winner_vc, out_port, vc.out_vc))
            if len(stage1) == len(by_output):
                # Every stage-1 winner was matched: unmatched ports had
                # no candidates this iteration and cannot gain any, so
                # the next iteration is a no-op scan.
                break

    def _vc_allocation(self, cycle: int) -> List[Tuple[int, int]]:
        """Heads of idle VCs request one candidate output VC each.

        Returns the input VCs granted an output VC this cycle (used by
        the speculative subclass)."""
        requests: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        fast = self.sparse
        for in_port in range(self.PORTS):
            if fast and not self._va_mask[in_port]:
                continue
            for v, vc in enumerate(self.vcs[in_port]):
                if vc.active or not vc.fifo or \
                        vc.fifo[0].arrived_cycle >= cycle:
                    continue
                head = vc.fifo[0]
                if not head.is_head:
                    raise RuntimeError(
                        f"node {self.node} port {in_port} vc {v}: idle VC "
                        f"headed by a {head.ftype.name} flit"
                    )
                out_port = head.next_output_port()
                if self._faulted_out >> out_port & 1:
                    out_port = self._fault_redirect(head, in_port)
                candidate = self._pick_output_vc(head, out_port)
                if candidate is None:
                    continue
                requests.setdefault((out_port, candidate), []).append(
                    (in_port, v))
        granted: List[Tuple[int, int]] = []
        for (out_port, out_vc), reqs in requests.items():
            ids = [p * self.num_vcs + v for p, v in reqs]
            if fast and len(ids) == 1:
                winner_id = self.vc_arbiters[out_port][out_vc] \
                    .grant_single(ids[0])
            else:
                winner_id = self.vc_arbiters[out_port][out_vc].grant(ids)
            self.binding.arbitration(self.node, "vc", len(ids))
            in_port, v = divmod(winner_id, self.num_vcs)
            vc = self.vcs[in_port][v]
            vc.active = True
            vc.out_port = out_port
            vc.out_vc = out_vc
            self.out_vc_owner[out_port][out_vc] = (in_port, v)
            masked = self._va_mask[in_port] & ~(1 << v)
            self._va_mask[in_port] = masked
            if not masked:
                self._va_ports &= ~(1 << in_port)
            self._sa_mask[in_port] |= 1 << v
            self._sa_ports |= 1 << in_port
            granted.append((in_port, v))
        return granted

    def _vc_allocation_sparse(self, cycle: int) -> None:
        """Sparse-kernel VC allocation, event-for-event equivalent to
        :meth:`_vc_allocation`: the request scan walks the ``_va_mask``
        bitmasks (idle non-empty VCs, ascending — exactly the VCs the
        dense scan filters out of all V), which are almost always empty
        since a VC requests only between packets."""
        va_mask = self._va_mask
        vcs = self.vcs
        lowbit = self._lowbit
        requests: Optional[Dict[Tuple[int, int],
                                List[Tuple[int, int]]]] = None
        for in_port in range(self.PORTS):
            mask = va_mask[in_port]
            if not mask:
                continue
            port_vcs = vcs[in_port]
            while mask:
                v = lowbit[mask & -mask]
                mask &= mask - 1
                vc = port_vcs[v]
                head = vc.fifo[0]
                if head.arrived_cycle >= cycle:
                    continue
                if not head.is_head:
                    raise RuntimeError(
                        f"node {self.node} port {in_port} vc {v}: idle VC "
                        f"headed by a {head.ftype.name} flit"
                    )
                out_port = head.next_output_port()
                if self._faulted_out >> out_port & 1:
                    out_port = self._fault_redirect(head, in_port)
                candidate = self._pick_output_vc(head, out_port)
                if candidate is None:
                    continue
                if requests is None:
                    requests = {}
                requests.setdefault((out_port, candidate), []).append(
                    (in_port, v))
        if requests is None:
            return
        num_vcs = self.num_vcs
        arbitration = self.binding.arbitration
        c_vc = self._c_arb_vc
        for (out_port, out_vc), reqs in requests.items():
            if len(reqs) == 1:
                in_port, v = reqs[0]
                arb = self.vc_arbiters[out_port][out_vc]
                st = arb._fstamp
                if st is not None:
                    st[in_port * num_vcs + v] = arb._next
                    arb._next += 1
                else:
                    arb.grant_single(in_port * num_vcs + v)
                if c_vc is not None:
                    c_vc[1] += 1
                else:
                    arbitration(self.node, "vc", 1)
            else:
                ids = [p * num_vcs + v for p, v in reqs]
                arb = self.vc_arbiters[out_port][out_vc]
                st = arb._fstamp
                if st is not None and len(ids) == 2:
                    a, b = ids
                    winner_id = a if st[a] < st[b] else b
                    st[winner_id] = arb._next
                    arb._next += 1
                else:
                    winner_id = arb.grant(ids)
                if c_vc is not None:
                    c_vc[len(ids)] += 1
                else:
                    arbitration(self.node, "vc", len(ids))
                in_port, v = divmod(winner_id, num_vcs)
            vc = self.vcs[in_port][v]
            vc.active = True
            vc.out_port = out_port
            vc.out_vc = out_vc
            self.out_vc_owner[out_port][out_vc] = (in_port, v)
            masked = va_mask[in_port] & ~(1 << v)
            va_mask[in_port] = masked
            if not masked:
                self._va_ports &= ~(1 << in_port)
            self._sa_mask[in_port] |= 1 << v
            self._sa_ports |= 1 << in_port

    def _pick_output_vc(self, head: Flit, out_port: int) -> Optional[int]:
        """First free output VC in the head's allowed class, scanning from
        a packet-dependent start for load balance."""
        lo, hi = self._allowed_vc_range(head, out_port)
        owners = self.out_vc_owner[out_port]
        span = hi - lo
        start = (head.packet.packet_id + self.node) % span
        for i in range(span):
            candidate = lo + (start + i) % span
            if owners[candidate] is None:
                return candidate
        return None

    def _allowed_vc_range(self, head: Flit, out_port: int) -> Tuple[int, int]:
        """VC class restriction: [lo, hi) of usable output VCs."""
        if not self.dateline or out_port == LOCAL:
            return 0, self.num_vcs
        dim = "y" if out_port in (NORTH, SOUTH) else "x"
        crossed = head.crossed_dateline and head.travel_dim == dim
        half = self.num_vcs // 2
        return (half, self.num_vcs) if crossed else (0, half)

    def _update_dateline(self, head: Flit, out_port: int) -> None:
        """Track dateline crossings for the class restriction."""
        if not self.dateline or out_port == LOCAL or self.topo is None:
            return
        dim = "y" if out_port in (NORTH, SOUTH) else "x"
        if head.travel_dim != dim:
            head.travel_dim = dim
            head.crossed_dateline = False
        if self.topo.crosses_wrap_edge(self.node, out_port):
            head.crossed_dateline = True

    # --- injection --------------------------------------------------------------------

    def injection_space(self) -> int:
        return sum(self.vc_depth - len(vc.fifo)
                   for vc in self.vcs[LOCAL])

    def inject_flit(self, flit: Flit) -> bool:
        """Place one flit into an injection-port VC.

        A packet's flits all enter the same VC; heads pick the next VC
        (round-robin) with room for at least one flit.
        """
        if flit.is_head:
            chosen = None
            for i in range(self.num_vcs):
                v = (self._inject_rr + i) % self.num_vcs
                if len(self.vcs[LOCAL][v].fifo) < self.vc_depth:
                    chosen = v
                    break
            if chosen is None:
                return False
            self._inject_rr = (chosen + 1) % self.num_vcs
            self._inject_vc = chosen
        elif self._inject_vc is None:
            raise RuntimeError(
                f"node {self.node}: body flit injected with no open packet"
            )
        v = self._inject_vc
        if len(self.vcs[LOCAL][v].fifo) >= self.vc_depth:
            return False
        flit.vc = v
        self.accept_flit(LOCAL, flit)
        if flit.is_tail:
            self._inject_vc = None
        return True

    # --- introspection ----------------------------------------------------------------

    def buffered_flits(self) -> int:
        return sum(len(vc.fifo)
                   for port in self.vcs for vc in port)

    def reset(self) -> None:
        super().reset()
        for port_vcs in self.vcs:
            for vc in port_vcs:
                vc.fifo.clear()
                vc.active = False
                vc.out_port = None
                vc.out_vc = None
        for port in range(self.PORTS):
            self._sa_mask[port] = 0
            self._va_mask[port] = 0
            owners = self.out_vc_owner[port]
            for v in range(self.num_vcs):
                owners[v] = None
            credits = self.out_credits[port]
            if credits is not None:
                for v in range(self.num_vcs):
                    credits[v] = self.vc_depth
        self._sa_ports = 0
        self._va_ports = 0
        for arbiter in self.switch_arbiters:
            arbiter.reset()
        for arbiter in self.local_arbiters:
            arbiter.reset()
        for per_port in self.vc_arbiters:
            for arbiter in per_port:
                arbiter.reset()
        self._st_grants = []
        self._inject_vc = None
        self._inject_rr = 0

    def check_invariants(self) -> None:
        for port in range(self.PORTS):
            sa = va = 0
            for v, vc in enumerate(self.vcs[port]):
                if vc.fifo:
                    if vc.active:
                        sa |= 1 << v
                    else:
                        va |= 1 << v
            if self._sa_mask[port] != sa or self._va_mask[port] != va:
                raise RuntimeError(
                    f"node {self.node} port {port}: allocation masks "
                    f"(sa={self._sa_mask[port]:#x}, "
                    f"va={self._va_mask[port]:#x}) disagree with VC "
                    f"state (sa={sa:#x}, va={va:#x})"
                )
        sa_ports = va_ports = 0
        for port in range(self.PORTS):
            if self._sa_mask[port]:
                sa_ports |= 1 << port
            if self._va_mask[port]:
                va_ports |= 1 << port
        if self._sa_ports != sa_ports or self._va_ports != va_ports:
            raise RuntimeError(
                f"node {self.node}: port summaries "
                f"(sa={self._sa_ports:#x}, va={self._va_ports:#x}) "
                f"disagree with per-port masks "
                f"(sa={sa_ports:#x}, va={va_ports:#x})"
            )
