"""Speculative virtual-channel router (Peh & Dally [15], second half).

The paper pipelines its VC routers per the Peh-Dally delay model; the
same work proposes a *speculative* architecture that collapses the
pipeline from three stages to two: a head flit bids for the switch in
the same cycle it requests a virtual channel, the speculative switch
request being honoured only if (a) the VC allocation succeeds and (b)
no non-speculative request claimed the crossbar slot.

This router is the "new microarchitectural technique" usage pattern of
the paper's Figure 3 in action: it reuses the VC router's modules,
power models and allocation machinery, adding only the speculative
grant pass — heads save one cycle per hop, body flits are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.routers.vc import VCRouter


class SpeculativeVCRouter(VCRouter):
    """VC router with speculative switch allocation (2-stage pipeline)."""

    def allocation_phase(self, cycle: int) -> None:
        """Non-speculative SA, then VA, then a speculative SA pass for
        the heads that just won VA, restricted to crossbar slots the
        non-speculative pass left free (speculation never displaces a
        confirmed request)."""
        matched_in, matched_out = self._switch_allocation(cycle)
        fresh = self._vc_allocation(cycle)
        self._speculative_switch_allocation(cycle, fresh, matched_in,
                                            matched_out)

    def _speculative_switch_allocation(self, cycle: int,
                                       fresh: List[Tuple[int, int]],
                                       matched_in: set,
                                       matched_out: set) -> None:
        by_output: Dict[int, List[Tuple[int, int]]] = {}
        for in_port, v in fresh:
            if in_port in matched_in:
                continue
            vc = self.vcs[in_port][v]
            if vc.out_port in matched_out:
                continue
            credits = self.out_credits[vc.out_port]
            if credits is not None and credits[vc.out_vc] <= 0:
                continue
            by_output.setdefault(vc.out_port, []).append((in_port, v))
        for out_port, contenders in by_output.items():
            # One speculative winner per free output; inputs granted a
            # speculative slot leave the pool (one grant per input).
            contenders = [(p, v) for p, v in contenders
                          if p not in matched_in]
            if not contenders:
                continue
            ports = [p for p, _ in contenders]
            if self.sparse and len(ports) == 1:
                winner_port = self.switch_arbiters[out_port] \
                    .grant_single(ports[0])
            else:
                winner_port = self.switch_arbiters[out_port].grant(ports)
            self.binding.arbitration(self.node, "switch", len(ports))
            winner_vc = next(v for p, v in contenders
                             if p == winner_port)
            vc = self.vcs[winner_port][winner_vc]
            credits = self.out_credits[out_port]
            if credits is not None:
                credits[vc.out_vc] -= 1
            matched_in.add(winner_port)
            matched_out.add(out_port)
            self._st_grants.append(
                (winner_port, winner_vc, out_port, vc.out_vc))
