"""Wormhole router: one FIFO per input port, 2-stage pipeline (SA, ST).

This is the router of the paper's section 3.3 walkthrough and the WH64
configuration of section 4.2: a head flit arbitrates for its output port
(switch arbitration, one 4:1 arbiter per output port — no u-turns); once
granted, the input holds the output until the tail flit passes, and flits
stream through the crossbar one per cycle as downstream credits allow.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.config import NetworkConfig
from repro.sim.arbiters import make_arbiter
from repro.sim.message import Flit
from repro.sim.routers.base import BaseRouter
from repro.sim.topology import LOCAL


class WormholeRouter(BaseRouter):
    """Input-buffered wormhole router."""

    def __init__(self, node: int, config: NetworkConfig, binding,
                 sparse: bool = False) -> None:
        super().__init__(node, config, binding, sparse)
        depth = config.router.buffer_depth
        self.fifos: List[Deque[Flit]] = [deque() for _ in range(self.PORTS)]
        self.depth = depth
        #: Input port currently owning each output port (None = free).
        self.out_owner: List[Optional[int]] = [None] * self.PORTS
        #: Output port each input is connected to (None = idle).
        self.in_conn: List[Optional[int]] = [None] * self.PORTS
        #: Credits available at the downstream buffer of each output.
        #: ``None`` means unlimited (the ejection port).
        self.out_credits: List[Optional[int]] = [None] * self.PORTS
        self.arbiters = [
            make_arbiter(config.router.arbiter_type, self.PORTS,
                         fast=sparse)
            for _ in range(self.PORTS)
        ]

    # --- wiring ------------------------------------------------------------

    def set_downstream_depth(self, port: int, flits: int,
                             num_vcs: int = 1) -> None:
        if port == LOCAL:
            raise ValueError("ejection port has unlimited credits")
        self.out_credits[port] = flits

    # --- arrivals ------------------------------------------------------------

    def accept_flit(self, port: int, flit: Flit) -> None:
        fifo = self.fifos[port]
        if len(fifo) >= self.depth:
            raise RuntimeError(
                f"node {self.node} port {port}: buffer overflow — credit "
                f"accounting is broken"
            )
        flit.arrived_cycle = self.now
        fifo.append(flit)
        self._buffered += 1
        self.binding.buffer_write(self.node, port, flit.payload)

    def credit_return(self, port: int, vc: int) -> None:
        if self.out_credits[port] is None:
            raise RuntimeError(
                f"node {self.node}: credit on un-wired output {port}"
            )
        self.out_credits[port] += 1
        if self.out_credits[port] > self.depth:
            raise RuntimeError(
                f"node {self.node} output {port}: credit overflow"
            )

    # --- pipeline stages ---------------------------------------------------------

    def traversal_phase(self, cycle: int) -> None:
        """ST: stream one flit per established connection, credits
        permitting."""
        for out_port in range(self.PORTS):
            in_port = self.out_owner[out_port]
            if in_port is None:
                continue
            fifo = self.fifos[in_port]
            if not fifo or fifo[0].arrived_cycle >= cycle:
                continue
            credits = self.out_credits[out_port]
            if out_port != LOCAL and credits is not None and credits <= 0:
                continue
            flit = fifo.popleft()
            self._buffered -= 1
            self.binding.buffer_read(self.node)
            self.binding.xbar_traversal(self.node, out_port, flit.payload)
            if out_port != LOCAL and credits is not None:
                self.out_credits[out_port] = credits - 1
            channel = self.in_channels[in_port]
            if channel is not None:
                channel.send_credit(0)
            if flit.is_tail:
                self.out_owner[out_port] = None
                self.in_conn[in_port] = None
            self._send(out_port, flit)

    def allocation_phase(self, cycle: int) -> None:
        """SA: head flits at FIFO heads arbitrate for free output ports."""
        # Gather requests per free output port.
        requests: List[List[int]] = [[] for _ in range(self.PORTS)]
        for in_port in range(self.PORTS):
            if self.in_conn[in_port] is not None:
                continue
            fifo = self.fifos[in_port]
            if not fifo or fifo[0].arrived_cycle >= cycle:
                continue
            head = fifo[0]
            if not head.is_head:
                raise RuntimeError(
                    f"node {self.node} port {in_port}: unconnected input "
                    f"headed by a {head.ftype.name} flit"
                )
            out_port = head.next_output_port()
            if self._faulted_out >> out_port & 1:
                out_port = self._fault_redirect(head, in_port)
            if out_port == in_port and out_port != LOCAL:
                # LOCAL->LOCAL only arises from fault drops at the
                # source; hardware-port u-turns stay protocol violations.
                raise RuntimeError(
                    f"node {self.node}: u-turn on port {in_port}"
                )
            if self.out_owner[out_port] is None:
                requests[out_port].append(in_port)
        for out_port, reqs in enumerate(requests):
            if not reqs:
                continue
            if self.sparse and len(reqs) == 1:
                winner = self.arbiters[out_port].grant_single(reqs[0])
            else:
                winner = self.arbiters[out_port].grant(reqs)
            self.binding.arbitration(self.node, "switch", len(reqs))
            self.out_owner[out_port] = winner
            self.in_conn[winner] = out_port

    # --- injection / introspection -------------------------------------------------

    def injection_space(self) -> int:
        return self.depth - len(self.fifos[LOCAL])

    def buffered_flits(self) -> int:
        return sum(len(f) for f in self.fifos)

    def reset(self) -> None:
        super().reset()
        for fifo in self.fifos:
            fifo.clear()
        for port in range(self.PORTS):
            self.out_owner[port] = None
            self.in_conn[port] = None
            if self.out_credits[port] is not None:
                self.out_credits[port] = self.depth
        for arbiter in self.arbiters:
            arbiter.reset()
