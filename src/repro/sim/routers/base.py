"""Shared router machinery: ports, channels and the phase protocol.

Routers are cycle-driven.  Each simulated cycle the network calls, on
every router in turn:

1. ``arrival_phase``   — drain data/credit channels written last cycle;
2. ``traversal_phase`` — execute switch traversals granted last cycle
   (the ST pipeline stage);
3. ``allocation_phase``— arbitrate for next cycle (SA, and VA for VC
   routers);

followed by source injection handled by the network.  This ordering gives
each pipeline stage a one-cycle latency: a grant issued during allocation
in cycle *t* is acted on during traversal in cycle *t+1*, matching the
2-stage wormhole and 3-stage virtual-channel pipelines of the paper
(section 4.2, per the Peh-Dally router delay model).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import NetworkConfig
from repro.sim.message import Flit
from repro.sim.routing import route_around_faults
from repro.sim.topology import LOCAL


class Channel:
    """A unidirectional inter-router channel with one-cycle propagation,
    plus the reverse credit wire (also one cycle, per section 4.1)."""

    def __init__(self, src_node: int, src_port: int, dst_node: int,
                 dst_port: int) -> None:
        self.src_node = src_node
        self.src_port = src_port
        self.dst_node = dst_node
        self.dst_port = dst_port
        self._flit: Optional[Flit] = None
        self._credits: List[int] = []
        #: Lifetime flits placed on this wire.  A flit sent during cycle
        #: t is exactly the flit a post-step ``busy`` scan observes after
        #: cycle t (drained at t+1), so send counts reproduce per-cycle
        #: utilization scans without scanning (see NetworkMonitor).
        self.flits_sent = 0
        #: Sparse-kernel wiring (installed by the network): placing a
        #: flit / credit on the wire marks the endpoint router's pending
        #: bitmask and enrols it in the network's active set for the next
        #: cycle.  Inline fields rather than a callback hook — the
        #: notification fires once per flit and once per credit, so the
        #: per-event cost is kept to a few attribute operations.
        self.flit_router = None
        self.flit_bit = 0
        self.credit_router = None
        self.credit_bit = 0
        self.active_set: Optional[set] = None

    def send_flit(self, flit: Flit) -> None:
        """Place a flit on the wire (at most one per cycle)."""
        if self._flit is not None:
            raise RuntimeError(
                f"channel {self.src_node}:{self.src_port}->"
                f"{self.dst_node}:{self.dst_port} already carries a flit"
            )
        self._flit = flit
        self.flits_sent += 1
        router = self.flit_router
        if router is not None:
            router._pending_in |= self.flit_bit
            self.active_set.add(router.node)

    def take_flit(self) -> Optional[Flit]:
        """Remove and return the in-flight flit (receiver side)."""
        flit, self._flit = self._flit, None
        return flit

    def send_credit(self, vc: int) -> None:
        """Return one credit upstream for the given VC."""
        self._credits.append(vc)
        router = self.credit_router
        if router is not None:
            router._pending_credit |= self.credit_bit
            self.active_set.add(router.node)

    def take_credits(self) -> List[int]:
        """Drain pending credits (sender side)."""
        credits, self._credits = self._credits, []
        return credits

    @property
    def busy(self) -> bool:
        """Whether a flit is currently in flight."""
        return self._flit is not None

    def reset(self) -> None:
        """Drop in-flight traffic and zero lifetime counters, leaving
        the notifier wiring intact (simulation-context reuse)."""
        self._flit = None
        self._credits = []
        self.flits_sent = 0


class BaseRouter:
    """Common state and wiring for all router microarchitectures."""

    PORTS = 5

    def __init__(self, node: int, config: NetworkConfig, binding,
                 sparse: bool = False) -> None:
        self.node = node
        self.config = config
        self.binding = binding
        #: Incoming channels by input port (None where no neighbour).
        self.in_channels: List[Optional[Channel]] = [None] * self.PORTS
        #: Outgoing channels by output port (None for LOCAL / no
        #: neighbour).
        self.out_channels: List[Optional[Channel]] = [None] * self.PORTS
        #: Ejection callback installed by the network: ``eject(flit)``.
        self.eject: Callable[[Flit], None] = _unwired_eject
        #: Count of flits that moved this cycle (deadlock watchdog food).
        self.moved_flits = 0
        #: Current cycle, updated at the start of each arrival phase and
        #: stamped onto arriving flits for stage-eligibility checks.
        self.now = 0
        #: Event-sparse scheduling (chosen by the network's kernel): the
        #: router is stepped only while it can do work, arrivals are
        #: driven by the pending bitmasks below, and hot loops may take
        #: semantically-equivalent fast paths.
        self.sparse = sparse
        #: Bitmask of input ports whose channel carries an undrained flit.
        self._pending_in = 0
        #: Bitmask of output ports whose channel holds undrained credits.
        self._pending_credit = 0
        #: Flits currently buffered in this router, maintained O(1) —
        #: must always equal :meth:`buffered_flits` (audited).
        self._buffered = 0
        #: Back-reference to the owning network, installed during wiring
        #: (fault handling consults topology and global fault state).
        self.network = None
        #: Bitmask of output ports whose link is currently faulted: new
        #: allocations to these ports are refused and redirected through
        #: :meth:`_fault_redirect`.  Zero on a healthy router, so the
        #: per-allocation check is a single falsy bit test.
        self._faulted_out = 0
        #: Whether a ``router_freeze`` fault has halted this router's
        #: work phases (see :meth:`freeze`).
        self.frozen = False
        self._thaw_state = None
        #: Counter-based binding fast path (see CounterBinding): the
        #: per-node link-event counter list, bumped directly in ``_send``
        #: instead of a sink-method call.  ``None`` on any other binding.
        self._c_link = getattr(binding, "n_link", None) if sparse else None
        if sparse:
            # Skip the per-call dense/sparse branch in the hot loop.
            self.arrival_phase = self._arrival_phase_sparse

    # --- wiring (done by the network) ---------------------------------------

    def connect_in(self, port: int, channel: Channel) -> None:
        if self.in_channels[port] is not None:
            raise RuntimeError(f"node {self.node} input {port} already wired")
        self.in_channels[port] = channel

    def connect_out(self, port: int, channel: Channel) -> None:
        if self.out_channels[port] is not None:
            raise RuntimeError(f"node {self.node} output {port} already wired")
        self.out_channels[port] = channel

    def set_downstream_depth(self, port: int, flits: int,
                             num_vcs: int = 1) -> None:
        """Initialise credit counters for the buffer at the far end of
        output ``port``.  Subclasses override to store the counters."""
        raise NotImplementedError

    @property
    def out_degree(self) -> int:
        """Number of outgoing inter-router links (for constant-power link
        accounting)."""
        return sum(1 for c in self.out_channels if c is not None)

    # --- the phase protocol ---------------------------------------------------

    def arrival_phase(self, cycle: int) -> None:
        """Drain channels: incoming flits into buffers, credits back.

        Sparse instances have :meth:`_arrival_phase_sparse` pre-bound
        over this method."""
        self.now = cycle
        for port in range(self.PORTS):
            channel = self.in_channels[port]
            if channel is not None:
                flit = channel.take_flit()
                if flit is not None:
                    self.accept_flit(port, flit)
            channel = self.out_channels[port]
            if channel is not None:
                for vc in channel.take_credits():
                    self.credit_return(port, vc)

    def _arrival_phase_sparse(self, cycle: int) -> None:
        """Event-driven channel drain: the notifiers recorded exactly
        which ports have work, so only those are touched.  Port order
        (ascending, flits before credits) leaves all observable state
        identical to the dense scan: each port's buffers and credit
        counters are disjoint."""
        self.now = cycle
        pending = self._pending_in
        if pending:
            self._pending_in = 0
            in_channels = self.in_channels
            port = 0
            while pending:
                if pending & 1:
                    flit = in_channels[port].take_flit()
                    if flit is not None:
                        self.accept_flit(port, flit)
                pending >>= 1
                port += 1
        pending = self._pending_credit
        if pending:
            self._pending_credit = 0
            out_channels = self.out_channels
            port = 0
            while pending:
                if pending & 1:
                    for vc in out_channels[port].take_credits():
                        self.credit_return(port, vc)
                pending >>= 1
                port += 1

    def accept_flit(self, port: int, flit: Flit) -> None:
        """Store an arriving flit into the input buffer at ``port``."""
        raise NotImplementedError

    def credit_return(self, port: int, vc: int) -> None:
        """A downstream buffer slot freed up on output ``port``."""
        raise NotImplementedError

    def traversal_phase(self, cycle: int) -> None:
        """Execute the switch traversals granted last cycle."""
        raise NotImplementedError

    def allocation_phase(self, cycle: int) -> None:
        """Arbitrate resources for next cycle."""
        raise NotImplementedError

    def work_phase(self, cycle: int) -> None:
        """Traversal then allocation — the per-router work pass of the
        sparse kernel's cycle loop.  Subclasses may bind a fused
        implementation over this instance attribute; the phases stay
        individually callable (and are what the dense kernel drives)."""
        self.traversal_phase(cycle)
        self.allocation_phase(cycle)

    # --- injection (called by the network's source processes) ----------------

    def injection_space(self) -> int:
        """Free flit slots at the injection (LOCAL) input port."""
        raise NotImplementedError

    def inject_flit(self, flit: Flit) -> bool:
        """Offer one flit to the injection port; returns acceptance."""
        if self.injection_space() <= 0:
            return False
        self.accept_flit(LOCAL, flit)
        return True

    # --- introspection ---------------------------------------------------------

    def buffered_flits(self) -> int:
        """Total flits currently buffered in this router."""
        raise NotImplementedError

    def check_invariants(self) -> None:
        """Verify maintained fast-path state against the structures it
        shadows (called by :meth:`repro.sim.network.Network.audit`).
        Subclasses with extra maintained state override and raise on
        mismatch."""

    def reset(self) -> None:
        """Restore construction-time dynamic state in place, keeping all
        wiring (channels, eject, network back-reference, sparse phase
        bindings and counter-list aliases).

        Subclasses extend this with their buffer/allocator state; after
        ``reset()`` the router must behave cycle-for-cycle like a freshly
        constructed one (the contract :meth:`Network.reset` builds on).
        """
        self.thaw()
        self.moved_flits = 0
        self.now = 0
        self._pending_in = 0
        self._pending_credit = 0
        self._buffered = 0
        self._faulted_out = 0

    # --- fault handling --------------------------------------------------------

    _FROZEN_NAMES = ("work_phase", "traversal_phase", "allocation_phase",
                     "inject_flit")

    def freeze(self) -> None:
        """Halt this router's work phases (a modelled hard fault).

        The arrival phase stays live: an incoming wire cannot hold two
        flits, so in-flight flits must still land in the (already
        credit-reserved) input buffers — backpressure then builds through
        withheld credits, exactly as a wedged pipeline behaves.
        Traversal, allocation and injection stop dead via instance-method
        swaps, keeping the healthy-router fast paths untouched."""
        if self.frozen:
            return
        self.frozen = True
        # Some routers bind fused/sparse twins as instance attributes in
        # __init__; save whatever instance-level bindings exist (None
        # marks "was a plain class method") and stub all four over.
        self._thaw_state = {name: self.__dict__.pop(name, None)
                            for name in self._FROZEN_NAMES}
        for name in self._FROZEN_NAMES[:-1]:
            setattr(self, name, _frozen_phase)
        self.inject_flit = _frozen_inject

    def thaw(self) -> None:
        """Undo :meth:`freeze`, restoring the saved phase bindings."""
        if not self.frozen:
            return
        self.frozen = False
        saved, self._thaw_state = self._thaw_state, None
        for name in self._FROZEN_NAMES:
            del self.__dict__[name]
            if saved[name] is not None:
                self.__dict__[name] = saved[name]

    def _fault_redirect(self, head: Flit, in_port: int) -> int:
        """The head's routed output port is faulted: detour around the
        dead link (policy ``"misroute"``) or convert the packet into a
        drop streamed to the local ejector (policy ``"drop"``, or when
        no detour exists).  The packet's route is rewritten in place so
        the decision is made once per redirect; returns the replacement
        output port for the current hop."""
        network = self.network
        packet = head.packet
        idx = head.route_idx
        if network.fault_policy == "misroute":
            detour = route_around_faults(
                network.topo, self.node, packet.dst, in_port,
                self._faulted_out, network.faulted_links,
                self.config.tie_break)
            if detour is not None:
                packet.route = packet.route[:idx] + detour
                network.packets_misrouted += 1
                network.node_packets_misrouted[self.node] += 1
                return detour[0]
        packet.dropped = True
        packet.route = packet.route[:idx] + [LOCAL]
        return LOCAL

    def _send(self, out_port: int, flit: Flit) -> None:
        """Ship a flit: eject locally or launch onto the outgoing link,
        emitting the link-traversal event."""
        self.moved_flits += 1
        if out_port == LOCAL:
            self.eject(flit)
            return
        if flit.is_head:
            flit.route_idx += 1
        channel = self.out_channels[out_port]
        if channel is None:
            raise RuntimeError(
                f"node {self.node}: no channel on output port {out_port}"
            )
        counts = self._c_link
        if counts is not None:
            counts[self.node] += 1
        else:
            self.binding.link_traversal(self.node, out_port, flit.payload)
        channel.send_flit(flit)


def _unwired_eject(flit: Flit) -> None:
    raise RuntimeError("router ejection callback not wired to a network")


# Module-level (hence picklable) stubs installed by ``freeze``.

def _frozen_phase(cycle: int) -> None:
    """A frozen router does no traversal, allocation or fused work."""


def _frozen_inject(flit: Flit) -> bool:
    """A frozen router accepts no locally-injected flits."""
    return False
