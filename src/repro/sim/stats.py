"""Latency and throughput statistics (paper section 4.1).

Latency "spans from when the first flit of the packet is created, to when
its last flit is ejected at the destination node, including source queuing
time".  Saturation throughput is "the point at which average packet
latency increases to more than twice zero-load latency".
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.message import Packet


def _warn_empty(metric: str) -> None:
    warnings.warn(
        f"latency {metric} requested with no sample packets recorded; "
        f"returning NaN", RuntimeWarning, stacklevel=3)


@dataclass
class LatencyStats:
    """Accumulates per-packet latencies for the measured sample."""

    latencies: List[int] = field(default_factory=list)

    def record(self, packet: Packet) -> None:
        """Record a completed sample packet."""
        self.latencies.append(packet.latency)

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def average(self) -> float:
        """Mean packet latency in cycles (NaN, with a warning, when no
        sample packets completed — a saturated sweep point should record
        a hole, not crash the sweep)."""
        if not self.latencies:
            _warn_empty("average")
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    @property
    def maximum(self) -> float:
        if not self.latencies:
            _warn_empty("maximum")
            return math.nan
        return max(self.latencies)

    @property
    def minimum(self) -> float:
        if not self.latencies:
            _warn_empty("minimum")
            return math.nan
        return min(self.latencies)

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank).

        Like the other summary statistics, an empty sample degrades to
        NaN with a warning rather than raising — so a saturated sweep
        point records a hole instead of killing the sweep's export.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.latencies:
            _warn_empty(f"percentile({q:g})")
            return math.nan
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return float(ordered[rank - 1])


def is_saturated(average_latency: float, zero_load_latency: float) -> bool:
    """The paper's saturation criterion: latency above twice zero-load."""
    if zero_load_latency <= 0:
        raise ValueError(
            f"zero-load latency must be positive, got {zero_load_latency}"
        )
    return average_latency > 2.0 * zero_load_latency


def saturation_rate(rates: Sequence[float], latencies: Sequence[float],
                    zero_load_latency: float,
                    interpolate: bool = False) -> Optional[float]:
    """First injection rate in a sweep whose latency exceeds twice the
    zero-load latency; ``None`` if the sweep never saturates.

    With ``interpolate=True`` the crossing is linearly interpolated
    between the last unsaturated sample and the first saturated one,
    giving sub-grid-step resolution.  The first sample saturating
    outright (no unsaturated point below it) returns its rate as-is.
    """
    if len(rates) != len(latencies):
        raise ValueError("rates and latencies must have equal length")
    threshold = 2.0 * zero_load_latency
    previous: Optional[tuple] = None
    for rate, latency in sorted(zip(rates, latencies)):
        if is_saturated(latency, zero_load_latency):
            if not interpolate or previous is None:
                return rate
            prev_rate, prev_latency = previous
            if not latency > prev_latency:
                return rate
            frac = (threshold - prev_latency) / (latency - prev_latency)
            return prev_rate + frac * (rate - prev_rate)
        previous = (rate, latency)
    return None


def zero_load_latency_estimate(avg_hops: float, pipeline_stages: int,
                               packet_length_flits: int,
                               link_cycles: int = 1) -> float:
    """Analytic zero-load latency for an uncontended network.

    The head flit pays the full pipeline plus the link at every hop (and
    the pipeline once more to eject at the destination), then the
    remaining flits stream out one per cycle.
    """
    per_hop = pipeline_stages + link_cycles
    head = avg_hops * per_hop + pipeline_stages
    return head + (packet_length_flits - 1)
