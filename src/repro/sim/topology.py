"""Network topologies: 2-D torus and mesh.

The paper's experiments use a 16-node 4x4 torus (Figure 4) where each
router has five physical bidirectional ports: north, south, east, west and
injection/ejection.  Nodes are labelled in a 2-D Cartesian space with
tuples ``(x, y)``.

Port numbering convention (shared by routers and routing):
``NORTH=0, SOUTH=1, EAST=2, WEST=3, LOCAL=4`` — LOCAL is the
injection/ejection port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

NORTH, SOUTH, EAST, WEST, LOCAL = 0, 1, 2, 3, 4

PORT_NAMES = {NORTH: "north", SOUTH: "south", EAST: "east", WEST: "west",
              LOCAL: "local"}

#: The input port a flit arrives on after leaving through a given output
#: port (north output feeds the neighbour's south input, etc.).
OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


@dataclass(frozen=True)
class Topology:
    """Base 2-D grid topology of ``width x height`` nodes."""

    width: int
    height: int
    wraparound: bool

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(
                f"topology needs at least 2x2 nodes, got "
                f"{self.width}x{self.height}"
            )

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def router_ports(self) -> int:
        """Physical ports per router (4 directions + local)."""
        return 5

    def coords(self, node: int) -> Tuple[int, int]:
        """Node id -> ``(x, y)``."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """``(x, y)`` -> node id."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def neighbor(self, node: int, port: int) -> Optional[int]:
        """Node reached by leaving ``node`` through ``port``.

        Returns ``None`` for the LOCAL port or, in a mesh, for a port off
        the edge of the grid.
        """
        self._check_node(node)
        if port == LOCAL:
            return None
        x, y = self.coords(node)
        if port == NORTH:
            y += 1
        elif port == SOUTH:
            y -= 1
        elif port == EAST:
            x += 1
        elif port == WEST:
            x -= 1
        else:
            raise ValueError(f"unknown port {port}")
        if self.wraparound:
            x %= self.width
            y %= self.height
        elif not (0 <= x < self.width and 0 <= y < self.height):
            return None
        return self.node_at(x, y)

    def channels(self) -> Iterator[Tuple[int, int, int]]:
        """All directed channels as ``(src_node, out_port, dst_node)``."""
        for node in range(self.num_nodes):
            for port in (NORTH, SOUTH, EAST, WEST):
                dst = self.neighbor(node, port)
                if dst is not None:
                    yield node, port, dst

    def crosses_wrap_edge(self, node: int, port: int) -> bool:
        """Whether leaving ``node`` through ``port`` uses a wraparound
        channel (the ring's dateline, for deadlock-avoidance logic)."""
        if not self.wraparound or port == LOCAL:
            return False
        x, y = self.coords(node)
        return (
            (port == NORTH and y == self.height - 1)
            or (port == SOUTH and y == 0)
            or (port == EAST and x == self.width - 1)
            or (port == WEST and x == 0)
        )

    def manhattan_distance(self, a: int, b: int) -> int:
        """Hop distance between two nodes under minimal routing."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        if self.wraparound:
            dx = min(dx, self.width - dx)
            dy = min(dy, self.height - dy)
        return dx + dy

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(
                f"node {node} outside 0..{self.num_nodes - 1}"
            )


class Torus(Topology):
    """k-ary 2-cube: 2-D grid with wraparound channels (paper Figure 4)."""

    def __init__(self, width: int, height: Optional[int] = None) -> None:
        super().__init__(width, height if height is not None else width, True)


class Mesh(Topology):
    """2-D grid without wraparound channels."""

    def __init__(self, width: int, height: Optional[int] = None) -> None:
        super().__init__(width, height if height is not None else width, False)


def topology_for(config) -> Topology:
    """Build the :class:`Topology` a ``NetworkConfig`` describes.

    Duck-typed on ``.topology``/``.width``/``.height`` so the core
    configuration layer need not import the simulator.
    """
    if config.topology == "torus":
        return Torus(config.width, config.height)
    if config.topology == "mesh":
        return Mesh(config.width, config.height)
    raise ValueError(f"unknown topology {config.topology!r}")
