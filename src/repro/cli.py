"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points:

* ``presets``    — list the paper's named configurations;
* ``run``        — one simulation: latency, power, breakdown, spatial map;
* ``sweep``      — latency/power versus injection rate (any traffic kind);
* ``experiment`` — orchestrated grid of (preset × traffic × rate × seed)
  points with multiprocessing, on-disk result caching and per-point
  failure isolation;
* ``report``     — render a recorded telemetry JSONL file (component
  breakdown, spatial map, time series, engine phase spans);
* ``serve``      — long-lived asyncio HTTP job service (queue, dedup,
  progress streaming, graceful drain; see :mod:`repro.serve`);
* ``submit``     — send a run/estimate/experiment job to a warm server;
* ``cache``      — result-cache maintenance (stats, LRU prune, clear);
* ``power``      — standalone power analysis (section 3.3 walkthrough);
* ``delay``      — pipeline/frequency analysis (Peh-Dally delay model);
* ``validate``   — section 3.2 ballpark checks against commercial routers.

Failures are consistent: every handler either returns a non-zero exit
code or raises an error that :func:`main` turns into ``error: ...`` on
stderr and exit code 1 — never a traceback for predictable bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.config import RunProtocol
from repro.core.orion import Orion
from repro.core.presets import PRESETS, preset
from repro.core.export import (
    experiment_to_csv,
    result_to_json,
    spatial_to_csv,
    sweep_to_csv,
)
from repro.core.report import breakdown_table, format_power, spatial_table
from repro.delay import RouterDelayModel
from repro.sim.topology import topology_for
from repro.sim.traffic import TRAFFIC_REGISTRY, make_traffic, traffic_names

TRAFFIC_KINDS = traffic_names()


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected with a clear usage
    error instead of a traceback deep in the pool."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") \
            from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") \
            from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a number > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") \
            from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _traffic_extras(traffic: str, args) -> dict:
    """Map CLI flags onto the registry-declared parameters of one
    traffic kind (``--source`` feeds broadcast's ``source`` and
    hotspot's ``hotspot``; declared defaults cover the rest)."""
    if traffic not in TRAFFIC_REGISTRY:
        raise SystemExit(
            f"error: unknown traffic {traffic!r}; "
            f"options: {', '.join(traffic_names())}")
    extras = {}
    for param in TRAFFIC_REGISTRY[traffic].params:
        if param.name in ("source", "hotspot"):
            extras[param.name] = args.source
    return extras


def _make_traffic(args, config):
    return make_traffic(args.traffic, topology_for(config), args.rate,
                        seed=args.seed, **_traffic_extras(args.traffic, args))


def _protocol(args, **overrides) -> RunProtocol:
    fields = dict(warmup_cycles=args.warmup, sample_packets=args.sample,
                  seed=getattr(args, "seed", 1),
                  kernel=getattr(args, "kernel", "sparse"))
    faults = _fault_spec(args)
    if faults is not None:
        fields["faults"] = faults
        # Faulted fabrics can legitimately stall (e.g. a frozen router
        # holding traffic); report that as a status unless overridden.
        fields["on_stall"] = getattr(args, "on_stall", None) or "finish"
        fields["livelock_cycles"] = 50_000
    elif getattr(args, "on_stall", None):
        fields["on_stall"] = args.on_stall
    fields.update(overrides)
    return RunProtocol(**fields)


def _fault_spec(args):
    specs = getattr(args, "faults", None)
    if not specs:
        return None
    from repro.faults import parse_fault_specs
    return parse_fault_specs(specs,
                             seed=getattr(args, "fault_seed", 0),
                             policy=getattr(args, "fault_policy",
                                            "misroute"))


def _config(args, name: Optional[str] = None):
    cfg = preset(name or args.preset)
    overrides = {}
    if getattr(args, "leakage", False):
        overrides["include_leakage"] = True
    if getattr(args, "activity", None):
        overrides["activity_mode"] = args.activity
    if overrides:
        cfg = cfg.with_(**overrides)
    return cfg


def cmd_presets(args) -> int:
    print(f"{'name':<8} {'router':<10} {'flit':>5} {'buffering':>24} "
          f"{'link':<14} {'clock':>8}")
    for name in sorted(PRESETS):
        cfg = preset(name)
        rc = cfg.router
        if rc.kind == "vc":
            buffering = f"{rc.num_vcs} VC x {rc.buffer_depth} flits"
        elif rc.kind == "central":
            buffering = (f"CB {rc.cb_banks}x{rc.cb_rows} + "
                         f"{rc.buffer_depth}/port")
        else:
            buffering = f"{rc.buffer_depth} flits/port"
        print(f"{name:<8} {rc.kind:<10} {rc.flit_bits:>5} "
              f"{buffering:>24} {cfg.link.kind:<14} "
              f"{cfg.tech.frequency_hz / 1e9:>6.1f}G")
    return 0


def cmd_run(args) -> int:
    cfg = _config(args)
    orion = Orion(cfg)
    window = args.telemetry_window
    if window == 0 and (args.telemetry_jsonl or args.telemetry_csv):
        from repro.telemetry import DEFAULT_WINDOW
        window = DEFAULT_WINDOW
    result = orion.run(_make_traffic(args, cfg),
                       _protocol(args, monitor=args.monitor,
                                 telemetry_window=window))
    per_node = TRAFFIC_REGISTRY[args.traffic].per_node
    print(f"config:        {args.preset} ({cfg.router.kind})")
    print(f"traffic:       {args.traffic} at {args.rate} pkt/cycle"
          f"{'/node' if per_node else ''}")
    if args.faults or result.status != "ok":
        print(f"status:        {result.status}")
    if args.faults:
        print(f"faults:        {len(args.faults)} spec(s), "
              f"policy={args.fault_policy}; "
              f"{result.packets_misrouted} packets misrouted, "
              f"{result.packets_dropped} packets "
              f"({result.flits_dropped} flits) dropped, "
              f"{result.sample_dropped} sample packets lost")
    print(f"sample:        {result.sample_packets} packets over "
          f"{result.measured_cycles} measured cycles")
    print(f"avg latency:   {result.avg_latency:.2f} cycles")
    print(f"p99 latency:   {result.latency.percentile(99):.0f} cycles")
    print(f"throughput:    {result.throughput_flits_per_cycle:.3f} "
          f"flits/cycle")
    print(f"total power:   {format_power(result.total_power_w)}")
    print()
    print(breakdown_table(result))
    if args.monitor:
        print("\noccupancy/utilization:")
        print(result.monitor.report())
    if args.spatial:
        print("\nper-node power:")
        print(spatial_table(result))
    if result.telemetry is not None:
        from repro.telemetry import telemetry_to_csv, telemetry_to_jsonl
        record = result.telemetry
        print(f"\ntelemetry: {record.num_windows} windows of "
              f"{record.window} cycles recorded "
              f"(render with 'repro report')")
        if args.telemetry_jsonl:
            telemetry_to_jsonl(record, args.telemetry_jsonl)
            print(f"wrote {args.telemetry_jsonl}")
        if args.telemetry_csv:
            telemetry_to_csv(record, args.telemetry_csv)
            print(f"wrote {args.telemetry_csv}")
    if args.json:
        result_to_json(result, args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        spatial_to_csv(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_sweep(args) -> int:
    cfg = _config(args)
    orion = Orion(cfg)
    rates = [float(r) for r in args.rates.split(",")]
    sweep = orion.sweep_traffic(args.traffic, rates, _protocol(args),
                                label=args.preset,
                                processes=args.processes,
                                **_traffic_extras(args.traffic, args))
    print(sweep.table())
    if args.csv:
        sweep_to_csv(sweep, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_experiment(args) -> int:
    from repro.exp import ExperimentSpec, ResultCache, TrafficSpec, \
        run_experiment

    names = [n.strip() for n in args.presets.split(",")]
    configs = {name: _config(args, name) for name in names}
    traffics = [TrafficSpec.of(t.strip(),
                               **_traffic_extras(t.strip(), args))
                for t in args.traffic.split(",")]
    seeds = [int(s) for s in args.seeds.split(",")]
    protocol = RunProtocol(warmup_cycles=args.warmup,
                           sample_packets=args.sample, monitor=False,
                           kernel=args.kernel)
    if args.rates.strip() == "auto":
        spec = _guided_points(configs, traffics, seeds, protocol,
                              args.grid_points, quiet=args.quiet)
    else:
        rates = [float(r) for r in args.rates.split(",")]
        spec = ExperimentSpec.of(configs, traffics, rates, seeds,
                                 protocol=protocol)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def show(progress) -> None:
        outcome = progress.outcome
        status = "cached" if outcome.from_cache else \
            f"{outcome.wall_seconds:6.2f}s"
        if outcome.ok:
            body = (f"lat={outcome.avg_latency:8.2f}  "
                    f"pw={format_power(outcome.total_power_w):>10}")
        else:
            body = f"FAILED({outcome.status}): {outcome.error}"
        print(f"[{progress.done:>{len(str(progress.total))}}/"
              f"{progress.total}] {outcome.point.describe():<40} "
              f"{body}  {status}", flush=True)

    result = run_experiment(spec, processes=args.processes, cache=cache,
                            progress=None if args.quiet else show,
                            point_timeout=args.point_timeout,
                            retries=args.retries)
    print()
    for sweep in result.sweeps().values():
        print(sweep.table())
        print()
    print(result.summary())
    if cache is not None:
        print(f"cache: {args.cache_dir} ({len(cache)} entries; "
              f"{cache.hits} hits / {cache.misses} misses this run)")
    if args.csv:
        experiment_to_csv(result.outcomes, args.csv)
        print(f"wrote {args.csv}")
    return 0 if any(o.ok for o in result.outcomes) else 1


def _guided_points(configs, traffics, seeds, protocol, grid_points,
                   quiet=False):
    """Expand an analytic-guided run-point list: one guided rate grid
    per (preset, traffic), rates dense around predicted saturation."""
    from dataclasses import replace
    from repro.exp import RunPoint, guided_rate_grid

    points = []
    for name, cfg in configs.items():
        for tspec in traffics:
            grid = guided_rate_grid(cfg, tspec.name, points=grid_points,
                                    **dict(tspec.params))
            if not quiet:
                rates = ",".join(f"{r:g}" for r in grid.rates)
                print(f"guided grid {name}/{tspec.describe()}: predicted "
                      f"saturation {grid.prediction.rate:.4f}, "
                      f"rates [{rates}]")
            for seed in seeds:
                proto = replace(protocol, seed=seed)
                points.extend(
                    RunPoint(config=cfg, traffic=tspec, rate=rate,
                             protocol=proto, label=name)
                    for rate in grid.rates)
    return points


def cmd_estimate(args) -> int:
    cfg = _config(args)
    overrides = {}
    if args.topology:
        overrides["topology"] = args.topology
    if args.width:
        overrides["width"] = args.width
    if args.height:
        overrides["height"] = args.height
    if overrides:
        cfg = cfg.with_(**overrides)
    orion = Orion(cfg)
    est = orion.estimate_traffic(args.traffic, args.rate,
                                 **_traffic_extras(args.traffic, args))
    print(f"config:   {args.preset} ({cfg.router.kind}, {cfg.topology} "
          f"{cfg.width}x{cfg.height}) — analytic estimate, no simulation")
    print(est.describe())
    print("\npower breakdown:")
    total = sum(est.power_breakdown_w.values())
    for component, watts in sorted(est.power_breakdown_w.items(),
                                   key=lambda kv: -kv[1]):
        share = watts / total if total > 0 else 0.0
        print(f"  {component:<16} {format_power(watts):>12} {share:>7.1%}")
    if est.is_saturated:
        print("\nwarning: this rate is at or past the predicted "
              "saturation; estimates assume offered load is delivered")
    return 0


def cmd_report(args) -> int:
    from repro.telemetry import (
        telemetry_from_jsonl,
        telemetry_report,
        telemetry_to_csv,
    )

    record = telemetry_from_jsonl(args.path)
    print(telemetry_report(record, series=not args.no_series))
    if args.csv:
        telemetry_to_csv(record, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_power(args) -> int:
    cfg = _config(args)
    orion = Orion(cfg)
    print(f"== {args.preset}: section 3.3 walkthrough ==")
    for name, joules in orion.flit_energy_walkthrough().items():
        print(f"  {name:<8} {joules * 1e12:10.3f} pJ")
    binding = orion.power_models()
    print("\n== component parameters ==")
    print("buffer:", binding.buffer_model.describe())
    print("crossbar:", binding.crossbar_model.describe())
    print("switch arbiter:", binding.switch_arbiter_model.describe())
    if binding.central_model is not None:
        print("central buffer:", binding.central_model.describe())
    print("link:", binding.link_model.describe())
    return 0


def cmd_delay(args) -> int:
    cfg = _config(args)
    print(RouterDelayModel(cfg).report())
    return 0


def cmd_validate(args) -> int:
    from repro.validation import validation_report
    print(validation_report())
    return 0


def cmd_serve(args) -> int:
    from repro.serve import ServeConfig, serve_forever, serve_sharded

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=None if args.no_cache else args.cache_dir,
        journal_dir=args.journal_dir,
        drain_timeout=args.drain_timeout,
        point_timeout=args.point_timeout,
        retries=args.retries, processes=args.job_processes,
        quiet=args.quiet,
        job_ttl=args.job_ttl,
        max_job_events=args.max_job_events,
        cache_max_age=args.cache_max_age,
        cache_max_entries=args.cache_max_entries,
        pool_idle_timeout=args.pool_idle_timeout)
    if args.shards > 1:
        return serve_sharded(config, args.shards,
                             probe_interval=args.probe_interval)
    return serve_forever(config)


def cmd_gateway(args) -> int:
    from repro.serve import GatewayConfig, gateway_forever

    config = GatewayConfig(
        host=args.host, port=args.port,
        backends=tuple(args.backend),
        replicas=args.replicas,
        probe_interval=args.probe_interval,
        backend_timeout=args.backend_timeout,
        drain_timeout=args.drain_timeout,
        quiet=args.quiet)
    return gateway_forever(config)


def _submit_payload(args) -> dict:
    """Build a job payload from ``repro submit`` flags (or --file)."""
    if args.file:
        with open(args.file) as f:
            return json.load(f)
    spec: dict = {}
    if args.kind in ("run", "estimate"):
        spec["config"] = args.preset
        spec["traffic"] = {"name": args.traffic,
                           "params": _traffic_extras(args.traffic, args)}
        spec["rate"] = args.rate
        if args.kind == "run":
            spec["protocol"] = {"warmup_cycles": args.warmup,
                                "sample_packets": args.sample,
                                "seed": args.seed}
    else:
        spec["presets"] = [n.strip() for n in args.preset.split(",")]
        spec["traffics"] = [
            {"name": t.strip(),
             "params": _traffic_extras(t.strip(), args)}
            for t in args.traffic.split(",")]
        spec["rates"] = [float(r) for r in args.rates.split(",")]
        spec["seeds"] = [int(s) for s in args.seeds.split(",")]
        spec["protocol"] = {"warmup_cycles": args.warmup,
                            "sample_packets": args.sample}
    return {"kind": args.kind, "spec": spec, "priority": args.priority}


def _print_job_result(state: dict) -> None:
    result = state.get("result") or {}
    if "estimate" in result:
        est = result["estimate"]
        latency = est.get("avg_latency")
        latency_text = "saturated" if latency is None else f"{latency:.2f}"
        print(f"estimate: latency={latency_text} cycles  "
              f"power={format_power(est['total_power_w'])}  "
              f"saturation={est.get('saturation_rate')}")
        return
    for point in result.get("points", ()):
        status = "cached" if point["from_cache"] else \
            f"{point['wall_seconds']:.2f}s"
        if point["ok"]:
            body = (f"lat={point['avg_latency']:8.2f}  "
                    f"pw={format_power(point['total_power_w']):>10}")
        else:
            body = f"FAILED({point['status']}): {point['error']}"
        print(f"  {point['describe']:<40} {body}  {status}")


def _submit_batch(client, args) -> int:
    """``repro submit --batch-file``: many payloads, one request."""
    from repro.serve import ServeError

    with open(args.batch_file) as f:
        payloads = json.load(f)
    if not isinstance(payloads, list):
        print("error: batch file must hold a JSON list of job payloads",
              file=sys.stderr)
        return 2
    try:
        results = client.submit_many(payloads)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    bounced = 0
    for position, entry in enumerate(results):
        status = entry.get("http_status")
        if status in (200, 202):
            note = " (deduplicated)" if entry.get("deduped") else ""
            print(f"[{position}] job {entry['id']} "
                  f"{entry['status']}{note}")
        else:
            bounced += 1
            print(f"[{position}] rejected ({status}): "
                  f"{entry.get('error')}")
    if args.no_wait:
        return 1 if bounced else 0
    failed = 0
    for position, entry in enumerate(results):
        if entry.get("http_status") not in (200, 202):
            continue
        try:
            state = client.wait(entry["id"], timeout=args.timeout)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"[{position}] job {entry['id']} {state['status']} "
              f"in {state.get('wall_seconds') or 0.0:.2f}s")
        _print_job_result(state)
        if state["status"] != "done" \
                or (state.get("result") or {}).get("failures"):
            failed += 1
    return 1 if failed or bounced else 0


def cmd_submit(args) -> int:
    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.server, timeout=args.timeout)
    if args.cancel:
        try:
            out = client.cancel(args.cancel)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"job {out['id']} {out['status']}")
        if args.no_wait or out["status"] == "cancelled":
            return 0
        try:
            state = client.wait(out["id"], timeout=args.timeout)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"job {out['id']} {state['status']}")
        return 0 if state["status"] == "cancelled" else 1
    if args.batch_file:
        return _submit_batch(client, args)
    payload = _submit_payload(args)
    try:
        accepted = client.submit(payload)
    except ServeError as exc:
        if exc.status == 429 and exc.retry_after:
            print(f"error: {exc} (retry after {exc.retry_after:g}s)",
                  file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 1
    job_id = accepted["id"]
    print(f"job {job_id} {accepted['status']}"
          f"{' (deduplicated onto an identical active job)' if accepted.get('deduped') else ''}")
    if args.no_wait:
        return 0
    try:
        if args.stream:
            for event in client.stream(job_id):
                print(json.dumps(event, sort_keys=True), flush=True)
            state = client.status(job_id)
        else:
            state = client.wait(job_id, timeout=args.timeout)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job {job_id} {state['status']} "
          f"in {state.get('wall_seconds') or 0.0:.2f}s")
    _print_job_result(state)
    if state["status"] != "done":
        print(f"error: {state.get('error')}", file=sys.stderr)
        return 1
    result = state.get("result") or {}
    return 1 if result.get("failures") else 0


def cmd_cache(args) -> int:
    from repro.exp import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache: {stats['root']}")
        print(f"  entries:     {stats['entries']}")
        print(f"  legacy:      {stats['legacy_entries']}")
        print(f"  total bytes: {stats['total_bytes']}")
        for name in ("oldest_age_s", "newest_age_s"):
            age = stats[name]
            print(f"  {name.replace('_', ' '):<12} "
                  f"{'-' if age is None else format(age, '.0f') + 's'}")
        return 0
    if args.cache_command == "prune":
        if args.max_age_s is None and args.max_entries is None:
            print("error: prune needs --max-age-s and/or --max-entries",
                  file=sys.stderr)
            return 2
        removed = cache.prune(max_age_s=args.max_age_s,
                              max_entries=args.max_entries)
        removed += cache.sweep_stale_tmp()
        print(f"pruned {removed} entries; {len(cache)} remain")
        return 0
    if args.cache_command == "migrate":
        moved = cache.migrate()
        print(f"migrated {moved} legacy entries into the "
              f"content-addressed layout")
        return 0
    # clear
    removed = cache.clear()
    print(f"cleared {removed} entries")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orion power-performance network simulator "
                    "(MICRO 2002 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("presets", help="list the paper's configurations")
    p.set_defaults(handler=cmd_presets)

    def add_common(p, with_rate=True):
        p.add_argument("--preset", default="VC16",
                       help="configuration name (see 'presets')")
        if with_rate:
            p.add_argument("--rate", type=float, default=0.05,
                           help="packet injection rate")
        p.add_argument("--traffic", choices=TRAFFIC_KINDS,
                       default="uniform")
        p.add_argument("--source", type=int, default=9,
                       help="broadcast/hotspot node id")
        p.add_argument("--sample", type=_positive_int, default=1000,
                       help="measured packets (paper uses 10000)")
        p.add_argument("--warmup", type=_nonneg_int, default=1000,
                       help="warm-up cycles")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--kernel", choices=("dense", "sparse"),
                       default="sparse",
                       help="simulation kernel: 'sparse' (event-sparse "
                            "fast path, default) or 'dense' (reference)")
        p.add_argument("--leakage", action="store_true",
                       help="add static power (extension)")
        p.add_argument("--activity", choices=("average", "data"),
                       help="switching-activity mode")

    p = sub.add_parser("run", help="run one simulation")
    add_common(p)
    p.add_argument("--monitor", action="store_true",
                   help="sample per-cycle occupancy/utilization")
    p.add_argument("--spatial", action="store_true",
                   help="print the per-node power map")
    p.add_argument("--json", metavar="PATH",
                   help="write the result summary as JSON")
    p.add_argument("--csv", metavar="PATH",
                   help="write the per-node power map as CSV")
    p.add_argument("--telemetry-window", type=int, default=0,
                   metavar="CYCLES",
                   help="record windowed energy/event telemetry every "
                        "this many cycles (0 disables)")
    p.add_argument("--telemetry-jsonl", metavar="PATH",
                   help="write the telemetry record as JSONL "
                        "(implies a default window if none given)")
    p.add_argument("--telemetry-csv", metavar="PATH",
                   help="write the telemetry record as long-format CSV "
                        "(implies a default window if none given)")
    p.add_argument("--faults", action="append", metavar="SPEC",
                   help="inject a fault (repeatable), e.g. "
                        "'link_kill:node=5,port=east,at=1200', "
                        "'link_flip:node=5,port=2,at=1000,for=500', "
                        "'router_freeze:node=3,at=500,for=800', "
                        "'vc_stuck:node=2,port=east,vc=0,at=800', or "
                        "'random:kills=2,flips=1'")
    p.add_argument("--fault-policy", choices=("misroute", "drop"),
                   default="misroute",
                   help="what traffic does at a faulted link")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for 'random:' fault placement")
    p.add_argument("--on-stall", choices=("raise", "finish"),
                   help="watchdog behaviour: raise (default on healthy "
                        "runs) or finish with status='stalled' "
                        "(default with --faults)")
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("sweep", help="sweep injection rates")
    add_common(p, with_rate=False)
    p.add_argument("--rates", default="0.02,0.06,0.10,0.14",
                   help="comma-separated injection rates")
    p.add_argument("--processes", type=_positive_int, default=1,
                   help="worker processes for the rate points")
    p.add_argument("--csv", metavar="PATH",
                   help="write the sweep as CSV")
    p.set_defaults(handler=cmd_sweep)

    p = sub.add_parser(
        "experiment",
        help="run a (preset x traffic x rate x seed) grid with "
             "multiprocessing and result caching")
    p.add_argument("--presets", default="VC16",
                   help="comma-separated configuration names")
    p.add_argument("--traffic", default="uniform",
                   help=f"comma-separated traffic kinds "
                        f"(options: {', '.join(TRAFFIC_KINDS)})")
    p.add_argument("--rates", default="0.02,0.06,0.10,0.14",
                   help="comma-separated injection rates, or 'auto' to "
                        "place the grid analytically around predicted "
                        "saturation")
    p.add_argument("--grid-points", type=_positive_int, default=8,
                   help="points per guided grid (with --rates auto)")
    p.add_argument("--seeds", default="1",
                   help="comma-separated traffic seeds")
    p.add_argument("--source", type=int, default=9,
                   help="broadcast/hotspot node id")
    p.add_argument("--sample", type=_positive_int, default=1000,
                   help="measured packets per point")
    p.add_argument("--warmup", type=_nonneg_int, default=1000,
                   help="warm-up cycles per point")
    p.add_argument("--processes", type=_positive_int, default=1,
                   help="worker processes")
    p.add_argument("--point-timeout", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="wall-clock cap per point (runs each point in "
                        "its own subprocess; expired points record "
                        "status='timeout')")
    p.add_argument("--retries", type=_nonneg_int, default=0,
                   help="re-run a point whose worker crashed this many "
                        "times before recording status='crashed'")
    p.add_argument("--cache-dir", default="results/.cache",
                   help="result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--kernel", choices=("dense", "sparse"),
                   default="sparse",
                   help="simulation kernel: 'sparse' (event-sparse fast "
                        "path, default) or 'dense' (reference)")
    p.add_argument("--leakage", action="store_true",
                   help="add static power (extension)")
    p.add_argument("--activity", choices=("average", "data"),
                   help="switching-activity mode")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    p.add_argument("--csv", metavar="PATH",
                   help="write all points as CSV")
    p.set_defaults(handler=cmd_experiment)

    p = sub.add_parser(
        "estimate",
        help="closed-form latency/power/saturation estimate (no "
             "simulation, milliseconds)")
    add_common(p)
    p.add_argument("--topology", choices=("mesh", "torus"),
                   help="override the preset's topology")
    p.add_argument("--width", type=int, help="override grid width")
    p.add_argument("--height", type=int, help="override grid height")
    p.set_defaults(handler=cmd_estimate)

    p = sub.add_parser(
        "report",
        help="render a recorded telemetry JSONL file")
    p.add_argument("path", help="telemetry JSONL written by "
                                "'run --telemetry-jsonl'")
    p.add_argument("--no-series", action="store_true",
                   help="skip the per-window time series table")
    p.add_argument("--csv", metavar="PATH",
                   help="also convert the record to long-format CSV")
    p.set_defaults(handler=cmd_report)

    p = sub.add_parser("power", help="standalone power analysis")
    p.add_argument("--preset", default="VC16")
    p.set_defaults(handler=cmd_power)

    p = sub.add_parser("delay", help="pipeline/frequency analysis")
    p.add_argument("--preset", default="VC16")
    p.set_defaults(handler=cmd_delay)

    p = sub.add_parser("validate",
                       help="ballpark checks vs commercial routers")
    p.set_defaults(handler=cmd_validate)

    p = sub.add_parser(
        "serve",
        help="long-lived HTTP job service: queue, dedup, progress "
             "streams, graceful drain (see docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=_nonneg_int, default=8421,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="concurrent jobs")
    p.add_argument("--queue-limit", type=_positive_int, default=64,
                   help="waiting jobs before submissions get 429")
    p.add_argument("--cache-dir", default="results/.cache",
                   help="shared result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--journal-dir", default="results/.serve",
                   help="crash-safe job journal directory")
    p.add_argument("--drain-timeout", type=_positive_float, default=30.0,
                   metavar="SECONDS",
                   help="graceful-drain budget after SIGTERM")
    p.add_argument("--point-timeout", type=_positive_float, default=300.0,
                   metavar="SECONDS",
                   help="default wall-clock cap per simulation point")
    p.add_argument("--retries", type=_nonneg_int, default=0,
                   help="default crash retries per point")
    p.add_argument("--job-processes", type=_positive_int, default=1,
                   help="default worker processes within one job")
    p.add_argument("--job-ttl", type=_positive_float, default=3600.0,
                   metavar="SECONDS",
                   help="keep finished jobs queryable this long before "
                        "evicting them from memory")
    p.add_argument("--max-job-events", type=_positive_int, default=1000,
                   help="per-job event-log bound (oldest entries are "
                        "trimmed first)")
    p.add_argument("--cache-max-age", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="self-prune cache entries older than this "
                        "during idle housekeeping")
    p.add_argument("--cache-max-entries", type=_nonneg_int, default=None,
                   help="self-prune the cache down to this many newest "
                        "entries during idle housekeeping")
    p.add_argument("--pool-idle-timeout", type=_positive_float,
                   default=None, metavar="SECONDS",
                   help="reap idle simulation workers after this long "
                        "(a floor of one warm worker always survives)")
    p.add_argument("--shards", type=_positive_int, default=1,
                   help="run N shard servers behind a consistent-hash "
                        "gateway on --port (1 = single server)")
    p.add_argument("--probe-interval", type=_positive_float, default=2.0,
                   metavar="SECONDS",
                   help="gateway health-probe interval (--shards > 1)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress lifecycle log lines")
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser(
        "gateway",
        help="front existing 'repro serve' shards with a "
             "consistent-hash routing gateway")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=_nonneg_int, default=8421,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--backend", action="append", required=True,
                   metavar="HOST:PORT",
                   help="one shard address (repeatable)")
    p.add_argument("--replicas", type=_positive_int, default=64,
                   help="virtual points per shard on the hash ring")
    p.add_argument("--probe-interval", type=_positive_float, default=2.0,
                   metavar="SECONDS",
                   help="health-probe interval per shard")
    p.add_argument("--backend-timeout", type=_positive_float,
                   default=30.0, metavar="SECONDS",
                   help="per-request timeout talking to a shard")
    p.add_argument("--drain-timeout", type=_positive_float, default=30.0,
                   metavar="SECONDS",
                   help="per-shard graceful-drain budget on SIGTERM")
    p.add_argument("--quiet", action="store_true",
                   help="suppress lifecycle log lines")
    p.set_defaults(handler=cmd_gateway)

    p = sub.add_parser(
        "submit",
        help="submit a job to a running 'repro serve' instance")
    p.add_argument("--server", default="http://127.0.0.1:8421",
                   help="server base URL")
    p.add_argument("--kind", choices=("run", "estimate", "experiment"),
                   default="run")
    p.add_argument("--file", metavar="PATH",
                   help="submit a raw job payload JSON file instead of "
                        "building one from flags")
    p.add_argument("--batch-file", metavar="PATH",
                   help="submit a JSON file holding a list of job "
                        "payloads in one pipelined request "
                        "(POST /v2/jobs:batch)")
    p.add_argument("--cancel", metavar="JOB_ID",
                   help="cancel a queued or running job instead of "
                        "submitting (DELETE /v2/jobs/<id>)")
    p.add_argument("--preset", default="VC16",
                   help="configuration name(s); comma-separated for "
                        "--kind experiment")
    p.add_argument("--traffic", default="uniform",
                   help="traffic kind(s); comma-separated for "
                        "--kind experiment")
    p.add_argument("--source", type=int, default=9,
                   help="broadcast/hotspot node id")
    p.add_argument("--rate", type=_positive_float, default=0.05,
                   help="injection rate (run/estimate)")
    p.add_argument("--rates", default="0.02,0.06,0.10,0.14",
                   help="comma-separated rates (experiment)")
    p.add_argument("--seeds", default="1",
                   help="comma-separated seeds (experiment)")
    p.add_argument("--sample", type=_positive_int, default=1000,
                   help="measured packets per point")
    p.add_argument("--warmup", type=_nonneg_int, default=1000,
                   help="warm-up cycles per point")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first")
    p.add_argument("--timeout", type=_positive_float, default=600.0,
                   help="seconds to wait for the result")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and return immediately")
    p.add_argument("--stream", action="store_true",
                   help="follow the NDJSON progress stream instead of "
                        "polling")
    p.set_defaults(handler=cmd_submit)

    p = sub.add_parser("cache", help="result-cache maintenance")
    p.add_argument("cache_command",
                   choices=("stats", "prune", "clear", "migrate"))
    p.add_argument("--cache-dir", default="results/.cache")
    p.add_argument("--max-age-s", type=_positive_float, default=None,
                   help="prune: drop entries older than this many "
                        "seconds")
    p.add_argument("--max-entries", type=_nonneg_int, default=None,
                   help="prune: keep at most this many newest entries")
    p.set_defaults(handler=cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        return 141
    except (ValueError, OSError, RuntimeError) as exc:
        # Predictable operational failures (bad preset names, missing
        # files, unreachable servers) exit 1 with one clear line; real
        # bugs still traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
