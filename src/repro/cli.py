"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points:

* ``presets``  — list the paper's named configurations;
* ``run``      — one simulation: latency, power, breakdown, spatial map;
* ``sweep``    — latency/power versus injection rate;
* ``power``    — standalone power analysis (section 3.3 walkthrough);
* ``delay``    — pipeline/frequency analysis (Peh-Dally delay model);
* ``validate`` — section 3.2 ballpark checks against commercial routers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.orion import Orion
from repro.core.presets import PRESETS, preset
from repro.core.export import result_to_json, spatial_to_csv, sweep_to_csv
from repro.core.report import breakdown_table, format_power, spatial_table
from repro.delay import RouterDelayModel
from repro.sim.topology import Torus
from repro.sim.traffic import (
    BitComplementTraffic,
    BroadcastTraffic,
    BurstyTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)

TRAFFIC_KINDS = ("uniform", "broadcast", "transpose", "bitcomp",
                 "hotspot", "neighbor", "tornado", "shuffle", "bursty")


def _make_traffic(args, config):
    topo = Torus(config.width, config.height)
    if args.traffic == "uniform":
        return UniformRandomTraffic(topo, args.rate, seed=args.seed)
    if args.traffic == "broadcast":
        return BroadcastTraffic(topo, args.source, args.rate,
                                seed=args.seed)
    if args.traffic == "transpose":
        return TransposeTraffic(topo, args.rate, seed=args.seed)
    if args.traffic == "bitcomp":
        return BitComplementTraffic(topo, args.rate, seed=args.seed)
    if args.traffic == "hotspot":
        return HotspotTraffic(topo, args.rate, hotspot=args.source,
                              seed=args.seed)
    if args.traffic == "neighbor":
        return NearestNeighborTraffic(topo, args.rate, seed=args.seed)
    if args.traffic == "tornado":
        return TornadoTraffic(topo, args.rate, seed=args.seed)
    if args.traffic == "shuffle":
        return ShuffleTraffic(topo, args.rate, seed=args.seed)
    if args.traffic == "bursty":
        return BurstyTraffic(topo, args.rate, seed=args.seed)
    raise ValueError(f"unknown traffic {args.traffic!r}")


def _config(args):
    cfg = preset(args.preset)
    overrides = {}
    if getattr(args, "leakage", False):
        overrides["include_leakage"] = True
    if getattr(args, "activity", None):
        overrides["activity_mode"] = args.activity
    if overrides:
        cfg = cfg.with_(**overrides)
    return cfg


def cmd_presets(args) -> int:
    print(f"{'name':<8} {'router':<10} {'flit':>5} {'buffering':>24} "
          f"{'link':<14} {'clock':>8}")
    for name in sorted(PRESETS):
        cfg = preset(name)
        rc = cfg.router
        if rc.kind == "vc":
            buffering = f"{rc.num_vcs} VC x {rc.buffer_depth} flits"
        elif rc.kind == "central":
            buffering = (f"CB {rc.cb_banks}x{rc.cb_rows} + "
                         f"{rc.buffer_depth}/port")
        else:
            buffering = f"{rc.buffer_depth} flits/port"
        print(f"{name:<8} {rc.kind:<10} {rc.flit_bits:>5} "
              f"{buffering:>24} {cfg.link.kind:<14} "
              f"{cfg.tech.frequency_hz / 1e9:>6.1f}G")
    return 0


def cmd_run(args) -> int:
    cfg = _config(args)
    orion = Orion(cfg)
    result = orion.run(_make_traffic(args, cfg),
                       warmup_cycles=args.warmup,
                       sample_packets=args.sample)
    print(f"config:        {args.preset} ({cfg.router.kind})")
    print(f"traffic:       {args.traffic} at {args.rate} pkt/cycle"
          f"{'/node' if args.traffic in ('uniform', 'transpose', 'bitcomp', 'hotspot', 'neighbor') else ''}")
    print(f"sample:        {result.sample_packets} packets over "
          f"{result.measured_cycles} measured cycles")
    print(f"avg latency:   {result.avg_latency:.2f} cycles")
    print(f"p99 latency:   {result.latency.percentile(99):.0f} cycles")
    print(f"throughput:    {result.throughput_flits_per_cycle:.3f} "
          f"flits/cycle")
    print(f"total power:   {format_power(result.total_power_w)}")
    print()
    print(breakdown_table(result))
    if args.spatial:
        print("\nper-node power:")
        print(spatial_table(result))
    if args.json:
        result_to_json(result, args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        spatial_to_csv(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_sweep(args) -> int:
    cfg = _config(args)
    orion = Orion(cfg)
    rates = [float(r) for r in args.rates.split(",")]
    if args.traffic == "broadcast":
        sweep = orion.sweep_broadcast(args.source, rates,
                                      label=args.preset,
                                      warmup_cycles=args.warmup,
                                      sample_packets=args.sample,
                                      seed=args.seed)
    else:
        sweep = orion.sweep_uniform(rates, label=args.preset,
                                    warmup_cycles=args.warmup,
                                    sample_packets=args.sample,
                                    seed=args.seed)
    print(sweep.table())
    if args.csv:
        sweep_to_csv(sweep, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_power(args) -> int:
    cfg = _config(args)
    orion = Orion(cfg)
    print(f"== {args.preset}: section 3.3 walkthrough ==")
    for name, joules in orion.flit_energy_walkthrough().items():
        print(f"  {name:<8} {joules * 1e12:10.3f} pJ")
    binding = orion.power_models()
    print("\n== component parameters ==")
    print("buffer:", binding.buffer_model.describe())
    print("crossbar:", binding.crossbar_model.describe())
    print("switch arbiter:", binding.switch_arbiter_model.describe())
    if binding.central_model is not None:
        print("central buffer:", binding.central_model.describe())
    print("link:", binding.link_model.describe())
    return 0


def cmd_delay(args) -> int:
    cfg = _config(args)
    print(RouterDelayModel(cfg).report())
    return 0


def cmd_validate(args) -> int:
    from repro.validation import validation_report
    print(validation_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orion power-performance network simulator "
                    "(MICRO 2002 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("presets", help="list the paper's configurations")
    p.set_defaults(handler=cmd_presets)

    def add_common(p, with_rate=True):
        p.add_argument("--preset", default="VC16",
                       help="configuration name (see 'presets')")
        if with_rate:
            p.add_argument("--rate", type=float, default=0.05,
                           help="packet injection rate")
        p.add_argument("--traffic", choices=TRAFFIC_KINDS,
                       default="uniform")
        p.add_argument("--source", type=int, default=9,
                       help="broadcast/hotspot node id")
        p.add_argument("--sample", type=int, default=1000,
                       help="measured packets (paper uses 10000)")
        p.add_argument("--warmup", type=int, default=1000,
                       help="warm-up cycles")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--leakage", action="store_true",
                       help="add static power (extension)")
        p.add_argument("--activity", choices=("average", "data"),
                       help="switching-activity mode")

    p = sub.add_parser("run", help="run one simulation")
    add_common(p)
    p.add_argument("--spatial", action="store_true",
                   help="print the per-node power map")
    p.add_argument("--json", metavar="PATH",
                   help="write the result summary as JSON")
    p.add_argument("--csv", metavar="PATH",
                   help="write the per-node power map as CSV")
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("sweep", help="sweep injection rates")
    add_common(p, with_rate=False)
    p.add_argument("--rates", default="0.02,0.06,0.10,0.14",
                   help="comma-separated injection rates")
    p.add_argument("--csv", metavar="PATH",
                   help="write the sweep as CSV")
    p.set_defaults(handler=cmd_sweep)

    p = sub.add_parser("power", help="standalone power analysis")
    p.add_argument("--preset", default="VC16")
    p.set_defaults(handler=cmd_power)

    p = sub.add_parser("delay", help="pipeline/frequency analysis")
    p.add_argument("--preset", default="VC16")
    p.set_defaults(handler=cmd_delay)

    p = sub.add_parser("validate",
                       help="ballpark checks vs commercial routers")
    p.set_defaults(handler=cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
