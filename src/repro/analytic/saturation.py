"""Closed-form saturation prediction: the paper's "twice zero-load
latency" criterion, solved analytically.

The simulator finds saturation by sweeping injection rates and marking
the first point whose measured latency exceeds twice the zero-load
latency (section 4.1).  Analytically the same criterion is a root
search: channel loads are *linear* in the injection rate, so one flow
matrix built at unit rate gives the loads at every rate by scaling, the
M/M/1 latency ``T(r)`` is monotonically increasing in ``r``, and the
saturation rate is the unique solution of ``T(r) = 2 * T(0)`` on
``(0, r_cap)`` — where ``r_cap`` is the throughput bound at which the
most-loaded channel reaches one flit per cycle and ``T`` diverges.
Bisection converges to machine precision in ~50 iterations of pure
arithmetic, no simulation anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import NetworkConfig
from repro.analytic.flows import FlowMatrix, flow_matrix
from repro.analytic.latency import queueing_delay, zero_load_latency


@dataclass(frozen=True)
class SaturationEstimate:
    """Analytic saturation point of one (config, traffic) pair."""

    #: Injection rate at which latency reaches twice zero-load
    #: (packets/cycle, same per-node/whole-network units as the traffic
    #: kind's rate parameter).
    rate: float
    #: Latency at vanishing load, cycles.
    zero_load_latency: float
    #: Rate at which the most-loaded channel reaches capacity — the
    #: hard throughput ceiling; always >= ``rate``.
    throughput_bound: float


def saturation_latency_at(base: FlowMatrix, rate: float) -> float:
    """Mean latency (cycles) at ``rate``, from a unit-rate flow matrix."""
    t0 = zero_load_latency(base.config, base.avg_hops)
    return t0 + queueing_delay(base.scaled(rate))


def estimate_saturation(config: NetworkConfig, traffic: str = "uniform",
                        tolerance: float = 1e-6,
                        base: FlowMatrix = None,
                        **params) -> SaturationEstimate:
    """Predict the saturation injection rate of a traffic kind.

    Builds one flow matrix at unit rate (or reuses ``base``, a
    unit-rate matrix from an earlier call — loads are linear in rate,
    so one routing pass serves every rate), then bisects
    ``T(r) = 2 * T(0)`` between zero and the throughput bound.
    """
    if base is None:
        base = flow_matrix(config, traffic, 1.0, **params)
    t0 = zero_load_latency(config, base.avg_hops)
    peak = base.max_channel_load
    if peak <= 0.0:
        return SaturationEstimate(rate=math.inf, zero_load_latency=t0,
                                  throughput_bound=math.inf)
    r_cap = 1.0 / peak
    target = 2.0 * t0
    lo, hi = 0.0, r_cap
    while hi - lo > tolerance * r_cap:
        mid = 0.5 * (lo + hi)
        if t0 + queueing_delay(base.scaled(mid)) < target:
            lo = mid
        else:
            hi = mid
    return SaturationEstimate(
        rate=0.5 * (lo + hi),
        zero_load_latency=t0,
        throughput_bound=r_cap,
    )
