"""Analytic traffic flows: expected packet rates per (src, dst) pair.

The analytic estimator never instantiates a live traffic pattern.
Instead, each registered traffic kind declares its *flow distribution* —
the expected packets/cycle offered from every source to every
destination — and the routes those flows take are computed with the
simulator's own dimension-ordered routing (same topology, same
tie-break).  The resulting :class:`FlowMatrix` aggregates everything the
latency and power models need:

* per-channel flit loads (utilisation of every inter-router link),
* per-source injection-channel loads,
* per-router flit/packet throughputs,
* flow-weighted average hop count.

Channel loads are exact expectations under the declared distribution —
the same routes the simulator would take — so analytic utilisation,
event rates and queueing corrections share the simulator's geometry
rather than approximating it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.config import NetworkConfig
from repro.sim.routing import dimension_ordered_route
from repro.sim.topology import LOCAL, Topology, topology_for
from repro.sim.traffic import validate_traffic_params

#: ``(src, dst) -> packets/cycle`` expected flow table.
FlowTable = Dict[Tuple[int, int], float]

#: A flow builder maps (topology, rate, resolved params) to a FlowTable.
FlowBuilder = Callable[[Topology, float, Dict], FlowTable]


@dataclass
class FlowMatrix:
    """Expected steady-state loads of one (config, traffic, rate) point.

    All rates are per cycle: ``channel_load``/``source_load`` in flits,
    ``router_packets`` in packets.  Built by :func:`flow_matrix`.
    """

    config: NetworkConfig
    #: Expected packets/cycle network-wide.
    injection_packets: float
    #: Flits/cycle on each directed inter-router channel.
    channel_load: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Flits/cycle offered to each node's injection channel.
    source_load: List[float] = field(default_factory=list)
    #: Flits/cycle entering each router (injection + link arrivals).
    router_flits: List[float] = field(default_factory=list)
    #: Packets/cycle entering each router.
    router_packets: List[float] = field(default_factory=list)
    #: Flow-weighted mean hop count (router-to-router links per packet).
    avg_hops: float = 0.0

    @property
    def injection_flits(self) -> float:
        """Expected flits/cycle injected network-wide."""
        return self.injection_packets * self.config.packet_length_flits

    @property
    def link_flits(self) -> float:
        """Expected flits/cycle summed over all inter-router channels."""
        return sum(self.channel_load.values())

    @property
    def max_channel_load(self) -> float:
        """Highest per-channel flit load — the capacity bottleneck
        (includes injection channels, which also move one flit/cycle)."""
        loads = list(self.channel_load.values()) + list(self.source_load)
        return max(loads) if loads else 0.0

    def scaled(self, factor: float) -> "FlowMatrix":
        """The same flow geometry at ``factor`` times the rate (loads are
        linear in the injection rate)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return FlowMatrix(
            config=self.config,
            injection_packets=self.injection_packets * factor,
            channel_load={c: load * factor
                          for c, load in self.channel_load.items()},
            source_load=[load * factor for load in self.source_load],
            router_flits=[f * factor for f in self.router_flits],
            router_packets=[p * factor for p in self.router_packets],
            avg_hops=self.avg_hops,
        )


# --- flow distributions per traffic kind --------------------------------------

def _uniform_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    n = topo.num_nodes
    per_pair = rate / (n - 1)
    return {(s, d): per_pair
            for s in range(n) for d in range(n) if d != s}


def _broadcast_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    source = params["source"]
    topo.coords(source)  # validates
    n = topo.num_nodes
    per_dst = rate / (n - 1)
    return {(source, d): per_dst for d in range(n) if d != source}


def _transpose_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    if topo.width != topo.height:
        raise ValueError("transpose traffic needs a square topology")
    flows = {}
    for node in range(topo.num_nodes):
        x, y = topo.coords(node)
        if x != y:
            flows[(node, topo.node_at(y, x))] = rate
    return flows


def _bitcomp_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    flows = {}
    for node in range(topo.num_nodes):
        x, y = topo.coords(node)
        dst = topo.node_at(topo.width - 1 - x, topo.height - 1 - y)
        if dst != node:
            flows[(node, dst)] = rate
    return flows


def _hotspot_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    hot = params["hotspot"]
    frac = params["hot_fraction"]
    topo.coords(hot)  # validates
    n = topo.num_nodes
    flows: FlowTable = {}
    for src in range(n):
        if src == hot:
            for dst in range(n):
                if dst != src:
                    flows[(src, dst)] = rate / (n - 1)
            continue
        # With probability ``frac`` the packet targets the hot node;
        # otherwise the destination is uniform over the n-1 others
        # (which can also pick the hot node, as in the live pattern).
        base = rate * (1.0 - frac) / (n - 1)
        for dst in range(n):
            if dst == src:
                continue
            flows[(src, dst)] = base + (rate * frac if dst == hot else 0.0)
    return flows


def _neighbor_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    flows: FlowTable = {}
    for src in range(topo.num_nodes):
        neighbors = [topo.neighbor(src, p) for p in range(4)]
        neighbors = [d for d in neighbors if d is not None]
        for dst in neighbors:
            flows[(src, dst)] = rate / len(neighbors)
    return flows


def _tornado_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    dx = max(1, (topo.width + 1) // 2 - 1) if topo.width > 2 else 1
    dy = max(1, (topo.height + 1) // 2 - 1) if topo.height > 2 else 1
    flows = {}
    for node in range(topo.num_nodes):
        x, y = topo.coords(node)
        dst = topo.node_at((x + dx) % topo.width, (y + dy) % topo.height)
        if dst != node:
            flows[(node, dst)] = rate
    return flows


def _shuffle_flows(topo: Topology, rate: float, params: Dict) -> FlowTable:
    n = topo.num_nodes
    if n & (n - 1):
        raise ValueError(
            f"shuffle traffic needs a power-of-two node count, got {n}"
        )
    bits = n.bit_length() - 1
    flows = {}
    for node in range(n):
        dst = ((node << 1) | (node >> (bits - 1))) & (n - 1)
        if dst != node:
            flows[(node, dst)] = rate
    return flows


#: Flow distribution per registered traffic kind.  Bursty traffic has
#: the same *average* flow table as uniform (the modulation changes
#: arrival burstiness, not expectations).
FLOW_BUILDERS: Dict[str, FlowBuilder] = {
    "uniform": _uniform_flows,
    "bursty": _uniform_flows,
    "broadcast": _broadcast_flows,
    "transpose": _transpose_flows,
    "bitcomp": _bitcomp_flows,
    "hotspot": _hotspot_flows,
    "neighbor": _neighbor_flows,
    "tornado": _tornado_flows,
    "shuffle": _shuffle_flows,
}


def register_flow_builder(name: str, builder: FlowBuilder) -> None:
    """Declare the analytic flow distribution of a traffic kind."""
    FLOW_BUILDERS[name] = builder


def traffic_flows(name: str, topo: Topology, rate: float,
                  **params) -> FlowTable:
    """The expected ``(src, dst) -> packets/cycle`` table of a traffic
    kind at the given rate.  Parameters are validated against the
    traffic registry, exactly as for a live pattern."""
    if rate < 0:
        raise ValueError(f"injection rate must be >= 0, got {rate}")
    resolved = validate_traffic_params(name, params)
    try:
        builder = FLOW_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"traffic {name!r} has no analytic flow model; register one "
            f"with repro.analytic.register_flow_builder"
        ) from None
    return builder(topo, rate, resolved)


def flow_matrix(config: NetworkConfig, traffic: str = "uniform",
                rate: float = 1.0, **params) -> FlowMatrix:
    """Route a traffic kind's expected flows through ``config``'s
    topology and aggregate the per-channel / per-router loads."""
    topo = topology_for(config)
    flows = traffic_flows(traffic, topo, rate, **params)
    flits = config.packet_length_flits
    num_nodes = topo.num_nodes
    # Precomputed neighbour table: per-hop topo.neighbor() calls (with
    # their validation) dominate the walk on large grids.
    neighbor = [[topo.neighbor(n, p) for p in range(4)]
                for n in range(num_nodes)]
    tie_break = config.tie_break
    channel_load: Dict[Tuple[int, int], float] = {}
    source_load = [0.0] * num_nodes
    router_flits = [0.0] * num_nodes
    router_packets = [0.0] * num_nodes
    total_packets = 0.0
    total_hops = 0.0
    for (src, dst), packets in flows.items():
        if packets <= 0.0:
            continue
        route = dimension_ordered_route(topo, src, dst,
                                        tie_break=tie_break)
        flit_rate = packets * flits
        total_packets += packets
        total_hops += packets * (len(route) - 1)
        source_load[src] += flit_rate
        node = src
        for port in route:
            router_flits[node] += flit_rate
            router_packets[node] += packets
            if port == LOCAL:
                break
            key = (node, port)
            channel_load[key] = channel_load.get(key, 0.0) + flit_rate
            node = neighbor[node][port]
    return FlowMatrix(
        config=config,
        injection_packets=total_packets,
        channel_load=channel_load,
        source_load=source_load,
        router_flits=router_flits,
        router_packets=router_packets,
        avg_hops=total_hops / total_packets if total_packets else 0.0,
    )
