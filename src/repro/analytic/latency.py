"""Closed-form latency: exact zero-load pipeline model plus an
M/M/1-style queueing correction per channel.

Zero-load component
-------------------
At vanishing load a packet never waits, so its latency is pure
pipeline arithmetic: ``depth`` cycles in each router it enters, one
cycle on each inter-router link, one cycle on the injection channel
(modelled as the final router's worth of ``+ depth``), and ``L - 1``
trailing cycles for the tail flit to stream out behind the head.  The
per-kind depths below are the *observed* cycles a head flit spends in
each router of this simulator — they intentionally pin simulator
behaviour, and the cross-validation tests assert the match is exact.

Queueing component
------------------
Each output channel is treated as an M/M/1 queue serving whole packets:
service time is the packet length ``L`` (a channel moves one flit per
cycle), utilisation ``rho`` is the routing-derived flit load, and the
expected wait per packet is ``L * rho / (1 - rho)``.  A packet's route
crosses several channels; rather than storing per-flow routes, the mean
wait per delivered packet falls out of an aggregation identity::

    E[wait] = sum_c W_c * (packets through c) / (packets delivered)

with ``packets through c = load_c / L``.  Source injection channels are
included the same way — at saturation it is usually the source queue
that diverges first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import NetworkConfig
from repro.sim.stats import zero_load_latency_estimate
from repro.sim.topology import topology_for
from repro.analytic.flows import FlowMatrix, flow_matrix

#: Cycles a head flit spends inside one router at zero load, per router
#: kind.  Wormhole pipelines switch allocation + traversal; VC routers
#: add a VC-allocation stage; the speculative VC router overlaps VC and
#: switch allocation back down to two cycles; the central-buffer router
#: takes three (write, arbitrate/read, traverse).
ZERO_LOAD_PIPELINE_DEPTH: Dict[str, int] = {
    "wormhole": 2,
    "vc": 3,
    "speculative_vc": 2,
    "central": 3,
}


def pipeline_depth(config: NetworkConfig) -> int:
    """Zero-load per-router cycle count for ``config``'s router kind."""
    try:
        return ZERO_LOAD_PIPELINE_DEPTH[config.router.kind]
    except KeyError:
        raise ValueError(
            f"no zero-load pipeline depth for router kind "
            f"{config.router.kind!r}"
        ) from None


def zero_load_latency(config: NetworkConfig, hops: float) -> float:
    """Latency in cycles of a packet crossing ``hops`` inter-router
    links with no contention anywhere."""
    return zero_load_latency_estimate(
        hops,
        pipeline_depth(config),
        config.packet_length_flits,
    )


def mean_hops(config: NetworkConfig, traffic: str = "uniform",
              **params) -> float:
    """Flow-weighted mean hop count of a traffic kind on ``config``."""
    return flow_matrix(config, traffic, 1.0, **params).avg_hops


@dataclass(frozen=True)
class LatencyEstimate:
    """Analytic latency decomposition at one operating point."""

    #: Mean no-contention latency, cycles.
    zero_load: float
    #: Mean queueing delay added by channel contention, cycles
    #: (``inf`` when some channel is offered more than one flit/cycle).
    queueing: float
    #: Flit load of the most-utilised channel, including injection
    #: channels.
    max_channel_load: float

    @property
    def total(self) -> float:
        return self.zero_load + self.queueing


def _mm1_wait(load: float, service: float) -> float:
    """Expected M/M/1 wait for a channel offered ``load`` flits/cycle
    with a ``service``-cycle (packet-length) service time."""
    if load >= 1.0:
        return math.inf
    return service * load / (1.0 - load)


def queueing_delay(flows: FlowMatrix) -> float:
    """Mean per-packet queueing delay (cycles) over all channels a
    packet crosses, by the aggregation identity in the module docstring."""
    if flows.injection_packets <= 0.0:
        return 0.0
    service = float(flows.config.packet_length_flits)
    total_wait = 0.0
    for load in flows.channel_load.values():
        wait = _mm1_wait(load, service)
        if math.isinf(wait):
            return math.inf
        total_wait += wait * (load / service)
    for load in flows.source_load:
        if load <= 0.0:
            continue
        wait = _mm1_wait(load, service)
        if math.isinf(wait):
            return math.inf
        total_wait += wait * (load / service)
    return total_wait / flows.injection_packets


def estimate_latency(flows: FlowMatrix) -> LatencyEstimate:
    """Expected packet latency of one (config, traffic, rate) point."""
    return LatencyEstimate(
        zero_load=zero_load_latency(flows.config, flows.avg_hops),
        queueing=queueing_delay(flows),
        max_channel_load=flows.max_channel_load,
    )


def diameter_latency(config: NetworkConfig) -> float:
    """Zero-load latency across the topology's longest minimal route —
    a quick upper bound on no-contention latency."""
    topo = topology_for(config)
    longest = max(
        topo.manhattan_distance(0, node)
        for node in range(topo.num_nodes)
    )
    return zero_load_latency(config, longest)
