"""Closed-form power/latency estimation (no simulation).

The analytic twin of the cycle-accurate simulator: the same topologies,
routes, traffic distributions and per-event energies, but evaluated as
expectations instead of being simulated — milliseconds instead of
minutes per operating point.  Used standalone (``Orion.estimate_*``,
``repro estimate``) and by the experiment orchestrator to place sweep
rate grids around the predicted saturation point.

The subsystem is also a standing cross-check on the simulator: tests
assert the analytic zero-load latency matches simulation *exactly* and
that power and saturation predictions track simulated values within
stated tolerances.
"""

from repro.analytic.estimate import AnalyticEstimate, estimate
from repro.analytic.flows import (
    FlowMatrix,
    flow_matrix,
    register_flow_builder,
    traffic_flows,
)
from repro.analytic.latency import (
    ZERO_LOAD_PIPELINE_DEPTH,
    LatencyEstimate,
    estimate_latency,
    mean_hops,
    pipeline_depth,
    queueing_delay,
    zero_load_latency,
)
from repro.analytic.power import (
    PowerEstimate,
    estimate_power,
    router_event_rates,
)
from repro.analytic.saturation import SaturationEstimate, estimate_saturation

__all__ = [
    "AnalyticEstimate",
    "FlowMatrix",
    "LatencyEstimate",
    "PowerEstimate",
    "SaturationEstimate",
    "ZERO_LOAD_PIPELINE_DEPTH",
    "estimate",
    "estimate_latency",
    "estimate_power",
    "estimate_saturation",
    "flow_matrix",
    "mean_hops",
    "pipeline_depth",
    "queueing_delay",
    "register_flow_builder",
    "router_event_rates",
    "traffic_flows",
    "zero_load_latency",
]
