"""Closed-form power: predicted event rates times per-event energies.

Orion's premise is that average power is per-event energy times event
frequency (section 2.1); the simulator *counts* the events, this module
*predicts* their steady-state rates from the routing-derived flow
matrix and multiplies by the exact same per-event energies the
simulator uses (via :meth:`PowerBinding.event_energies`), so the two
paths can only disagree about *rates*, never about joules-per-event.

Per-router-kind event rates (``F`` = flits/cycle entering a router,
``P`` = packets/cycle), mirroring where each router implementation
emits binding calls:

==============  ==========================================================
wormhole        write ``F``, read ``F``, xbar ``F``, switch arb ``P``
vc              write/read/xbar ``F``, local arb ``F``, switch arb ``F``,
                VC arb ``P``
speculative_vc  as vc, but heads skip the local (V:1) stage — local arb
                ``F - P``
central         port-FIFO write+read ``F``, CB write+read ``F``,
                CB-fabric arb ``2F`` (one write grant + one read grant
                per flit); no crossbar events
==============  ==========================================================

Link traversals are the per-channel flit loads, charged to the sending
node.  Arbitration energies are taken at one active request — exact at
low load, a slight undercount as contention grows (contended and
retried arbitration rounds are second-order in total power).
Traffic-insensitive power (idle chip-to-chip links, optional leakage
and clock) comes from :meth:`PowerBinding.constant_power_w`, the
closed-form twin of ``finalize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core import events as ev
from repro.core.config import NetworkConfig
from repro.core.events import EnergyAccountant
from repro.core.power_binding import PowerBinding
from repro.sim.topology import topology_for
from repro.analytic.flows import FlowMatrix

#: Which breakdown component each analytic event kind is charged to
#: (same categories as the simulator's accountant).
_EVENT_COMPONENT = {
    "buffer_write": ev.INPUT_BUFFER,
    "buffer_read": ev.INPUT_BUFFER,
    "xbar_traversal": ev.CROSSBAR,
    "link_traversal": ev.LINK,
    "switch_arb": ev.ARBITER,
    "vc_arb": ev.ARBITER,
    "local_arb": ev.ARBITER,
    "cb_arb": ev.ARBITER,
    "cb_write": ev.CENTRAL_BUFFER,
    "cb_read": ev.CENTRAL_BUFFER,
}


def router_event_rates(kind: str, flits: float,
                       packets: float) -> Dict[str, float]:
    """Events/cycle of one router passing ``flits`` flits and
    ``packets`` packets per cycle (table in the module docstring)."""
    if kind == "wormhole":
        return {
            "buffer_write": flits,
            "buffer_read": flits,
            "xbar_traversal": flits,
            "switch_arb": packets,
        }
    if kind in ("vc", "speculative_vc"):
        local = flits if kind == "vc" else max(0.0, flits - packets)
        return {
            "buffer_write": flits,
            "buffer_read": flits,
            "xbar_traversal": flits,
            "local_arb": local,
            "switch_arb": flits,
            "vc_arb": packets,
        }
    if kind == "central":
        return {
            "buffer_write": flits,
            "buffer_read": flits,
            "cb_write": flits,
            "cb_read": flits,
            "cb_arb": 2.0 * flits,
        }
    raise ValueError(f"no analytic event-rate model for router kind {kind!r}")


@dataclass(frozen=True)
class PowerEstimate:
    """Analytic average power of one (config, traffic, rate) point."""

    #: Network-wide average power, watts.
    total_power_w: float
    #: Network-wide watts per component category (accountant keys).
    breakdown_w: Dict[str, float] = field(default_factory=dict)
    #: Average watts per node, indexed by node id.
    node_power_w: List[float] = field(default_factory=list)
    #: Predicted network-wide events/cycle per event kind.
    event_rates: Dict[str, float] = field(default_factory=dict)


def make_binding(config: NetworkConfig) -> PowerBinding:
    """A power binding whose accountant is never used — the analytic
    path only reads its per-event energies and constant power."""
    topo = topology_for(config)
    return PowerBinding(config, EnergyAccountant(topo.num_nodes))


def estimate_power(flows: FlowMatrix,
                   binding: PowerBinding = None) -> PowerEstimate:
    """Expected average power of one operating point.

    Valid below saturation: the flow matrix assumes offered load equals
    delivered load, which holds while every channel's utilisation stays
    under one flit/cycle.
    """
    config = flows.config
    if binding is None:
        binding = make_binding(config)
    energies = binding.event_energies()
    freq = binding.tech.frequency_hz
    kind = config.router.kind
    num_nodes = len(flows.router_flits)

    # Per-node dynamic events: router-internal rates plus link sends.
    node_link_flits = [0.0] * num_nodes
    for (node, _port), load in flows.channel_load.items():
        node_link_flits[node] += load
    node_w = [0.0] * num_nodes
    breakdown: Dict[str, float] = dict.fromkeys(ev.COMPONENTS, 0.0)
    total_rates: Dict[str, float] = {}
    for node in range(num_nodes):
        rates = router_event_rates(kind, flows.router_flits[node],
                                   flows.router_packets[node])
        rates["link_traversal"] = node_link_flits[node]
        for event, rate in rates.items():
            if rate <= 0.0:
                continue
            watts = rate * energies[event] * freq
            node_w[node] += watts
            breakdown[_EVENT_COMPONENT[event]] += watts
            total_rates[event] = total_rates.get(event, 0.0) + rate

    # Traffic-insensitive power, spread back over nodes the way
    # finalize() charges it: idle links by out-degree, the rest evenly.
    degrees = [topology_for(config).neighbor(n, p) is not None
               for n in range(num_nodes) for p in range(4)]
    out_degree = [sum(degrees[n * 4:(n + 1) * 4]) for n in range(num_nodes)]
    constant = binding.constant_power_w(out_degree)
    total_degree = sum(out_degree)
    for component, watts in constant.items():
        breakdown[component] = breakdown.get(component, 0.0) + watts
        if component == ev.LINK and total_degree:
            for node in range(num_nodes):
                node_w[node] += watts * out_degree[node] / total_degree
        else:
            for node in range(num_nodes):
                node_w[node] += watts / num_nodes

    breakdown = {c: w for c, w in breakdown.items() if w > 0.0}
    return PowerEstimate(
        total_power_w=sum(breakdown.values()),
        breakdown_w=breakdown,
        node_power_w=node_w,
        event_rates=total_rates,
    )
