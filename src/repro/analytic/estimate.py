"""One-call analytic estimate of a full operating point.

:func:`estimate` is the subsystem's front door (the ``Orion`` facade's
``estimate_*`` methods and the ``repro estimate`` CLI command both land
here): build the flow matrix once, derive latency, power and the
saturation point from it, and return everything in one
:class:`AnalyticEstimate` that deliberately mirrors the fields of a
simulated :class:`~repro.sim.engine.SimulationResult` — same units,
same breakdown keys — so results from the fast path and the simulated
path drop into the same tables and plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.config import NetworkConfig
from repro.analytic.flows import FlowMatrix, flow_matrix
from repro.analytic.latency import LatencyEstimate, estimate_latency
from repro.analytic.power import PowerEstimate, estimate_power, make_binding
from repro.analytic.saturation import SaturationEstimate, estimate_saturation


@dataclass(frozen=True)
class AnalyticEstimate:
    """Closed-form prediction for one (config, traffic, rate) point."""

    config: NetworkConfig
    traffic: str
    rate: float
    #: Mean packet latency, cycles (``inf`` past the throughput bound).
    avg_latency: float
    #: Latency decomposition (zero-load + queueing terms).
    latency: LatencyEstimate
    #: Network-wide average power, watts.
    total_power_w: float
    #: Watts per component category (same keys as simulated breakdowns).
    power_breakdown_w: Dict[str, float] = field(default_factory=dict)
    #: Average watts per node.
    node_power_w: List[float] = field(default_factory=list)
    #: Predicted saturation point of this (config, traffic) pair.
    saturation: SaturationEstimate = None
    #: Flow-weighted mean hop count.
    avg_hops: float = 0.0
    #: Delivered flits/cycle network-wide (equals offered below
    #: saturation).
    throughput_flits_per_cycle: float = 0.0

    @property
    def zero_load_latency(self) -> float:
        return self.latency.zero_load

    @property
    def is_saturated(self) -> bool:
        """Whether this rate is at or past the predicted saturation."""
        return (self.saturation is not None
                and math.isfinite(self.saturation.rate)
                and self.rate >= self.saturation.rate)

    def describe(self) -> str:
        sat = self.saturation
        lines = [
            f"traffic {self.traffic} at rate {self.rate:g}:",
            f"  avg hops:       {self.avg_hops:.3f}",
            f"  zero-load:      {self.latency.zero_load:.2f} cycles",
            f"  queueing:       {self.latency.queueing:.2f} cycles",
            f"  avg latency:    {self.avg_latency:.2f} cycles",
            f"  max channel:    {self.latency.max_channel_load:.3f} "
            f"flits/cycle",
            f"  total power:    {self.total_power_w:.4g} W",
        ]
        if sat is not None:
            lines.append(f"  saturation:     {sat.rate:.4f} pkt/cycle "
                         f"(throughput bound {sat.throughput_bound:.4f})")
        return "\n".join(lines)


def estimate(config: NetworkConfig, traffic: str = "uniform",
             rate: float = 0.05, with_saturation: bool = True,
             **params) -> AnalyticEstimate:
    """Closed-form latency/power/saturation estimate of one point.

    Runs in milliseconds: the cost is one shortest-path routing pass
    over the traffic kind's flows plus arithmetic — no simulation.
    """
    flows = flow_matrix(config, traffic, rate, **params)
    latency = estimate_latency(flows)
    power = estimate_power(flows, make_binding(config))
    saturation = None
    if with_saturation:
        # Loads are linear in rate: rescale this point's matrix to unit
        # rate instead of paying a second routing pass.
        base = (flows.scaled(1.0 / rate) if rate > 0
                else flow_matrix(config, traffic, 1.0, **params))
        saturation = estimate_saturation(config, traffic, base=base,
                                         **params)
    return AnalyticEstimate(
        config=config,
        traffic=traffic,
        rate=rate,
        avg_latency=latency.total,
        latency=latency,
        total_power_w=power.total_power_w,
        power_breakdown_w=power.breakdown_w,
        node_power_w=power.node_power_w,
        saturation=saturation,
        avg_hops=flows.avg_hops,
        throughput_flits_per_cycle=flows.injection_flits,
    )
