"""Deterministic fault injection: specs, schedules and parsing.

Degraded fabrics — broken links, flaky routers, stuck virtual channels —
are a usage category the paper's framework (Figure 3) implies but never
exercises.  This module supplies the *description* side of that story:

* :class:`FaultEvent` — one primitive state change (kill/restore a link,
  freeze/thaw a router, wedge an output VC) at an absolute cycle;
* :class:`FaultSpec` — a reproducible fault scenario: explicit events
  plus counts of randomly-placed faults drawn from a dedicated seed;
* :func:`build_schedule` — expand a spec against a concrete network
  configuration into a sorted, deterministic :class:`FaultSchedule`;
* :func:`parse_fault_specs` — the CLI grammar
  (``repro run --faults link_kill:node=5,port=east,at=1200``).

The *application* side lives in the simulator:
:meth:`repro.sim.network.Network.apply_fault` consumes one event at a
time, driven by the engine between cycles through a single hook shared
by the dense and sparse kernels — so a seeded spec produces bit-identical
results under either kernel (see tests/test_kernel_equivalence.py).

Everything here is picklable and ``dataclasses.asdict``-able: fault
specs ride inside :class:`~repro.core.config.RunProtocol`, cross process
pools, and hash into experiment cache keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

#: Primitive fault-event kinds, in application order within a cycle.
FAULT_KINDS = ("link_kill", "link_restore", "vc_stuck",
               "router_freeze", "router_thaw")

#: What a router does with a packet whose routed output port is faulted:
#: ``"misroute"`` detours around the dead link when a detour exists
#: (falling back to dropping), ``"drop"`` discards the packet outright.
FAULT_POLICIES = ("misroute", "drop")

#: Sentinel owner wedged into a VC router's output-VC table by a
#: ``vc_stuck`` fault: no input VC ever matches it, so the slot is
#: permanently lost to allocation.
STUCK_VC = (-1, -1)


@dataclass(frozen=True)
class FaultEvent:
    """One primitive fault state change at an absolute simulation cycle.

    ``port`` and ``vc`` are meaningful only for the kinds that need them
    (link events and ``vc_stuck``); ``-1`` marks "not applicable".
    """

    kind: str
    cycle: int
    node: int
    port: int = -1
    vc: int = -1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"options: {FAULT_KINDS}")
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.node < 0:
            raise ValueError(f"fault node must be >= 0, got {self.node}")
        if self.kind in ("link_kill", "link_restore", "vc_stuck") \
                and self.port < 0:
            raise ValueError(f"{self.kind} fault needs an output port")
        if self.kind == "vc_stuck" and self.vc < 0:
            raise ValueError("vc_stuck fault needs a VC index")

    def describe(self) -> str:
        parts = [f"{self.kind}@{self.cycle}", f"node={self.node}"]
        if self.port >= 0:
            parts.append(f"port={self.port}")
        if self.vc >= 0:
            parts.append(f"vc={self.vc}")
        return " ".join(parts)

    def _sort_key(self) -> Tuple[int, int, int, int, int]:
        return (self.cycle, FAULT_KINDS.index(self.kind), self.node,
                self.port, self.vc)


@dataclass(frozen=True)
class FaultSpec:
    """A reproducible fault scenario.

    Explicit ``events`` are applied verbatim.  The ``link_kills`` /
    ``link_flips`` / ``router_freezes`` / ``stuck_vcs`` counts place that
    many random faults — locations and onset cycles drawn from a
    dedicated ``random.Random(seed)`` stream, independent of the traffic
    seed — with onsets uniform in ``[onset_start, onset_end)``.  Flips
    and freezes are transient (``flip_duration`` / ``freeze_duration``
    cycles); kills and stuck VCs are permanent.
    """

    seed: int = 0
    policy: str = "misroute"
    link_kills: int = 0
    link_flips: int = 0
    flip_duration: int = 500
    router_freezes: int = 0
    freeze_duration: int = 500
    stuck_vcs: int = 0
    onset_start: int = 0
    onset_end: int = 2000
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in FAULT_POLICIES:
            raise ValueError(f"unknown fault policy {self.policy!r}; "
                             f"options: {FAULT_POLICIES}")
        for name in ("link_kills", "link_flips", "router_freezes",
                     "stuck_vcs"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("flip_duration", "freeze_duration"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.onset_start < 0 or self.onset_end <= self.onset_start:
            raise ValueError(
                f"onset window [{self.onset_start}, {self.onset_end}) "
                f"is empty or negative"
            )
        if not isinstance(self.events, tuple):
            # Normalise lists so the spec stays hashable/asdict-stable.
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ValueError(f"events must be FaultEvent, "
                                 f"got {type(event).__name__}")

    @property
    def has_faults(self) -> bool:
        """Whether this spec produces any fault at all."""
        return bool(self.events) or bool(
            self.link_kills or self.link_flips or self.router_freezes
            or self.stuck_vcs)

    def with_(self, **changes) -> "FaultSpec":
        """A copy with fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        parts = []
        for name, label in (("link_kills", "kill"), ("link_flips", "flip"),
                            ("router_freezes", "freeze"),
                            ("stuck_vcs", "stuck")):
            count = getattr(self, name)
            if count:
                parts.append(f"{count} {label}")
        if self.events:
            parts.append(f"{len(self.events)} explicit")
        inner = ", ".join(parts) if parts else "no faults"
        return f"faults({inner}; seed={self.seed}, policy={self.policy})"


@dataclass(frozen=True)
class FaultSchedule:
    """A spec expanded against one configuration: the sorted, concrete
    event timeline the engine feeds to the network."""

    events: Tuple[FaultEvent, ...]
    policy: str = "misroute"

    def describe(self) -> str:
        if not self.events:
            return "fault schedule: (empty)"
        lines = [f"fault schedule ({len(self.events)} events, "
                 f"policy={self.policy}):"]
        lines += [f"  {event.describe()}" for event in self.events]
        return "\n".join(lines)


def build_schedule(spec: FaultSpec, config) -> FaultSchedule:
    """Expand a :class:`FaultSpec` into a concrete, sorted event
    timeline for ``config``'s topology.

    Deterministic: the same (spec, config) pair always yields the same
    schedule, regardless of kernel or call order — random placements
    come from one fresh ``random.Random(spec.seed)`` consumed in a fixed
    sequence.  Raises :class:`ValueError` when the spec does not fit the
    configuration (more kills than links, stuck VCs on a VC-less router,
    events naming nonexistent nodes/ports).
    """
    from repro.sim.topology import topology_for

    topo = topology_for(config)
    links = sorted((node, port) for node, port, _ in topo.channels())
    rng = random.Random(spec.seed)
    events: List[FaultEvent] = []

    def onset() -> int:
        return rng.randrange(spec.onset_start, spec.onset_end)

    # Random link faults: kills and flips drawn without replacement from
    # one sample, so a flip never restores an already-dead link.
    broken = spec.link_kills + spec.link_flips
    if broken:
        if broken > len(links):
            raise ValueError(
                f"{broken} random link faults requested but the topology "
                f"has only {len(links)} directed links"
            )
        chosen = rng.sample(links, broken)
        for node, port in chosen[:spec.link_kills]:
            events.append(FaultEvent("link_kill", onset(), node, port))
        for node, port in chosen[spec.link_kills:]:
            at = onset()
            events.append(FaultEvent("link_kill", at, node, port))
            events.append(FaultEvent("link_restore",
                                     at + spec.flip_duration, node, port))
    if spec.router_freezes:
        if spec.router_freezes > topo.num_nodes:
            raise ValueError(
                f"{spec.router_freezes} router freezes requested but the "
                f"topology has only {topo.num_nodes} nodes"
            )
        for node in rng.sample(range(topo.num_nodes), spec.router_freezes):
            at = onset()
            events.append(FaultEvent("router_freeze", at, node))
            events.append(FaultEvent("router_thaw",
                                     at + spec.freeze_duration, node))
    if spec.stuck_vcs:
        if not config.router.is_vc_kind:
            raise ValueError(
                f"stuck_vcs faults need a VC router, got "
                f"{config.router.kind!r}"
            )
        for _ in range(spec.stuck_vcs):
            node, port = links[rng.randrange(len(links))]
            vc = rng.randrange(config.router.num_vcs)
            events.append(FaultEvent("vc_stuck", onset(), node, port, vc))

    for event in spec.events:
        _validate_event(event, topo, config)
        events.append(event)
    events.sort(key=FaultEvent._sort_key)
    return FaultSchedule(events=tuple(events), policy=spec.policy)


def _validate_event(event: FaultEvent, topo, config) -> None:
    """Reject explicit events that name nonexistent hardware."""
    if event.node >= topo.num_nodes:
        raise ValueError(
            f"fault {event.describe()}: node outside "
            f"0..{topo.num_nodes - 1}"
        )
    if event.kind in ("link_kill", "link_restore", "vc_stuck"):
        if topo.neighbor(event.node, event.port) is None:
            raise ValueError(
                f"fault {event.describe()}: node {event.node} has no "
                f"outgoing link on port {event.port}"
            )
    if event.kind == "vc_stuck":
        if not config.router.is_vc_kind:
            raise ValueError(
                f"fault {event.describe()}: vc_stuck needs a VC router, "
                f"got {config.router.kind!r}"
            )
        if event.vc >= config.router.num_vcs:
            raise ValueError(
                f"fault {event.describe()}: VC outside "
                f"0..{config.router.num_vcs - 1}"
            )


# --- CLI grammar -------------------------------------------------------------

_PORT_ALIASES = {"north": 0, "south": 1, "east": 2, "west": 3,
                 "n": 0, "s": 1, "e": 2, "w": 3}


def _parse_port(text: str) -> int:
    port = _PORT_ALIASES.get(text.lower())
    if port is None:
        try:
            port = int(text)
        except ValueError:
            raise ValueError(
                f"bad port {text!r}: use north/south/east/west or 0-3"
            ) from None
    return port


def _parse_fields(body: str, spec_text: str) -> dict:
    fields = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"bad fault spec {spec_text!r}: expected name=value, "
                f"got {item!r}"
            )
        fields[name.strip()] = value.strip()
    return fields


def _take_int(fields: dict, name: str, spec_text: str,
              default: Optional[int] = None) -> int:
    if name not in fields:
        if default is not None:
            return default
        raise ValueError(f"fault spec {spec_text!r} is missing {name}=")
    try:
        return int(fields.pop(name))
    except ValueError:
        raise ValueError(
            f"fault spec {spec_text!r}: {name} must be an integer"
        ) from None


def parse_fault_specs(specs: Sequence[str], *, seed: int = 0,
                      policy: str = "misroute") -> FaultSpec:
    """Parse CLI fault descriptions into one :class:`FaultSpec`.

    Grammar (one spec per string, ``kind:name=value,...``)::

        link_kill:node=5,port=east,at=1200
        link_flip:node=5,port=2,at=1000,for=500
        router_freeze:node=3,at=500[,for=800]
        vc_stuck:node=2,port=east,vc=0,at=800
        random:kills=2,flips=1,freezes=1,stuck=1[,start=0,end=2000]

    ``port`` accepts names (north/south/east/west) or indices; ``for``
    gives a transient fault's duration in cycles; ``random`` sets the
    seeded random-placement counts.
    """
    events: List[FaultEvent] = []
    random_fields = dict(seed=seed)
    for spec_text in specs:
        kind, sep, body = spec_text.partition(":")
        kind = kind.strip()
        if not sep:
            raise ValueError(
                f"bad fault spec {spec_text!r}: expected kind:name=value,..."
            )
        fields = _parse_fields(body, spec_text)
        if kind == "random":
            random_fields["link_kills"] = _take_int(
                fields, "kills", spec_text, 0)
            random_fields["link_flips"] = _take_int(
                fields, "flips", spec_text, 0)
            random_fields["router_freezes"] = _take_int(
                fields, "freezes", spec_text, 0)
            random_fields["stuck_vcs"] = _take_int(
                fields, "stuck", spec_text, 0)
            if "seed" in fields:
                random_fields["seed"] = _take_int(fields, "seed", spec_text)
            if "start" in fields:
                random_fields["onset_start"] = _take_int(
                    fields, "start", spec_text)
            if "end" in fields:
                random_fields["onset_end"] = _take_int(
                    fields, "end", spec_text)
        elif kind in ("link_kill", "link_flip", "router_freeze", "vc_stuck"):
            node = _take_int(fields, "node", spec_text)
            at = _take_int(fields, "at", spec_text)
            if kind == "router_freeze":
                events.append(FaultEvent("router_freeze", at, node))
                if "for" in fields:
                    events.append(FaultEvent(
                        "router_thaw",
                        at + _take_int(fields, "for", spec_text), node))
            else:
                if "port" not in fields:
                    raise ValueError(
                        f"fault spec {spec_text!r} is missing port="
                    )
                port = _parse_port(fields.pop("port"))
                if kind == "vc_stuck":
                    events.append(FaultEvent(
                        "vc_stuck", at, node, port,
                        _take_int(fields, "vc", spec_text)))
                else:
                    events.append(FaultEvent("link_kill", at, node, port))
                    if kind == "link_flip":
                        events.append(FaultEvent(
                            "link_restore",
                            at + _take_int(fields, "for", spec_text, 500),
                            node, port))
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} in {spec_text!r}; options: "
                f"link_kill, link_flip, router_freeze, vc_stuck, random"
            )
        if fields:
            raise ValueError(
                f"fault spec {spec_text!r}: unknown fields "
                f"{sorted(fields)}"
            )
    return FaultSpec(policy=policy, events=tuple(events), **random_fields)
