"""Ballpark validation models (paper section 3.2)."""

from repro.validation.routers import (
    Alpha21364Router,
    InfiniBand12XSwitch,
    RouterEstimate,
    validation_report,
)

__all__ = [
    "Alpha21364Router",
    "InfiniBand12XSwitch",
    "RouterEstimate",
    "validation_report",
]
