"""Ballpark validation against commercial routers (paper section 3.2).

The paper validates Orion by checking its estimates for two commercial
routers against designers' guesstimates: the Alpha 21364 router [13]
("the integrated router and links consume 25 W of the total 125 W") and
the IBM InfiniBand 8-port 12X switch [8] (3 W per 30 Gb/s link).  The
precise measurements were proprietary then and remain unavailable, so —
as in the paper — the check is a *ballpark* one: the models, configured
with published architectural parameters, must land within the publicly
quoted power envelopes.

Parameters below are published or conservatively approximated; every
approximation is noted inline.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.power.arbiter import MatrixArbiterPower
from repro.power.buffer import FIFOBufferPower
from repro.power.central_buffer import CentralBufferPower
from repro.power.crossbar import MatrixCrossbarPower
from repro.tech.technology import Technology


@dataclass(frozen=True)
class RouterEstimate:
    """One router's estimated operating power."""

    name: str
    router_power_w: float
    link_power_w: float

    @property
    def total_power_w(self) -> float:
        return self.router_power_w + self.link_power_w


class Alpha21364Router:
    """The Alpha 21364's integrated router.

    Published parameters [13]: 0.18 um, 1.5 V core, router clocked at
    1.2 GHz; four network ports plus local traffic; 39-bit flits on the
    inter-processor links.  Approximations: per-port input buffering of
    ~316 flits (the 21364 holds 316 packet entries across its input
    structures — we model the per-port share), a full crossbar datapath,
    and a sustained utilization knob (defaults to 0.5, aggressive
    server-interconnect load).
    """

    def __init__(self, utilization: float = 0.5) -> None:
        if not 0.0 < utilization <= 1.0:
            raise ValueError(
                f"utilization must be in (0, 1], got {utilization}"
            )
        self.utilization = utilization
        self.tech = Technology(0.18, vdd=1.5, frequency_hz=1.2e9)
        self.ports = 5
        self.flit_bits = 39
        # ~316 packet entries of ~76 bytes across 4 network ports:
        # roughly 64 flits per port of 39-bit flits x ~19 flits/packet
        # collapses to an effective 512-flit array per port.
        self.buffer = FIFOBufferPower(self.tech, depth_flits=512,
                                      flit_bits=self.flit_bits)
        self.crossbar = MatrixCrossbarPower(
            self.tech, inputs=self.ports, outputs=self.ports,
            width_bits=self.flit_bits)
        self.arbiter = MatrixArbiterPower(
            self.tech, requesters=self.ports - 1,
            xbar_control_energy=self.crossbar.control_line_energy)
        #: The 21364's 4 off-chip links at ~1.5 W each (6 W total is the
        #: portion of the 25 W budget attributed to the link circuitry).
        self.link_power_w = 6.0

    def flit_energy(self) -> float:
        """Energy of one flit-hop through the router (J)."""
        return (
            self.buffer.write_energy()
            + self.buffer.read_energy()
            + self.arbiter.arbitration_energy(2)
            + self.crossbar.traversal_energy()
        )

    def estimate(self) -> RouterEstimate:
        """Average power at the configured utilization."""
        flits_per_second = (self.utilization * self.ports
                            * self.tech.frequency_hz)
        router = self.flit_energy() * flits_per_second
        return RouterEstimate("Alpha 21364 router", router,
                              self.link_power_w)


class InfiniBand12XSwitch:
    """The IBM InfiniBand 8-port 12X switch.

    Published parameters [8]: eight 12X ports at 30 Gb/s, 3 W per link;
    a central-buffered (SP/2-lineage) switch core.  Approximations:
    0.18 um core at 250 MHz moving 128-bit chunks (30 Gb/s / 128 bits
    ~ 234 M chunk/s per port), a 2r/2w shared memory of 2560 rows, and
    a utilization knob (defaults to 0.5).
    """

    def __init__(self, utilization: float = 0.5) -> None:
        if not 0.0 < utilization <= 1.0:
            raise ValueError(
                f"utilization must be in (0, 1], got {utilization}"
            )
        self.utilization = utilization
        self.tech = Technology(0.18, vdd=1.5, frequency_hz=250e6)
        self.ports = 8
        self.chunk_bits = 128
        self.central = CentralBufferPower(
            self.tech, rows=2560, banks=4, flit_bits=self.chunk_bits // 4,
            read_ports=2, write_ports=2, router_ports=self.ports)
        self.input_buffer = FIFOBufferPower(
            self.tech, depth_flits=64, flit_bits=self.chunk_bits)
        #: Eight 12X links at 3 W each (the paper's datasheet figure).
        self.link_power_w = 8 * 3.0

    def chunk_energy(self) -> float:
        """Energy of one chunk through input buffer and central
        buffer (J)."""
        return (
            self.input_buffer.write_energy()
            + self.input_buffer.read_energy()
            + self.central.write_energy()
            + self.central.read_energy()
        )

    def estimate(self) -> RouterEstimate:
        chunks_per_second = (self.utilization * self.ports
                             * self.tech.frequency_hz)
        core = self.chunk_energy() * chunks_per_second
        return RouterEstimate("IBM InfiniBand 8-port 12X switch", core,
                              self.link_power_w)


def validation_report() -> str:
    """Both estimates against their published envelopes."""
    alpha = Alpha21364Router().estimate()
    ib = InfiniBand12XSwitch().estimate()
    lines = [
        "== Ballpark validation (paper section 3.2) ==",
        f"{alpha.name}:",
        f"  router {alpha.router_power_w:6.1f} W + links "
        f"{alpha.link_power_w:4.1f} W = {alpha.total_power_w:6.1f} W "
        f"(published envelope: 25 W router+links of a 125 W chip)",
        f"{ib.name}:",
        f"  core   {ib.router_power_w:6.1f} W + links "
        f"{ib.link_power_w:4.1f} W = {ib.total_power_w:6.1f} W "
        f"(published: 3 W/link x 8; switch quoted at ~15 W in a "
        f"Mellanox blade budget)",
    ]
    return "\n".join(lines)
