"""Job descriptions for the simulation service: parsing, keys, journal.

A *job* is one unit of server-side work, submitted as JSON.  Three
kinds map onto the library's entry points:

* ``run`` — one simulation point (``repro run``): a config, a traffic
  spec, a rate, an optional protocol;
* ``experiment`` — a full :class:`~repro.exp.spec.ExperimentSpec` grid
  (``repro experiment``), executed with the orchestrator's resilient
  ``run_points`` path;
* ``estimate`` — a closed-form analytic estimate (``repro estimate``),
  answered in milliseconds without simulating.

The payload schema deliberately reuses the JSON round-trips of
:mod:`repro.exp.spec`; configs may additionally be named presets
(``"VC16"`` or ``{"preset": "VC16", "overrides": {...}}``) so clients
do not need to ship 30-field config dicts for standard studies.

Every simulation job also has a deterministic **key**: the hash of its
run points' cache keys.  Two payloads that would simulate exactly the
same points — regardless of field ordering or preset-vs-explicit config
spelling — collide on the key, which is what the server's single-flight
dedup coalesces on.

:class:`JobJournal` is the crash-safety layer: accepted payloads are
journaled under ``results/.serve/`` until their job completes, so a
killed server recovers queued and in-flight work on restart.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.core.config import NetworkConfig
from repro.core.presets import PRESETS, preset
from repro.exp.spec import (
    ExperimentSpec,
    RunPoint,
    TrafficSpec,
    config_from_dict,
    config_to_dict,
    protocol_from_dict,
)

JOB_KINDS = ("run", "experiment", "estimate")
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Default journal location, relative to the working directory.
DEFAULT_JOURNAL_DIR = os.path.join("results", ".serve")


class JobError(ValueError):
    """A malformed job payload (maps to HTTP 400)."""


@dataclass
class Job:
    """One accepted unit of work and its whole lifecycle."""

    id: str
    kind: str
    key: str
    payload: Dict[str, Any]
    priority: int = 0
    #: Expanded run points (run/experiment kinds).
    points: List[RunPoint] = field(default_factory=list)
    #: Parsed estimate arguments (estimate kind).
    estimate: Optional[Dict[str, Any]] = None
    #: Execution options: processes / point_timeout / retries.
    options: Dict[str, Any] = field(default_factory=dict)
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Submissions coalesced onto this job by single-flight dedup.
    coalesced: int = 0
    #: Progress/status events published so far (NDJSON stream backing).
    #: The list is bounded server-side: old entries are trimmed from the
    #: front and ``events_base`` advances, so ``events[i]`` is the event
    #: with absolute sequence number ``events_base + i``.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Absolute sequence number of ``events[0]`` (> 0 once the size
    #: bound has trimmed the front of the log).
    events_base: int = 0

    #: Set once a client cancels the job; the execution path polls it
    #: (queued jobs never get one — they are dequeued directly).
    cancel_event: Optional[Any] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def trim_events(self, max_events: int) -> int:
        """Bound the event log to its newest ``max_events`` entries;
        returns how many were dropped.  Stream cursors are absolute
        sequence numbers, so trimming never replays or reorders events
        for a live follower — it can only create a gap for a follower
        that fell further behind than the bound."""
        drop = len(self.events) - max_events
        if drop <= 0:
            return 0
        del self.events[:drop]
        self.events_base += drop
        return drop

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def public_dict(self, with_result: bool = True) -> Dict[str, Any]:
        """The JSON shape of ``GET /v1/jobs/<id>``."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "priority": self.priority,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "num_points": len(self.points),
            "coalesced": self.coalesced,
            "error": self.error,
            "num_events": self.events_base + len(self.events),
            "events_trimmed": self.events_base,
        }
        if with_result:
            out["result"] = self.result
        return out


def _resolve_config(data: Any, context: str) -> NetworkConfig:
    """A config from a preset name, a ``{"preset": ..., "overrides":
    {...}}`` dict, or a full :func:`config_to_dict` dict."""
    if isinstance(data, str):
        if data not in PRESETS:
            raise JobError(f"{context}: unknown preset {data!r}; "
                           f"options: {', '.join(sorted(PRESETS))}")
        return preset(data)
    if not isinstance(data, Mapping):
        raise JobError(f"{context}: config must be a preset name or an "
                       f"object, got {type(data).__name__}")
    if "preset" in data:
        config = _resolve_config(data["preset"], context)
        overrides = dict(data.get("overrides") or {})
        unknown = set(data) - {"preset", "overrides"}
        if unknown:
            raise JobError(f"{context}: unknown config fields "
                           f"{sorted(unknown)}")
        try:
            router = overrides.pop("router", None)
            if router:
                config = config.with_router(**router)
            if overrides:
                config = config.with_(**overrides)
        except (TypeError, ValueError) as exc:
            raise JobError(f"{context}: bad config overrides: {exc}") \
                from None
        return config
    try:
        return config_from_dict(data)
    except (TypeError, ValueError, KeyError) as exc:
        raise JobError(f"{context}: bad config: {exc}") from None


def _resolve_protocol(data: Any, context: str):
    try:
        return protocol_from_dict(data or {})
    except (TypeError, ValueError, KeyError) as exc:
        raise JobError(f"{context}: bad protocol: {exc}") from None


def _resolve_traffic(data: Any, context: str) -> TrafficSpec:
    try:
        return TrafficSpec.from_dict(data)
    except (TypeError, ValueError, KeyError) as exc:
        raise JobError(f"{context}: bad traffic: {exc}") from None


def _parse_options(data: Any) -> Dict[str, Any]:
    """Validated execution options with server-side defaults filled in
    later (``None`` means "use the server default")."""
    if data is None:
        data = {}
    if not isinstance(data, Mapping):
        raise JobError("options must be an object")
    unknown = set(data) - {"processes", "point_timeout", "retries"}
    if unknown:
        raise JobError(f"unknown options {sorted(unknown)}; "
                       f"supported: processes, point_timeout, retries")
    options: Dict[str, Any] = {"processes": None, "point_timeout": None,
                               "retries": None}
    if data.get("processes") is not None:
        processes = int(data["processes"])
        if processes < 1:
            raise JobError(f"options.processes must be >= 1, "
                           f"got {processes}")
        options["processes"] = processes
    if data.get("point_timeout") is not None:
        point_timeout = float(data["point_timeout"])
        if point_timeout <= 0:
            raise JobError(f"options.point_timeout must be > 0, "
                           f"got {point_timeout}")
        options["point_timeout"] = point_timeout
    if data.get("retries") is not None:
        retries = int(data["retries"])
        if retries < 0:
            raise JobError(f"options.retries must be >= 0, got {retries}")
        options["retries"] = retries
    return options


def _parse_run_spec(spec: Mapping[str, Any]) -> List[RunPoint]:
    for name in ("config", "rate"):
        if name not in spec:
            raise JobError(f"run spec is missing {name!r}")
    config = _resolve_config(spec["config"], "run spec")
    traffic = _resolve_traffic(spec.get("traffic", "uniform"), "run spec")
    protocol = _resolve_protocol(spec.get("protocol"), "run spec")
    try:
        rate = float(spec["rate"])
    except (TypeError, ValueError):
        raise JobError(f"run spec: rate must be a number, "
                       f"got {spec['rate']!r}") from None
    return [RunPoint(config=config, traffic=traffic, rate=rate,
                     protocol=protocol, label=str(spec.get("label", "")))]


def _parse_experiment_spec(spec: Mapping[str, Any]) -> List[RunPoint]:
    fields = dict(spec)
    if "presets" in fields:
        if "configs" in fields:
            raise JobError("experiment spec: give presets or configs, "
                           "not both")
        fields["configs"] = [[name, name] for name in fields.pop("presets")]
    if "configs" not in fields:
        raise JobError("experiment spec is missing configs (or presets)")
    try:
        configs = tuple(
            (str(label), _resolve_config(config, f"config {label!r}"))
            for label, config in fields["configs"])
    except (TypeError, ValueError) as exc:
        if isinstance(exc, JobError):
            raise
        raise JobError(f"experiment spec: configs must be "
                       f"[label, config] pairs: {exc}") from None
    for name in ("traffics", "rates"):
        if not fields.get(name):
            raise JobError(f"experiment spec is missing {name!r}")
    try:
        experiment = ExperimentSpec(
            configs=configs,
            traffics=tuple(_resolve_traffic(t, "experiment spec")
                           for t in fields["traffics"]),
            rates=tuple(float(r) for r in fields["rates"]),
            seeds=tuple(int(s) for s in fields.get("seeds") or (1,)),
            protocol=_resolve_protocol(fields.get("protocol"),
                                       "experiment spec"))
    except JobError:
        raise
    except (TypeError, ValueError) as exc:
        raise JobError(f"experiment spec: {exc}") from None
    return experiment.points()


def _parse_estimate_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    for name in ("config", "rate"):
        if name not in spec:
            raise JobError(f"estimate spec is missing {name!r}")
    traffic = _resolve_traffic(spec.get("traffic", "uniform"),
                               "estimate spec")
    try:
        rate = float(spec["rate"])
    except (TypeError, ValueError):
        raise JobError(f"estimate spec: rate must be a number, "
                       f"got {spec['rate']!r}") from None
    return {
        "config": _resolve_config(spec["config"], "estimate spec"),
        "traffic": traffic.name,
        "params": dict(traffic.params),
        "rate": rate,
    }


def _job_key(kind: str, points: List[RunPoint],
             estimate: Optional[Dict[str, Any]]) -> str:
    """Deterministic dedup key: identical server-side work hashes
    identically, whatever the payload's spelling."""
    if kind == "estimate":
        digest = {
            "kind": "estimate",
            "config": config_to_dict(estimate["config"]),
            "traffic": estimate["traffic"],
            "params": sorted(estimate["params"].items()),
            "rate": estimate["rate"],
        }
    else:
        # Run and experiment jobs that expand to the same point set are
        # the same work (a one-point experiment deduplicates against the
        # equivalent run job).
        digest = {"kind": "points",
                  "points": sorted(p.cache_key() for p in points)}
    blob = json.dumps(digest, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def parse_job(payload: Any, job_id: str) -> Job:
    """Validate one submitted payload into a :class:`Job`.

    Raises :class:`JobError` (→ HTTP 400) with a message naming the
    offending field on any malformed input.
    """
    if not isinstance(payload, Mapping):
        raise JobError(f"job payload must be a JSON object, "
                       f"got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise JobError(f"unknown job kind {kind!r}; "
                       f"options: {', '.join(JOB_KINDS)}")
    unknown = set(payload) - {"kind", "spec", "priority", "options"}
    if unknown:
        raise JobError(f"unknown job fields {sorted(unknown)}")
    spec = payload.get("spec")
    if not isinstance(spec, Mapping):
        raise JobError("job payload needs a 'spec' object")
    try:
        priority = int(payload.get("priority", 0))
    except (TypeError, ValueError):
        raise JobError(f"priority must be an integer, "
                       f"got {payload.get('priority')!r}") from None
    options = _parse_options(payload.get("options"))

    points: List[RunPoint] = []
    estimate = None
    if kind == "run":
        points = _parse_run_spec(spec)
    elif kind == "experiment":
        points = _parse_experiment_spec(spec)
    else:
        estimate = _parse_estimate_spec(spec)
    return Job(id=job_id, kind=kind,
               key=_job_key(kind, points, estimate),
               payload=dict(payload), priority=priority,
               points=points, estimate=estimate, options=options,
               submitted_at=time.time())


class JobJournal:
    """Crash-safe record of accepted-but-unfinished jobs.

    One JSON file per job under ``root``, written atomically (tmp +
    ``os.replace``) on acceptance and unlinked on completion.  Whatever
    is present at startup is work a previous server accepted but never
    finished — :meth:`recover` returns it oldest-first so a restarted
    server re-enqueues in the original arrival order.
    """

    def __init__(self, root=DEFAULT_JOURNAL_DIR) -> None:
        self.root = Path(root)

    def _path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def record(self, job: Job) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(job.id)
        entry = {"id": job.id, "payload": job.payload,
                 "submitted_at": job.submitted_at}
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=f"{path.name}.tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def discard(self, job_id: str) -> None:
        try:
            self._path(job_id).unlink()
        except OSError:
            pass

    def recover(self) -> List[Dict[str, Any]]:
        """Journal entries oldest-first; unreadable files are dropped
        (and removed) rather than wedging startup forever."""
        entries = []
        if not self.root.exists():
            return entries
        for path in sorted(self.root.glob("*.json"),
                           key=lambda p: p.stat().st_mtime):
            try:
                with open(path) as f:
                    entry = json.load(f)
                if not isinstance(entry, dict) or "id" not in entry \
                        or "payload" not in entry:
                    raise ValueError("not a journal entry")
            except (OSError, ValueError):
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            entries.append(entry)
        return entries

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json")) \
            if self.root.exists() else 0
