"""Horizontal scale-out for the simulation service: the shard gateway.

One :class:`GatewayApp` fronts a fleet of ordinary ``repro serve``
backends ("shards").  Every job is routed by **consistent-hashing its
single-flight dedup key** onto the ring of live shards, so each key has
exactly one home shard and fleet-wide deduplication falls out of the
existing per-server dedup for free: two clients submitting identical
work through the gateway always land on the same shard, where the
second coalesces onto the first.

The store stays **shared-nothing**: each shard owns a private
content-addressed result cache (``<cache-dir>/shard-<i>``), and because
routing is stable by key, a key's cached result always lives on its
home shard — no cross-shard locking, no shared filesystem contention.

Failure handling:

* a dead shard (connection refused, timeout, or a failed health probe)
  is marked down and its key range rehashes onto the next live shard on
  the ring;
* submits are idempotent — the payload is just re-posted to the new
  home shard, where dedup absorbs any duplicate — so the gateway
  retries them transparently;
* jobs already routed to the dead shard are resubmitted to their new
  home shard and the old job id is **aliased** to the new one, so
  clients polling the old id keep working and zero accepted jobs are
  lost;
* the probe loop keeps probing dead shards and re-admits them when
  they come back (their key ranges rehash home again).

Topology entry points:

* ``repro serve --shards N`` → :func:`serve_sharded` spawns N shard
  subprocesses on ephemeral ports (via :class:`ShardSupervisor`) and
  runs the gateway in front of them; SIGTERM drains shard-by-shard.
* ``repro gateway --backend host:port ...`` → :func:`gateway_forever`
  fronts externally-managed shards.

Everything is standard library only, same as the rest of the service.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.serve.app import (
    V1_DEPRECATION,
    ServeConfig,
    _json_safe,
    _legacy_body,
    error_body,
)
from repro.serve.jobs import JobError, parse_job

#: Statuses after which a routed job never needs failover resubmission.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

#: Gateway-level counters reported at the top of ``GET /metrics``.
GATEWAY_COUNTERS = (
    "gw_submitted",        # submissions received by the gateway
    "gw_invalid",          # bounced 400 at the gateway (bad payload)
    "gw_routed",           # submissions forwarded to a shard
    "gw_retried_submits",  # submits replayed after a dead-shard error
    "gw_failover_jobs",    # routed jobs resubmitted off a dead shard
    "gw_rejected_no_shard",   # bounced 503: no live shard at all
    "gw_rejected_draining",   # bounced 503 during gateway drain
    "gw_shards_down",      # times a shard was marked unhealthy
    "gw_shards_recovered",  # times a dead shard was re-admitted
)


class ShardRing:
    """Consistent-hash ring over shard addresses.

    Each backend owns ``replicas`` pseudo-random points on a 64-bit
    ring; a key routes to the first backend point clockwise from the
    key's own hash.  Adding or removing one backend therefore only
    remaps the key ranges adjacent to its points (~1/N of the keyspace)
    instead of reshuffling everything, which is what keeps dedup and
    cache locality intact across shard failures and recoveries.
    """

    def __init__(self, backends, replicas: int = 64) -> None:
        self.backends: Tuple[str, ...] = tuple(dict.fromkeys(backends))
        if not self.backends:
            raise ValueError("ring needs at least one backend")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = sorted(
            (self._hash(f"{backend}#{replica}"), backend)
            for backend in self.backends
            for replica in range(replicas))

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def route(self, key: str,
              live: Optional[List[str]] = None) -> Optional[str]:
        """The home backend for ``key`` among ``live`` (default: all);
        ``None`` when no allowed backend exists."""
        allowed = set(self.backends if live is None else live) \
            & set(self.backends)
        if not allowed:
            return None
        start = bisect.bisect_right(self._points, (self._hash(key), ""))
        count = len(self._points)
        for step in range(count):
            _, backend = self._points[(start + step) % count]
            if backend in allowed:
                return backend
        return None

    def preference(self, key: str) -> List[str]:
        """Every backend in failover order for ``key`` (the home shard
        first, then each next-clockwise distinct backend)."""
        start = bisect.bisect_right(self._points, (self._hash(key), ""))
        count = len(self._points)
        ordered: List[str] = []
        for step in range(count):
            _, backend = self._points[(start + step) % count]
            if backend not in ordered:
                ordered.append(backend)
        return ordered


@dataclass
class GatewayConfig:
    """Everything ``repro gateway`` accepts on the command line."""

    host: str = "127.0.0.1"
    port: int = 8421
    backends: Tuple[str, ...] = ()
    #: Virtual points per backend on the hash ring.
    replicas: int = 64
    #: Seconds between health probes of every backend (the probe is
    #: also what re-admits a recovered shard).
    probe_interval: float = 2.0
    #: Per-request timeout talking to a backend.
    backend_timeout: float = 30.0
    #: Seconds each spawned shard gets to drain on shutdown.
    drain_timeout: float = 30.0
    quiet: bool = False

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("gateway needs at least one backend")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.probe_interval <= 0:
            raise ValueError(f"probe_interval must be > 0, "
                             f"got {self.probe_interval}")
        if self.backend_timeout <= 0:
            raise ValueError(f"backend_timeout must be > 0, "
                             f"got {self.backend_timeout}")
        if self.drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be > 0, "
                             f"got {self.drain_timeout}")


async def _read_head(reader: asyncio.StreamReader,
                     timeout: float) -> Tuple[int, Dict[str, str]]:
    """Status code + lower-cased headers of one backend response."""
    line = await asyncio.wait_for(reader.readline(), timeout)
    try:
        status = int(line.split()[1])
    except (IndexError, ValueError):
        raise ConnectionError(f"bad status line {line!r}") from None
    headers: Dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


class GatewayApp:
    """One running shard gateway."""

    def __init__(self, config: GatewayConfig,
                 supervisor: Optional["ShardSupervisor"] = None) -> None:
        self.config = config
        self.supervisor = supervisor
        self.ring = ShardRing(config.backends, config.replicas)
        self.alive: Dict[str, bool] = {b: True for b in config.backends}
        #: Last successful health snapshot per backend.
        self.shard_health: Dict[str, Dict[str, Any]] = {}
        #: job id → routing record: backend, key, payload, terminal.
        self.routes: Dict[str, Dict[str, Any]] = {}
        #: old job id → replacement id after a failover resubmission.
        self.aliases: Dict[str, str] = {}
        self.counters: Dict[str, int] = dict.fromkeys(GATEWAY_COUNTERS, 0)
        self.draining = False
        self.port: Optional[int] = None
        self.ready = threading.Event()
        self.started_at = time.time()
        self._failing: Set[str] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Future] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # --- lifecycle ----------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(message, flush=True)

    async def serve(self) -> int:
        """Run until drained; returns the process exit code (0)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = self._loop.create_future()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(f"gateway on http://{self.config.host}:{self.port} "
                  f"({len(self.config.backends)} shard(s): "
                  f"{', '.join(self.config.backends)})")
        self.ready.set()
        prober = self._loop.create_task(self._probe_loop())
        try:
            code = await self._stopped
        finally:
            prober.cancel()
            self._server.close()
            await self._server.wait_closed()
        self._log("gateway: drain complete, exiting 0")
        return code

    def request_drain(self) -> None:
        """Thread-safe external drain trigger (what SIGTERM calls)."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._begin_drain)
            except RuntimeError:
                pass

    def _begin_drain(self) -> None:
        if self.draining:
            return
        self.draining = True
        self._log("gateway: drain started")
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        """Shard-by-shard drain: each spawned shard gets a SIGTERM and
        its full drain budget *sequentially*, so at most one shard's
        worth of capacity is gone at a time while the fleet empties."""
        if self.supervisor is not None:
            for shard in self.supervisor.shards:
                self._log(f"gateway: draining shard-{shard.index} "
                          f"({shard.backend})")
                await self._loop.run_in_executor(
                    None, shard.stop, self.config.drain_timeout)
        if not self._stopped.done():
            self._stopped.set_result(0)

    # --- backend I/O --------------------------------------------------------

    async def _call(self, backend: str, method: str, path: str,
                    payload: Optional[Any] = None
                    ) -> Tuple[int, Dict[str, str], Any]:
        """One JSON request/response round-trip with a backend."""
        host, _, port = backend.rpartition(":")
        timeout = self.config.backend_timeout
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, int(port)), timeout)
        try:
            body = b"" if payload is None else json.dumps(payload).encode()
            head = [f"{method} {path} HTTP/1.1", f"Host: {backend}",
                    "Connection: close"]
            if body:
                head += ["Content-Type: application/json",
                         f"Content-Length: {len(body)}"]
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
            await writer.drain()
            status, headers = await _read_head(reader, timeout)
            length = int(headers.get("content-length", 0) or 0)
            data = await asyncio.wait_for(
                reader.readexactly(length) if length else reader.read(),
                timeout)
            try:
                out = json.loads(data) if data else {}
            except ValueError:
                out = {"error": data.decode(errors="replace")}
            return status, headers, out
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    def _live(self) -> List[str]:
        return [b for b in self.config.backends if self.alive.get(b)]

    async def _mark_down(self, backend: str) -> None:
        """Flag one backend unhealthy and fail its routed jobs over to
        their next live home shard.  Idempotent and re-entrancy-safe —
        a failover already in progress is not restarted."""
        if self.alive.get(backend):
            self.alive[backend] = False
            self.counters["gw_shards_down"] += 1
            self._log(f"gateway: shard {backend} is down; rehashing its "
                      f"key range")
        if backend in self._failing:
            return
        self._failing.add(backend)
        try:
            await self._failover(backend)
        finally:
            self._failing.discard(backend)

    async def _failover(self, backend: str) -> None:
        """Resubmit every non-terminal job routed to ``backend`` to its
        new home shard, aliasing old ids to the replacements."""
        doomed = [(job_id, route)
                  for job_id, route in list(self.routes.items())
                  if route["backend"] == backend
                  and not route["terminal"]]
        moved = 0
        for job_id, route in doomed:
            if route["backend"] != backend or route["terminal"]:
                continue  # another pass already moved it
            status, out, _ = await self._submit_via(
                route["payload"], route["key"], record=False)
            if status not in (200, 202) or not isinstance(out, dict) \
                    or not out.get("id"):
                continue  # no live shard; the probe loop will retry
            new_id = out["id"]
            new_backend = out["_backend"]
            route["backend"] = new_backend
            self.counters["gw_failover_jobs"] += 1
            moved += 1
            if new_id != job_id:
                self.aliases[job_id] = new_id
                self.routes[new_id] = {"backend": new_backend,
                                       "key": route["key"],
                                       "payload": route["payload"],
                                       "terminal": False}
        if doomed:
            self._log(f"gateway: resubmitted {moved}/{len(doomed)} "
                      f"job(s) off {backend}")

    async def _probe_loop(self) -> None:
        """Detect silent shard death and re-admit recovered shards."""
        while True:
            await asyncio.sleep(self.config.probe_interval)
            for backend in self.config.backends:
                try:
                    status, _, health = await self._call(
                        backend, "GET", "/healthz")
                except (OSError, asyncio.TimeoutError, ConnectionError):
                    status, health = 0, None
                if status == 200 and isinstance(health, dict):
                    self.shard_health[backend] = health
                    if not self.alive.get(backend):
                        self.alive[backend] = True
                        self.counters["gw_shards_recovered"] += 1
                        self._log(f"gateway: shard {backend} recovered; "
                                  f"re-admitted to the ring")
                elif self.alive.get(backend):
                    await self._mark_down(backend)

    # --- request handlers ---------------------------------------------------

    async def _submit_via(self, payload: Any, key: str, *,
                          record: bool = True
                          ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Route one parsed submission to its home shard, retrying on
        the next live shard when the home shard is dead (the submit is
        idempotent: the shard's dedup absorbs any duplicate)."""
        tried: Set[str] = set()
        while True:
            live = [b for b in self._live() if b not in tried]
            backend = self.ring.route(key, live=live)
            if backend is None:
                self.counters["gw_rejected_no_shard"] += 1
                return 503, error_body(
                    "shard_unavailable",
                    "no live shard can take this job",
                    retryable=True), {}
            try:
                status, headers, out = await self._call(
                    backend, "POST", "/v2/jobs", payload)
            except (OSError, asyncio.TimeoutError, ConnectionError):
                tried.add(backend)
                self.counters["gw_retried_submits"] += 1
                await self._mark_down(backend)
                continue
            if isinstance(out, dict) and out.get("id"):
                out["_backend"] = backend
                if record:
                    self.routes[out["id"]] = {
                        "backend": backend, "key": key,
                        "payload": payload, "terminal": False}
                    self.counters["gw_routed"] += 1
            extra = {"X-Repro-Shard": backend}
            if headers.get("retry-after"):
                extra["Retry-After"] = headers["retry-after"]
            return status, out, extra

    async def _submit(self, payload: Any
                      ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        self.counters["gw_submitted"] += 1
        if self.draining:
            self.counters["gw_rejected_draining"] += 1
            return 503, error_body("draining", "gateway is draining",
                                   retryable=True), {}
        try:
            key = parse_job(payload, "route").key
        except JobError as exc:
            self.counters["gw_invalid"] += 1
            return 400, error_body("invalid_job", str(exc)), {}
        status, out, extra = await self._submit_via(payload, key)
        if isinstance(out, dict):
            out.pop("_backend", None)
        return status, out, extra

    async def _submit_batch(self, payload: Any
                            ) -> Tuple[int, Dict[str, Any],
                                       Dict[str, str]]:
        """Fan one batch out across the fleet: each entry routes by its
        own key, entries forward concurrently, the response keeps the
        submission order (mirroring the single-server batch shape)."""
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("jobs"), list):
            self.counters["gw_submitted"] += 1
            self.counters["gw_invalid"] += 1
            return 400, error_body("invalid_batch",
                                   "batch payload needs a 'jobs' list"), {}
        gate = asyncio.Semaphore(16)

        async def one(entry: Any) -> Tuple[int, Dict[str, Any]]:
            async with gate:
                status, out, _ = await self._submit(entry)
            if isinstance(out, dict):
                out.pop("_backend", None)
            return status, out

        outcomes = await asyncio.gather(
            *(one(entry) for entry in payload["jobs"]))
        results = []
        accepted = deduped = rejected = 0
        for status, out in outcomes:
            if status == 202:
                accepted += 1
            elif status == 200:
                deduped += 1
            else:
                rejected += 1
            results.append({**out, "http_status": status})
        return (200, {"jobs": results, "accepted": accepted,
                      "deduped": deduped, "rejected": rejected}, {})

    def _resolve(self, job_id: str
                 ) -> Tuple[str, Optional[Dict[str, Any]]]:
        """Follow failover aliases to the live id + routing record."""
        seen: Set[str] = set()
        while job_id in self.aliases and job_id not in seen:
            seen.add(job_id)
            job_id = self.aliases[job_id]
        return job_id, self.routes.get(job_id)

    async def _proxy_job(self, method: str, job_id: str, tail: str = ""
                         ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Proxy one per-job request (status/cancel) to its home shard,
        failing the job over first if its shard died."""
        for _ in range(len(self.config.backends) + 1):
            final_id, route = self._resolve(job_id)
            if route is None:
                return await self._search_job(method, final_id, tail)
            backend = route["backend"]
            if not self.alive.get(backend):
                await self._mark_down(backend)
                if self._resolve(job_id)[0] == final_id:
                    break  # nowhere to fail over to
                continue
            path = f"/v2/jobs/{final_id}" + (f"/{tail}" if tail else "")
            try:
                status, _, out = await self._call(backend, method, path)
            except (OSError, asyncio.TimeoutError, ConnectionError):
                await self._mark_down(backend)
                continue
            if status == 200 and isinstance(out, dict) \
                    and out.get("status") in TERMINAL_STATUSES:
                route["terminal"] = True
            return status, out, {"X-Repro-Shard": backend}
        return 503, error_body("shard_unavailable",
                               f"no live shard holds job {job_id!r}",
                               retryable=True), {}

    async def _search_job(self, method: str, job_id: str, tail: str
                          ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """A job the gateway has no route for (submitted directly to a
        shard, or the gateway restarted): ask every live shard."""
        path = f"/v2/jobs/{job_id}" + (f"/{tail}" if tail else "")
        for backend in self._live():
            try:
                status, _, out = await self._call(backend, method, path)
            except (OSError, asyncio.TimeoutError, ConnectionError):
                await self._mark_down(backend)
                continue
            if status != 404:
                return status, out, {"X-Repro-Shard": backend}
        return 404, error_body("job_not_found",
                               f"no such job {job_id!r}"), {}

    async def _list_jobs(self) -> Tuple[int, Dict[str, Any],
                                        Dict[str, str]]:
        jobs: List[Dict[str, Any]] = []
        for backend in self._live():
            try:
                status, _, out = await self._call(backend, "GET",
                                                  "/v2/jobs")
            except (OSError, asyncio.TimeoutError, ConnectionError):
                await self._mark_down(backend)
                continue
            if status == 200 and isinstance(out, dict):
                for job in out.get("jobs", ()):
                    jobs.append({**job, "shard": backend})
        return 200, {"jobs": jobs}, {}

    def _healthz(self) -> Dict[str, Any]:
        shards = {}
        for backend in self.config.backends:
            entry: Dict[str, Any] = {
                "alive": bool(self.alive.get(backend)),
                **{k: v for k, v in
                   self.shard_health.get(backend, {}).items()},
            }
            if self.supervisor is not None:
                entry["pid"] = self.supervisor.pid_of(backend)
            shards[backend] = entry
        return {
            "status": "draining" if self.draining else "ok",
            "role": "gateway",
            "shards": shards,
            "shards_alive": len(self._live()),
            "shards_total": len(self.config.backends),
        }

    async def _metrics(self) -> Dict[str, Any]:
        """Fleet metrics: gateway counters at the top, every shard's
        snapshot under ``shards``, and an ``aggregate`` that sums the
        counters/gauges (percentiles and rates take the fleet max)."""
        snapshots: Dict[str, Dict[str, Any]] = {}
        for backend in self._live():
            try:
                status, _, out = await self._call(backend, "GET",
                                                  "/metrics")
            except (OSError, asyncio.TimeoutError, ConnectionError):
                await self._mark_down(backend)
                continue
            if status == 200 and isinstance(out, dict):
                snapshots[backend] = out
        aggregate: Dict[str, Any] = {}
        maxed = re.compile(r"^(wall_seconds_p\d+|uptime_seconds"
                           r"|cache_hit_rate)$")
        for snap in snapshots.values():
            for name, value in snap.items():
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    continue
                if maxed.match(name):
                    current = aggregate.get(name)
                    aggregate[name] = value if current is None \
                        else max(current, value)
                else:
                    aggregate[name] = aggregate.get(name, 0) + value
        return {
            "role": "gateway",
            "uptime_seconds": time.time() - self.started_at,
            **self.counters,
            "shards_alive": len(self._live()),
            "shards_total": len(self.config.backends),
            "aggregate": aggregate,
            "shards": snapshots,
        }

    # --- HTTP front ---------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), 30)
            if not request:
                return
            try:
                method, target, _ = request.decode("latin-1").split(None, 2)
            except ValueError:
                await self._send_json(writer, 400,
                                      error_body("bad_request",
                                                 "malformed request line"))
                return
            headers = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), 30)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            body = await reader.readexactly(length) if length else b""
            await self._route(method, target.split("?", 1)[0], body,
                              writer)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        legacy = path.startswith("/v1/")
        extra: Dict[str, str] = {"Deprecation": V1_DEPRECATION} \
            if legacy else {}

        async def send(status: int, out: Dict[str, Any],
                       headers: Optional[Dict[str, str]] = None) -> None:
            if legacy:
                out = _legacy_body(out)
            await self._send_json(writer, status, out,
                                  {**extra, **(headers or {})})

        route = "/v2/" + path[len("/v1/"):] if legacy else path
        if method == "POST" and route in ("/v2/jobs", "/v2/jobs:batch"):
            try:
                payload = json.loads(body or b"null")
            except ValueError:
                self.counters["gw_submitted"] += 1
                self.counters["gw_invalid"] += 1
                await send(400, error_body("invalid_json",
                                           "body is not valid JSON"))
                return
            intake = (self._submit_batch if route.endswith(":batch")
                      else self._submit)
            status, out, headers = await intake(payload)
            await send(status, out, headers)
            return
        if method == "DELETE":
            if route.startswith("/v2/jobs/"):
                job_id = route[len("/v2/jobs/"):]
                if "/" not in job_id:
                    status, out, headers = await self._proxy_job(
                        "DELETE", job_id)
                    await send(status, out, headers)
                    return
            await send(404, error_body("not_found",
                                       f"no such endpoint {path!r}"))
            return
        if method != "GET":
            await send(405, error_body("method_not_allowed",
                                       f"unsupported method {method}"))
            return
        if route == "/healthz":
            await send(200, self._healthz())
        elif route == "/metrics":
            await send(200, await self._metrics())
        elif route == "/v2/jobs":
            status, out, headers = await self._list_jobs()
            await send(status, out, headers)
        elif route.startswith("/v2/jobs/"):
            rest = route[len("/v2/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if tail == "":
                status, out, headers = await self._proxy_job("GET",
                                                             job_id)
                await send(status, out, headers)
            elif tail == "events":
                await self._stream_proxy(job_id, writer, extra)
            else:
                await send(404, error_body("not_found",
                                           f"no such endpoint {path!r}"))
        else:
            await send(404, error_body("not_found",
                                       f"no such endpoint {path!r}"))

    async def _stream_proxy(self, job_id: str,
                            writer: asyncio.StreamWriter,
                            extra: Dict[str, str]) -> None:
        """Proxy one NDJSON event stream from the job's home shard.

        A shard death mid-stream truncates the stream (the client
        re-requests and lands on the failover shard); a dead shard at
        request time fails over first like any other per-job call."""
        for _ in range(len(self.config.backends) + 1):
            final_id, route = self._resolve(job_id)
            backend = route["backend"] if route else None
            if route is not None and not self.alive.get(backend):
                await self._mark_down(backend)
                if self._resolve(job_id)[0] == final_id:
                    break
                continue
            if route is None:
                candidates = self._live()
            else:
                candidates = [backend]
            streamed = False
            for candidate in candidates:
                host, _, port = candidate.rpartition(":")
                try:
                    b_reader, b_writer = await asyncio.wait_for(
                        asyncio.open_connection(host, int(port)),
                        self.config.backend_timeout)
                except (OSError, asyncio.TimeoutError):
                    await self._mark_down(candidate)
                    continue
                try:
                    b_writer.write(
                        (f"GET /v2/jobs/{final_id}/events HTTP/1.1\r\n"
                         f"Host: {candidate}\r\n"
                         f"Connection: close\r\n\r\n").encode())
                    await b_writer.drain()
                    status, b_headers = await _read_head(
                        b_reader, self.config.backend_timeout)
                    if status != 200:
                        if route is None and status == 404:
                            continue  # try the next shard
                        length = int(b_headers.get("content-length", 0)
                                     or 0)
                        data = await b_reader.readexactly(length) \
                            if length else b""
                        try:
                            out = json.loads(data) if data else {}
                        except ValueError:
                            out = error_body("bad_gateway",
                                             data.decode(errors="replace"))
                        await self._send_json(
                            writer, status, out,
                            {**extra, "X-Repro-Shard": candidate})
                        return
                    head = ["HTTP/1.1 200 OK",
                            "Content-Type: application/x-ndjson",
                            "Cache-Control: no-store",
                            f"X-Repro-Shard: {candidate}",
                            "Connection: close"]
                    for name, value in extra.items():
                        head.append(f"{name}: {value}")
                    writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
                    streamed = True
                    while True:
                        chunk = await b_reader.read(4096)
                        if not chunk:
                            return
                        writer.write(chunk)
                        await writer.drain()
                except (OSError, asyncio.TimeoutError, ConnectionError):
                    if streamed:
                        return  # truncated mid-stream; client retries
                    await self._mark_down(candidate)
                    continue
                finally:
                    try:
                        b_writer.close()
                        await b_writer.wait_closed()
                    except (ConnectionError, RuntimeError):
                        pass
            if route is None:
                await self._send_json(
                    writer, 404,
                    {**error_body("job_not_found",
                                  f"no such job {job_id!r}")}, extra)
                return
        await self._send_json(
            writer, 503,
            error_body("shard_unavailable",
                       f"no live shard holds job {job_id!r}",
                       retryable=True), extra)

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         body: Dict[str, Any],
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   500: "Internal Server Error", 502: "Bad Gateway",
                   503: "Service Unavailable"}
        payload = json.dumps(_json_safe(body), sort_keys=True).encode()
        head = [f"HTTP/1.1 {status} {reasons.get(status, 'Error')}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()


# --- shard supervision ------------------------------------------------------

_SERVING_RE = re.compile(r"serving on http://([^\s/]+)")


class ShardProc:
    """One spawned ``repro serve`` subprocess and its log pump."""

    def __init__(self, index: int, process: subprocess.Popen,
                 quiet: bool) -> None:
        self.index = index
        self.process = process
        self.quiet = quiet
        self.backend: Optional[str] = None
        self.ready = threading.Event()
        self._thread = threading.Thread(
            target=self._pump, name=f"shard-{index}-log", daemon=True)
        self._thread.start()

    def _pump(self) -> None:
        """Forward shard log lines (prefixed) and capture the bound
        address from the startup banner."""
        try:
            for line in self.process.stdout:
                line = line.rstrip("\n")
                if self.backend is None:
                    match = _SERVING_RE.search(line)
                    if match:
                        self.backend = match.group(1)
                        self.ready.set()
                if not self.quiet:
                    print(f"[shard-{self.index}] {line}", flush=True)
        finally:
            self.ready.set()  # EOF: the shard died or drained

    @property
    def pid(self) -> int:
        return self.process.pid

    def stop(self, drain_timeout: float) -> None:
        """SIGTERM the shard and wait out its graceful drain; escalate
        to SIGKILL only if the drain budget expires."""
        if self.process.poll() is not None:
            return
        self.process.terminate()
        try:
            self.process.wait(drain_timeout + 5.0)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(5.0)


class ShardSupervisor:
    """Spawn and manage N shard subprocesses on ephemeral ports."""

    def __init__(self, config: ServeConfig, count: int) -> None:
        if count < 1:
            raise ValueError(f"shards must be >= 1, got {count}")
        self.config = config
        self.count = count
        self.shards: List[ShardProc] = []

    def _shard_argv(self, index: int) -> List[str]:
        config = self.config
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", config.host, "--port", "0",
                "--workers", str(config.workers),
                "--queue-limit", str(config.queue_limit),
                "--journal-dir",
                os.path.join(config.journal_dir, f"shard-{index}"),
                "--drain-timeout", str(config.drain_timeout),
                "--retries", str(config.retries),
                "--job-processes", str(config.processes),
                "--job-ttl", str(config.job_ttl),
                "--max-job-events", str(config.max_job_events)]
        if config.cache_dir:
            argv += ["--cache-dir",
                     os.path.join(config.cache_dir, f"shard-{index}")]
        else:
            argv += ["--no-cache"]
        if config.point_timeout is not None:
            argv += ["--point-timeout", str(config.point_timeout)]
        if config.cache_max_age is not None:
            argv += ["--cache-max-age", str(config.cache_max_age)]
        if config.cache_max_entries is not None:
            argv += ["--cache-max-entries",
                     str(config.cache_max_entries)]
        if config.pool_idle_timeout is not None:
            argv += ["--pool-idle-timeout",
                     str(config.pool_idle_timeout)]
        return argv

    def start(self, timeout: float = 30.0) -> List[str]:
        """Spawn every shard and return their ``host:port`` addresses
        (parsed from each shard's startup banner)."""
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        for index in range(self.count):
            process = subprocess.Popen(
                self._shard_argv(index), env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True)
            self.shards.append(ShardProc(index, process,
                                         self.config.quiet))
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            remaining = max(0.1, deadline - time.monotonic())
            if not shard.ready.wait(remaining) or shard.backend is None:
                self.shutdown()
                raise RuntimeError(
                    f"shard-{shard.index} failed to start within "
                    f"{timeout:g}s")
        return [shard.backend for shard in self.shards]

    def pid_of(self, backend: str) -> Optional[int]:
        for shard in self.shards:
            if shard.backend == backend:
                return shard.pid
        return None

    def shutdown(self) -> None:
        """Hard stop every shard that is still alive (safety net for
        abnormal gateway exits; the graceful path is the gateway's
        shard-by-shard drain)."""
        for shard in self.shards:
            if shard.process.poll() is None:
                shard.process.kill()
        for shard in self.shards:
            try:
                shard.process.wait(5.0)
            except subprocess.TimeoutExpired:
                pass


# --- entry points -----------------------------------------------------------

def gateway_forever(config: GatewayConfig,
                    supervisor: Optional[ShardSupervisor] = None) -> int:
    """Blocking entry for ``repro gateway``: front existing shards."""
    app = GatewayApp(config, supervisor=supervisor)
    return asyncio.run(app.serve())


def serve_sharded(config: ServeConfig, shards: int, *,
                  probe_interval: float = 2.0,
                  replicas: int = 64) -> int:
    """Blocking entry for ``repro serve --shards N``: spawn N shard
    servers on ephemeral ports, then run the gateway in front of them
    on ``config.host:config.port``."""
    supervisor = ShardSupervisor(config, shards)
    try:
        backends = supervisor.start()
        gateway = GatewayConfig(
            host=config.host, port=config.port,
            backends=tuple(backends),
            replicas=replicas,
            probe_interval=probe_interval,
            drain_timeout=config.drain_timeout,
            quiet=config.quiet)
        return gateway_forever(gateway, supervisor=supervisor)
    finally:
        supervisor.shutdown()
