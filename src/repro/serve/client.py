"""Blocking stdlib client for the simulation service.

:class:`ServeClient` is what scripts (and the ``repro submit`` CLI)
use to target a warm server instead of paying a cold CLI process per
query: submit a job payload, poll or stream it, cancel it, get the
result dict back.  Speaks the native ``/v2/`` API — uniform error
envelopes become the typed exceptions :class:`JobRejected`,
:class:`JobNotFound` and :class:`ShardUnavailable` (all subclasses of
:class:`ServeError`, so existing broad handlers keep working).  One
``http.client`` connection per request — the server closes connections
after each response, which keeps both sides trivial.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Dict, Iterator, List, Optional

DEFAULT_BASE_URL = "http://127.0.0.1:8421"


class ServeError(RuntimeError):
    """A non-2xx server response (or no response at all).

    Carries the HTTP ``status`` (0 when the server was unreachable),
    the machine-readable v2 error ``code``, whether the server marked
    the failure ``retryable``, and, for 429 rejections, the suggested
    ``retry_after`` seconds.  The typed subclasses below are what the
    client actually raises for the common cases; catching plain
    :class:`ServeError` still catches everything.
    """

    def __init__(self, message: str, status: int = 0,
                 retry_after: Optional[float] = None,
                 code: str = "", retryable: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.code = code
        self.retryable = retryable


class JobRejected(ServeError):
    """The server refused a submission (400 invalid, 429 queue full,
    503 draining)."""


class JobNotFound(ServeError):
    """No job with that id (404) — evicted after its TTL, cancelled
    away, or never accepted."""


class ShardUnavailable(ServeError):
    """A gateway could not reach any live shard for this key (502/503
    with code ``shard_unavailable``); always retryable."""


def _classify(message: str, status: int,
              retry_after: Optional[float],
              code: str, retryable: bool) -> ServeError:
    """The right typed exception for one error response."""
    if code == "shard_unavailable":
        cls = ShardUnavailable
    elif status == 404:
        cls = JobNotFound
    elif status in (400, 409, 429, 503):
        cls = JobRejected
    else:
        cls = ServeError
    return cls(message, status=status, retry_after=retry_after,
               code=code, retryable=retryable)


def _parse_error(out: Dict[str, Any], status: int) -> tuple:
    """(message, code, retryable) from a v2 envelope, tolerating the
    legacy flat ``{"error": "<msg>"}`` shape from old servers."""
    err = out.get("error")
    if isinstance(err, dict):
        return (err.get("message") or f"HTTP {status}",
                err.get("code") or "", bool(err.get("retryable")))
    return (err or f"HTTP {status}", "", False)


class ServeClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, base_url: str = DEFAULT_BASE_URL, *,
                 timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// servers are supported, "
                             f"got {base_url!r}")
        netloc = parsed.netloc or parsed.path
        if not netloc:
            raise ValueError(f"bad server URL {base_url!r}")
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 8421
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        conn = self._connect()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"server {self.host}:{self.port} unreachable: "
                    f"{exc}") from None
            try:
                out = json.loads(data) if data else {}
            except ValueError:
                out = {"error": data.decode(errors="replace")}
            if response.status >= 400:
                retry_after = response.headers.get("Retry-After")
                message, code, retryable = _parse_error(
                    out, response.status)
                raise _classify(
                    message, response.status,
                    float(retry_after) if retry_after else None,
                    code, retryable)
            return out
        finally:
            conn.close()

    # --- core calls ---------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job payload; returns the acceptance dict
        (``{"id", "status", "key", "deduped"}``).  Raises
        :class:`JobRejected` on rejection (400/429/503)."""
        return self._request("POST", "/v2/jobs", payload)

    def submit_many(self, payloads: List[Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
        """Submit many payloads in one pipelined request
        (``POST /v1/jobs:batch``) instead of one round-trip each.

        Returns one acceptance dict per payload, in order, each with an
        ``http_status`` field (202 accepted, 200 deduped, 400/429/503
        bounced) — a bounced entry never raises, so callers can retry
        just the rejects."""
        out = self._request("POST", "/v2/jobs:batch",
                            {"jobs": list(payloads)})
        return out.get("jobs", [])

    def status(self, job_id: str) -> Dict[str, Any]:
        """Current status + result of one job."""
        return self._request("GET", f"/v2/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        """Summaries of every job the server knows about."""
        return self._request("GET", "/v2/jobs")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel one job (``DELETE /v2/jobs/<id>``).

        Queued jobs cancel immediately (``{"status": "cancelled"}``);
        running jobs return ``{"status": "cancelling"}`` and turn
        terminal shortly after — :meth:`wait` observes the final
        ``"cancelled"``.  Raises :class:`JobNotFound` for unknown ids
        and :class:`JobRejected` (409) for already-finished jobs."""
        return self._request("DELETE", f"/v2/jobs/{job_id}")

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    # --- conveniences -------------------------------------------------------

    def wait(self, job_id: str, *, timeout: Optional[float] = None,
             poll_interval: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal status; returns its
        final status dict (with result).  Raises :class:`ServeError`
        after ``timeout`` seconds."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            state = self.status(job_id)
            if state.get("status") in ("done", "failed", "cancelled"):
                return state
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {state.get('status')!r} after "
                    f"{timeout:g}s")
            time.sleep(poll_interval)

    def submit_and_wait(self, payload: Dict[str, Any], *,
                        timeout: Optional[float] = None,
                        poll_interval: float = 0.2) -> Dict[str, Any]:
        """Submit, then wait; deduplicated submissions transparently
        wait on the coalesced primary job."""
        accepted = self.submit(payload)
        return self.wait(accepted["id"], timeout=timeout,
                         poll_interval=poll_interval)

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's NDJSON progress events live, ending after
        the terminal ``{"type": "done"}`` event."""
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/v2/jobs/{job_id}/events")
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"server {self.host}:{self.port} unreachable: "
                    f"{exc}") from None
            if response.status >= 400:
                data = response.read()
                try:
                    out = json.loads(data)
                except ValueError:
                    out = {"error": data.decode(errors="replace")}
                message, code, retryable = _parse_error(
                    out, response.status)
                raise _classify(message, response.status, None,
                                code, retryable)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
