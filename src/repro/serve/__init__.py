"""``repro.serve`` — the long-lived simulation service.

Orion's value is *cheap* architectural exploration: many small
parameterized queries over the same models.  The CLI answers each one
in a fresh process; this package answers them from a warm server
instead — shared in-flight work, a shared on-disk result cache, and
sub-millisecond analytic estimates over HTTP:

* :class:`~repro.serve.app.ServeApp` / :func:`~repro.serve.app.serve_forever`
  — the asyncio HTTP service (``repro serve``): bounded priority job
  queue with 429 backpressure, single-flight dedup on result-cache
  keys, NDJSON progress streaming, crash-safe job journal and
  SIGTERM-triggered graceful drain;
* :class:`~repro.serve.shard.GatewayApp` /
  :func:`~repro.serve.shard.serve_sharded` — the consistent-hash shard
  gateway (``repro serve --shards N`` / ``repro gateway``): routes
  every job to its home shard by dedup key, retries idempotent submits
  around dead shards, aggregates fleet health and metrics;
* :class:`~repro.serve.client.ServeClient` — the blocking stdlib
  client (``repro submit``): submit / wait / stream / cancel, speaking
  the ``/v2/`` API with typed errors;
* :mod:`~repro.serve.jobs` — the job JSON schema, riding the
  :mod:`repro.exp.spec` serialization round-trips.

Everything is standard library only — no new runtime dependencies.
"""

from repro.serve.app import (
    DEFAULT_POINT_TIMEOUT,
    ServeApp,
    ServeConfig,
    serve_forever,
)
from repro.serve.client import (
    DEFAULT_BASE_URL,
    JobNotFound,
    JobRejected,
    ServeClient,
    ServeError,
    ShardUnavailable,
)
from repro.serve.jobs import (
    DEFAULT_JOURNAL_DIR,
    JOB_KINDS,
    Job,
    JobError,
    JobJournal,
    parse_job,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.shard import (
    GatewayApp,
    GatewayConfig,
    ShardRing,
    ShardSupervisor,
    gateway_forever,
    serve_sharded,
)

__all__ = [
    "DEFAULT_BASE_URL",
    "DEFAULT_JOURNAL_DIR",
    "DEFAULT_POINT_TIMEOUT",
    "GatewayApp",
    "GatewayConfig",
    "JOB_KINDS",
    "Job",
    "JobError",
    "JobJournal",
    "JobNotFound",
    "JobQueue",
    "JobRejected",
    "QueueFull",
    "ServeApp",
    "ShardUnavailable",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerMetrics",
    "ShardRing",
    "ShardSupervisor",
    "gateway_forever",
    "parse_job",
    "serve_forever",
    "serve_sharded",
]
