"""Service counters and wall-clock percentiles for ``GET /metrics``.

Plain integers plus a bounded ring of recent job durations — cheap
enough to update on every request from the event loop, rich enough to
answer the operational questions: is the queue backing up, is dedup
actually firing, how slow is the p99 job?
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional

#: Recent completed-job durations kept for percentile estimates.
DURATION_WINDOW = 512

COUNTERS = (
    "submitted",            # every POST /v1/jobs received
    "accepted",             # enqueued as a new job
    "deduped",              # coalesced onto an identical active job
    "rejected_queue_full",  # bounced with 429
    "rejected_draining",    # bounced with 503 during drain
    "invalid",              # bounced with 400
    "recovered",            # re-enqueued from the journal at startup
    "completed",            # finished with status "done"
    "failed",               # finished with status "failed"
    "cancelled_jobs",       # cancelled via DELETE /v2/jobs/<id>
    "evicted_jobs",         # terminal jobs dropped after their TTL
    "trimmed_events",       # event-log entries trimmed by the size bound
    "cache_pruned",         # result-cache entries removed by idle pruning
)


class ServerMetrics:
    """Monotonic counters plus a sliding window of job durations."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = dict.fromkeys(COUNTERS, 0)
        self.durations: Deque[float] = deque(maxlen=DURATION_WINDOW)
        self.started_at = time.time()

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe_duration(self, seconds: float) -> None:
        self.durations.append(seconds)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the recent-duration window."""
        if not self.durations:
            return None
        ordered = sorted(self.durations)
        rank = min(len(ordered) - 1, max(0, round(q / 100 * len(ordered)
                                                 - 0.5)))
        return ordered[int(rank)]

    def snapshot(self, *, queue_depth: int, in_flight: int,
                 draining: bool, cache=None, pool=None) -> Dict[str, object]:
        """The ``GET /metrics`` body."""
        out: Dict[str, object] = {
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "draining": draining,
            **self.counters,
            "wall_seconds_p50": self.percentile(50),
            "wall_seconds_p90": self.percentile(90),
            "wall_seconds_p99": self.percentile(99),
        }
        if cache is not None:
            out["cache_hits"] = cache.hits
            out["cache_misses"] = cache.misses
            out["cache_hit_rate"] = cache.hit_rate
        if pool is not None:
            out.update({f"pool_{name}": value
                        for name, value in pool.stats().items()})
        return out
