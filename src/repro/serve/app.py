"""The asyncio HTTP simulation service (``repro serve``).

One process, three layers:

* an **HTTP front** on ``asyncio.start_server`` — a deliberately small
  HTTP/1.1 implementation (request line, headers, Content-Length body,
  ``Connection: close``) so the whole service stays stdlib-only;
* an **event-loop core** owning all mutable state: the bounded
  priority :class:`~repro.serve.queue.JobQueue`, the single-flight
  dedup index, per-job event logs and the
  :class:`~repro.serve.metrics.ServerMetrics` counters.  Every state
  mutation happens on the loop thread — worker threads talk to it only
  through ``call_soon_threadsafe``;
* a **worker pool** (``ThreadPoolExecutor``, ``--workers`` wide) whose
  threads drive the orchestrator's resilient
  :func:`~repro.exp.orchestrator.run_points` — per-point wall-clock
  caps, crash retries, failure isolation — against the shared on-disk
  :class:`~repro.exp.cache.ResultCache` and one shared warm
  :class:`~repro.exp.pool.WorkerPool` of spawn-once simulation
  processes (so repeat jobs skip process spawn and reuse constructed
  simulation contexts).  Analytic ``estimate`` jobs run inline in the
  thread (they take milliseconds).

Memory stays bounded over a long-lived server: terminal jobs are
evicted ``--job-ttl`` seconds after finishing, per-job event logs keep
only the newest ``--max-job-events`` entries, and the result cache
self-prunes to ``--cache-max-age`` / ``--cache-max-entries`` during the
periodic housekeeping pass.

Endpoints (v2 is the native API)::

    POST   /v2/jobs             submit (202; 200+deduped; 400/429/503)
    POST   /v2/jobs:batch       submit many in one request (200 + per-
                                entry http_status)
    GET    /v2/jobs             all jobs, summaries
    GET    /v2/jobs/<id>        status + result
    GET    /v2/jobs/<id>/events NDJSON progress stream (live until done)
    DELETE /v2/jobs/<id>        cancel (queued: immediate; running:
                                kill-and-respawn the workers holding it)
    GET    /healthz             liveness + drain state
    GET    /metrics             queue/dedup/cache/percentile counters

Every non-2xx v2 response body is the uniform error envelope
``{"error": {"code", "message", "retryable"}}`` so clients branch on a
machine-readable code instead of parsing prose.  The ``/v1/`` endpoints
remain as thin adapters over the same handlers — identical success
bodies, errors flattened back to the legacy ``{"error": "<message>"}``
shape — and every v1 response carries a ``Deprecation`` header naming
the successor.

Lifecycle: SIGTERM/SIGINT trigger a graceful drain — new submissions
get 503, queued jobs keep dispatching until ``--drain-timeout``, then
in-flight jobs are allowed to finish (each point is already wall-clock
capped), journal entries for anything unfinished survive for the next
server, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.exp.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exp.orchestrator import Progress, RunCancelled, run_points
from repro.exp.pool import WorkerPool
from repro.serve.jobs import (
    DEFAULT_JOURNAL_DIR,
    Job,
    JobError,
    JobJournal,
    parse_job,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.queue import JobQueue, QueueFull

#: Fallback ``Retry-After`` seconds when no duration data exists yet.
DEFAULT_RETRY_AFTER = 5

#: Server-side default wall-clock cap per simulation point; payloads
#: may override per job.  Keeps a hung point from wedging a worker (and
#: the drain) forever.
DEFAULT_POINT_TIMEOUT = 300.0

#: ``Deprecation`` response-header value stamped on every ``/v1/``
#: response (the draft-RFC header shape: a flag plus the successor).
V1_DEPRECATION = 'version="v1"; successor="/v2/"'


def error_body(code: str, message: str,
               retryable: bool = False) -> Dict[str, Any]:
    """The uniform v2 error envelope every non-2xx response carries."""
    return {"error": {"code": code, "message": message,
                      "retryable": retryable}}


def _legacy_body(body: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a v2 error envelope back to the v1 ``{"error": "<msg>"}``
    shape (success bodies and batch entries pass through recursively)."""
    out = dict(body)
    err = out.get("error")
    if isinstance(err, dict):
        out["error"] = err.get("message", "")
    if isinstance(out.get("jobs"), list):
        out["jobs"] = [_legacy_body(entry) if isinstance(entry, dict)
                       else entry for entry in out["jobs"]]
    return out


@dataclass
class ServeConfig:
    """Everything ``repro serve`` accepts on the command line."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 2
    queue_limit: int = 64
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    journal_dir: str = DEFAULT_JOURNAL_DIR
    drain_timeout: float = 30.0
    point_timeout: Optional[float] = DEFAULT_POINT_TIMEOUT
    retries: int = 0
    processes: int = 1
    quiet: bool = False
    #: Seconds a terminal (done/failed) job stays queryable in memory
    #: before the housekeeping pass evicts it.
    job_ttl: float = 3600.0
    #: Per-job event-log bound: the newest this many events are kept;
    #: older ones are trimmed and counted in ``trimmed_events``.
    max_job_events: int = 1000
    #: Result-cache pruning policy applied by the idle housekeeping
    #: pass: entries older than ``cache_max_age`` seconds and entries
    #: beyond the newest ``cache_max_entries`` are evicted.  ``None``
    #: disables that bound.
    cache_max_age: Optional[float] = None
    cache_max_entries: Optional[int] = None
    #: Seconds between housekeeping passes (TTL eviction + cache prune).
    housekeeping_interval: float = 30.0
    #: Idle simulation workers are reaped after this many seconds
    #: (``None`` keeps the pool at full size forever; a floor of one
    #: warm worker always survives).
    pool_idle_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be > 0, got {self.drain_timeout}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be > 0, got {self.point_timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.processes < 1:
            raise ValueError(f"processes must be >= 1, got {self.processes}")
        if self.job_ttl <= 0:
            raise ValueError(f"job_ttl must be > 0, got {self.job_ttl}")
        if self.max_job_events < 2:
            # The bound must at least hold a status event and the
            # terminal "done" event.
            raise ValueError(f"max_job_events must be >= 2, "
                             f"got {self.max_job_events}")
        if self.cache_max_age is not None and self.cache_max_age < 0:
            raise ValueError(f"cache_max_age must be >= 0, "
                             f"got {self.cache_max_age}")
        if self.cache_max_entries is not None and self.cache_max_entries < 0:
            raise ValueError(f"cache_max_entries must be >= 0, "
                             f"got {self.cache_max_entries}")
        if self.housekeeping_interval <= 0:
            raise ValueError(f"housekeeping_interval must be > 0, "
                             f"got {self.housekeeping_interval}")
        if self.pool_idle_timeout is not None and self.pool_idle_timeout <= 0:
            raise ValueError(f"pool_idle_timeout must be > 0, "
                             f"got {self.pool_idle_timeout}")


def _finite(value: Optional[float]) -> Optional[float]:
    """Non-finite floats become ``None`` so responses stay strict JSON."""
    if value is None or not isinstance(value, float):
        return value
    return value if math.isfinite(value) else None


def _json_safe(obj):
    """Recursively replace NaN/inf so ``json.dumps`` emits strict JSON
    (curl/jq choke on bare ``NaN`` tokens)."""
    if isinstance(obj, float):
        return _finite(obj)
    if isinstance(obj, dict):
        return {key: _json_safe(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(value) for value in obj]
    return obj


class ServeApp:
    """One running simulation service."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.cache = (ResultCache(config.cache_dir)
                      if config.cache_dir else None)
        self.journal = JobJournal(config.journal_dir)
        self.queue = JobQueue(config.queue_limit)
        self.metrics = ServerMetrics()
        self.jobs: Dict[str, Job] = {}
        self.draining = False
        #: Bound port, available once :attr:`ready` is set (``--port 0``
        #: binds an ephemeral port).
        self.port: Optional[int] = None
        self.ready = threading.Event()
        self._active_keys: Dict[str, Job] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._event_waiters: Set[asyncio.Future] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Future] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatch_queued = True
        #: One warm simulation worker pool shared by every job: spawned
        #: once, reused across requests, so repeat fan-outs skip both
        #: process spawn and network construction.  Sized so each serve
        #: worker thread can use its full per-job parallelism.
        self.pool = WorkerPool(config.workers * config.processes,
                               idle_timeout_s=config.pool_idle_timeout)

    # --- lifecycle ----------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(message, flush=True)

    async def serve(self) -> int:
        """Run until drained; returns the process exit code (0)."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopped = self._loop.create_future()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(f"serving on http://{self.config.host}:{self.port} "
                  f"({self.config.workers} workers, queue limit "
                  f"{self.config.queue_limit})")
        self.ready.set()
        dispatcher = self._loop.create_task(self._dispatch_loop())
        housekeeper = self._loop.create_task(self._housekeeping_loop())
        self._wake.set()
        try:
            code = await self._stopped
        finally:
            dispatcher.cancel()
            housekeeper.cancel()
            self._server.close()
            await self._server.wait_closed()
            self._pool.shutdown(wait=False, cancel_futures=True)
            self.pool.close()
        self._log("drain: complete, exiting 0")
        return code

    def request_drain(self) -> None:
        """Thread-safe external drain trigger (what SIGTERM calls)."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._begin_drain)
            except RuntimeError:
                pass  # loop already closed

    def _begin_drain(self) -> None:
        if self.draining:
            return
        self.draining = True
        self._log(f"drain: started ({len(self.queue)} queued, "
                  f"{len(self._inflight)} in flight, timeout "
                  f"{self.config.drain_timeout:g}s)")
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        deadline = self._loop.time() + self.config.drain_timeout
        # Phase 1: let queued jobs keep dispatching until the deadline.
        while (self._inflight or self.queue) \
                and self._loop.time() < deadline:
            await asyncio.sleep(0.05)
        # Phase 2: stop starting new work; in-flight jobs finish (each
        # point is wall-clock capped, so this terminates).
        self._dispatch_queued = False
        while self._inflight:
            await asyncio.sleep(0.05)
        leftover = len(self.queue)
        if leftover:
            self._log(f"drain: {leftover} queued job(s) left journaled "
                      f"for recovery")
        if not self._stopped.done():
            self._stopped.set_result(0)

    def _recover(self) -> None:
        """Re-enqueue journaled jobs from a previous (killed) server."""
        for entry in self.journal.recover():
            try:
                job = parse_job(entry["payload"], entry["id"])
            except JobError as exc:
                self._log(f"recover: dropping journaled job "
                          f"{entry['id']}: {exc}")
                self.journal.discard(entry["id"])
                continue
            job.submitted_at = entry.get("submitted_at", job.submitted_at)
            self.jobs[job.id] = job
            self._active_keys.setdefault(job.key, job)
            try:
                self.queue.push(job)
            except QueueFull:
                self._log(f"recover: queue full, leaving {job.id} "
                          f"journaled")
                self.jobs.pop(job.id)
                if self._active_keys.get(job.key) is job:
                    self._active_keys.pop(job.key)
                continue
            self.metrics.inc("recovered")
        if self.metrics.counters["recovered"]:
            self._log(f"recover: re-enqueued "
                      f"{self.metrics.counters['recovered']} journaled "
                      f"job(s)")

    # --- housekeeping -------------------------------------------------------

    async def _housekeeping_loop(self) -> None:
        """Periodic idle maintenance: evict expired terminal jobs from
        memory and self-prune the on-disk result cache.

        Runs as its own task so the dispatch loop can keep blocking on
        its wake event; each pass is cheap (a dict scan) with the cache
        prune — file I/O — pushed to the default executor."""
        while True:
            await asyncio.sleep(self.config.housekeeping_interval)
            self.housekeep()
            if self.cache is not None and (
                    self.config.cache_max_age is not None
                    or self.config.cache_max_entries is not None):
                removed = await self._loop.run_in_executor(
                    None, self.cache.prune, self.config.cache_max_age,
                    self.config.cache_max_entries)
                if removed:
                    self.metrics.inc("cache_pruned", removed)
                    self._log(f"housekeeping: pruned {removed} cache "
                              f"entr{'y' if removed == 1 else 'ies'}")

    def housekeep(self, now: Optional[float] = None) -> int:
        """Evict terminal jobs older than ``job_ttl``; returns the
        count evicted.  (Split out from the loop so tests can drive it
        synchronously.)"""
        now = time.time() if now is None else now
        doomed = [job_id for job_id, job in self.jobs.items()
                  if job.terminal and job.finished_at is not None
                  and now - job.finished_at >= self.config.job_ttl]
        for job_id in doomed:
            self.jobs.pop(job_id, None)
        if doomed:
            self.metrics.inc("evicted_jobs", len(doomed))
            self._log(f"housekeeping: evicted {len(doomed)} expired "
                      f"job(s)")
        return len(doomed)

    # --- dispatch and execution ---------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._dispatch_queued \
                    and len(self._inflight) < self.config.workers:
                job = self.queue.pop()
                if job is None:
                    break
                self._start_job(job)

    def _start_job(self, job: Job) -> None:
        job.status = "running"
        job.cancel_event = threading.Event()
        job.started_at = time.time()
        self._publish(job, {"type": "status", "status": "running",
                            "queue_depth": len(self.queue)})
        future = self._loop.run_in_executor(self._pool, self._execute, job)
        self._inflight[job.id] = future
        future.add_done_callback(
            lambda f, job=job: self._job_done(job, f))

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Worker-thread entry: run the job, return its result dict."""
        if job.kind == "estimate":
            from repro.analytic import estimate

            est = estimate(job.estimate["config"], job.estimate["traffic"],
                           job.estimate["rate"], **job.estimate["params"])
            saturation = est.saturation
            return {"estimate": {
                "traffic": est.traffic,
                "rate": est.rate,
                "avg_latency": _finite(est.avg_latency),
                "zero_load_latency": _finite(est.zero_load_latency),
                "avg_hops": est.avg_hops,
                "total_power_w": est.total_power_w,
                "power_breakdown_w": dict(est.power_breakdown_w),
                "throughput_flits_per_cycle":
                    est.throughput_flits_per_cycle,
                "saturation_rate":
                    _finite(saturation.rate) if saturation else None,
                "is_saturated": est.is_saturated,
            }}

        options = job.options
        point_timeout = options.get("point_timeout") \
            or self.config.point_timeout
        retries = options.get("retries")
        processes = options.get("processes") or self.config.processes

        def publish_progress(progress: Progress) -> None:
            event = {"type": "progress", **progress.to_dict()}
            try:
                self._loop.call_soon_threadsafe(self._publish, job, event)
            except RuntimeError:
                pass  # loop shut down mid-job; nobody is listening

        outcomes = run_points(
            job.points,
            processes=processes,
            cache=self.cache,
            on_error="record",
            point_timeout=point_timeout,
            retries=self.config.retries if retries is None else retries,
            progress=publish_progress,
            pool=self.pool,
            cancel_event=job.cancel_event)
        failures = sum(1 for o in outcomes if not o.ok)
        return {
            "num_points": len(outcomes),
            "failures": failures,
            "cache_hits": sum(1 for o in outcomes if o.from_cache),
            "cycles_simulated": sum(o.total_cycles for o in outcomes
                                    if not o.from_cache),
            "points": [o.summary_dict() for o in outcomes],
        }

    def _job_done(self, job: Job, future: asyncio.Future) -> None:
        """Completion bookkeeping; runs on the event loop."""
        self._inflight.pop(job.id, None)
        try:
            job.result = future.result()
            job.status = "done"
            self.metrics.inc("completed")
        except RunCancelled:
            job.status = "cancelled"
            job.error = "cancelled by client"
            self.metrics.inc("cancelled_jobs")
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.metrics.inc("failed")
        job.finished_at = time.time()
        if job.started_at is not None:
            self.metrics.observe_duration(job.finished_at - job.started_at)
        self.journal.discard(job.id)
        if self._active_keys.get(job.key) is job:
            self._active_keys.pop(job.key)
        self._publish(job, {"type": "done", "status": job.status,
                            "error": job.error,
                            "wall_seconds": job.wall_seconds})
        self._wake.set()

    # --- job intake ---------------------------------------------------------

    def _submit(self, payload: Any) -> Tuple[int, Dict[str, Any],
                                             Dict[str, str]]:
        """Accept/dedup/reject one submission; returns (HTTP status,
        body, extra headers)."""
        self.metrics.inc("submitted")
        if self.draining:
            self.metrics.inc("rejected_draining")
            return 503, error_body("draining", "server is draining",
                                   retryable=True), {}
        try:
            job = parse_job(payload, uuid.uuid4().hex[:12])
        except JobError as exc:
            self.metrics.inc("invalid")
            return 400, error_body("invalid_job", str(exc)), {}
        primary = self._active_keys.get(job.key)
        if primary is not None and not primary.terminal:
            # Single-flight: identical work is already queued or running;
            # the caller waits on the primary job and shares its result.
            primary.coalesced += 1
            self.metrics.inc("deduped")
            return 200, {"id": primary.id, "status": primary.status,
                         "key": primary.key, "deduped": True}, {}
        try:
            self.queue.push(job)
        except QueueFull:
            self.metrics.inc("rejected_queue_full")
            return (429, error_body(
                "queue_full",
                f"queue full ({self.config.queue_limit} waiting)",
                retryable=True),
                {"Retry-After": str(self._retry_after())})
        self.jobs[job.id] = job
        self._active_keys[job.key] = job
        self.journal.record(job)
        self.metrics.inc("accepted")
        self._publish(job, {"type": "status", "status": "queued",
                            "queue_depth": len(self.queue)})
        self._wake.set()
        return 202, {"id": job.id, "status": "queued", "key": job.key,
                     "deduped": False,
                     "queue_depth": len(self.queue)}, {}

    def _submit_batch(self, payload: Any) -> Tuple[int, Dict[str, Any],
                                                   Dict[str, str]]:
        """Accept many submissions in one request (``POST
        /v1/jobs:batch``).

        Each entry goes through the exact single-submission path —
        validation, dedup, queue bounds, metrics — and gets its own
        per-entry ``http_status`` in the response, so one bad or bounced
        entry never poisons its neighbours.  The response is 200 as long
        as the batch itself was well-formed."""
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("jobs"), list):
            self.metrics.inc("submitted")
            self.metrics.inc("invalid")
            return 400, error_body("invalid_batch",
                                   "batch payload needs a 'jobs' list"), {}
        results = []
        accepted = deduped = rejected = 0
        retry_after: Dict[str, str] = {}
        for entry in payload["jobs"]:
            status, out, extra = self._submit(entry)
            if status == 202:
                accepted += 1
            elif status == 200:
                deduped += 1
            else:
                rejected += 1
            retry_after.update(extra)
            results.append({**out, "http_status": status})
        return (200, {"jobs": results, "accepted": accepted,
                      "deduped": deduped, "rejected": rejected},
                retry_after)

    def _cancel(self, job_id: str) -> Tuple[int, Dict[str, Any],
                                            Dict[str, str]]:
        """Cancel one job (``DELETE /v2/jobs/<id>``).

        Queued jobs cancel immediately (pulled straight out of the
        queue); running jobs cancel cooperatively — the job's cancel
        event trips the worker pool's kill-and-respawn path (the same
        mechanism as ``point_timeout``), and the job turns terminal
        once the executing thread observes :class:`RunCancelled`.
        Cancelling an already-cancelled job is an idempotent success;
        cancelling a done/failed job is a 409."""
        job = self.jobs.get(job_id)
        if job is None:
            return 404, error_body("job_not_found",
                                   f"no such job {job_id!r}"), {}
        if job.status == "cancelled":
            return 200, {"id": job.id, "status": "cancelled"}, {}
        if job.terminal:
            return 409, error_body(
                "job_already_finished",
                f"job {job_id} already {job.status}"), {}
        if job.status == "queued":
            self.queue.remove(job.id)
            job.status = "cancelled"
            job.error = "cancelled by client"
            job.finished_at = time.time()
            self.journal.discard(job.id)
            if self._active_keys.get(job.key) is job:
                self._active_keys.pop(job.key)
            self.metrics.inc("cancelled_jobs")
            self._publish(job, {"type": "done", "status": "cancelled",
                                "error": job.error, "wall_seconds": None})
            return 200, {"id": job.id, "status": "cancelled"}, {}
        # Running: flag it and let _job_done finish the bookkeeping.
        if job.cancel_event is not None:
            job.cancel_event.set()
        self._publish(job, {"type": "status", "status": "cancelling"})
        return 202, {"id": job.id, "status": "cancelling"}, {}

    def _retry_after(self) -> int:
        """A Retry-After estimate: how long until a queue slot frees —
        roughly one median job per worker."""
        p50 = self.metrics.percentile(50)
        if p50 is None:
            return DEFAULT_RETRY_AFTER
        estimate = p50 * (len(self.queue) + 1) / self.config.workers
        return max(1, min(60, int(estimate + 0.5)))

    # --- events -------------------------------------------------------------

    def _publish(self, job: Job, event: Dict[str, Any]) -> None:
        event = {"job": job.id, "ts": round(time.time(), 3), **event}
        job.events.append(event)
        trimmed = job.trim_events(self.config.max_job_events)
        if trimmed:
            self.metrics.inc("trimmed_events", trimmed)
        for waiter in self._event_waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def _wait_event(self, timeout: float = 1.0) -> None:
        waiter = self._loop.create_future()
        self._event_waiters.add(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            self._event_waiters.discard(waiter)

    # --- HTTP front ---------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), 30)
            if not request:
                return
            try:
                method, target, _ = request.decode("latin-1").split(None, 2)
            except ValueError:
                await self._send_json(writer, 400,
                                      error_body("bad_request",
                                                 "malformed request line"))
                return
            headers = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), 30)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            body = await reader.readexactly(length) if length else b""
            await self._route(method, target.split("?", 1)[0], body, writer)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        """Dispatch one request.

        ``/v2/`` is the native surface; ``/v1/`` routes through the
        same handlers, then flattens error envelopes to the legacy
        shape and stamps the ``Deprecation`` header.  ``/healthz`` and
        ``/metrics`` are unversioned."""
        legacy = path.startswith("/v1/")
        extra: Dict[str, str] = {"Deprecation": V1_DEPRECATION} \
            if legacy else {}

        async def send(status: int, out: Dict[str, Any],
                       headers: Optional[Dict[str, str]] = None) -> None:
            if legacy:
                out = _legacy_body(out)
            await self._send_json(writer, status, out,
                                  {**extra, **(headers or {})})

        if legacy:
            route = "/v2/" + path[len("/v1/"):]
        else:
            route = path
        if method == "POST" and route in ("/v2/jobs", "/v2/jobs:batch"):
            try:
                payload = json.loads(body or b"null")
            except ValueError:
                self.metrics.inc("submitted")
                self.metrics.inc("invalid")
                await send(400, error_body("invalid_json",
                                           "body is not valid JSON"))
                return
            intake = (self._submit_batch if route.endswith(":batch")
                      else self._submit)
            status, out, headers = intake(payload)
            await send(status, out, headers)
            return
        if method == "DELETE":
            if route.startswith("/v2/jobs/"):
                job_id = route[len("/v2/jobs/"):]
                if "/" not in job_id:
                    status, out, headers = self._cancel(job_id)
                    await send(status, out, headers)
                    return
            await send(404, error_body("not_found",
                                       f"no such endpoint {path!r}"))
            return
        if method != "GET":
            await send(405, error_body("method_not_allowed",
                                       f"unsupported method {method}"))
            return
        if route == "/healthz":
            await send(200, {
                "status": "draining" if self.draining else "ok",
                "queue_depth": len(self.queue),
                "in_flight": len(self._inflight),
            })
        elif route == "/metrics":
            await send(200, self.metrics.snapshot(
                queue_depth=len(self.queue),
                in_flight=len(self._inflight),
                draining=self.draining, cache=self.cache,
                pool=self.pool))
        elif route == "/v2/jobs":
            await send(200, {
                "jobs": [job.public_dict(with_result=False)
                         for job in self.jobs.values()]})
        elif route.startswith("/v2/jobs/"):
            rest = route[len("/v2/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.jobs.get(job_id)
            if job is None:
                await send(404, error_body("job_not_found",
                                           f"no such job {job_id!r}"))
            elif tail == "":
                await send(200, job.public_dict())
            elif tail == "events":
                await self._stream_events(job, writer, extra)
            else:
                await send(404, error_body("not_found",
                                           f"no such endpoint {path!r}"))
        else:
            await send(404, error_body("not_found",
                                       f"no such endpoint {path!r}"))

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter,
                             extra_headers: Optional[Dict[str, str]] = None
                             ) -> None:
        """NDJSON: replay the job's event log, then follow it live
        until the job reaches a terminal status.

        The cursor is an absolute sequence number, so the size bound
        trimming old events under a live follower skips the trimmed
        span instead of replaying or reordering anything."""
        head = ["HTTP/1.1 200 OK",
                "Content-Type: application/x-ndjson",
                "Cache-Control: no-store",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        sent = 0
        while True:
            sent = max(sent, job.events_base)
            while sent - job.events_base < len(job.events):
                line = json.dumps(
                    _json_safe(job.events[sent - job.events_base]),
                    sort_keys=True) + "\n"
                writer.write(line.encode())
                sent += 1
            await writer.drain()
            if job.terminal and sent - job.events_base >= len(job.events):
                return
            await self._wait_event()

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         body: Dict[str, Any],
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   500: "Internal Server Error", 502: "Bad Gateway",
                   503: "Service Unavailable"}
        payload = json.dumps(_json_safe(body), sort_keys=True).encode()
        head = [f"HTTP/1.1 {status} {reasons.get(status, 'Error')}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()


def serve_forever(config: ServeConfig) -> int:
    """Blocking entry point for the CLI: run one server to drain."""
    app = ServeApp(config)
    return asyncio.run(app.serve())
