"""Bounded priority queue for accepted jobs.

Higher ``priority`` runs first; ties are FIFO by arrival sequence, so
same-priority traffic keeps submission order and a stream of
priority-0 jobs behaves exactly like a plain queue.  The bound is the
server's backpressure valve: :meth:`JobQueue.push` raises
:class:`QueueFull` once ``limit`` jobs are waiting, which the HTTP
layer turns into ``429 Too Many Requests`` + ``Retry-After``.

Single-threaded by design — the queue is only touched from the server's
event loop.  Worker threads never see it.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.serve.jobs import Job


class QueueFull(Exception):
    """The queue is at its configured limit (maps to HTTP 429)."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"job queue is full ({limit} jobs waiting)")
        self.limit = limit


class JobQueue:
    """Priority FIFO with a hard bound."""

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = 0

    def push(self, job: Job) -> None:
        if len(self._heap) >= self.limit:
            raise QueueFull(self.limit)
        self._seq += 1
        heapq.heappush(self._heap, (-job.priority, self._seq, job))

    def pop(self) -> Optional[Job]:
        """The highest-priority oldest job, or ``None`` when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def remove(self, job_id: str) -> Optional[Job]:
        """Pull one waiting job out of the queue by id (cancellation);
        returns it, or ``None`` if it is not waiting.  O(n) + re-heapify
        — fine for a queue bounded at tens of entries."""
        for index, (_, _, job) in enumerate(self._heap):
            if job.id == job_id:
                self._heap.pop(index)
                heapq.heapify(self._heap)
                return job
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Job]:
        """Waiting jobs in pop order (non-destructive)."""
        return (job for _, _, job in sorted(self._heap))
