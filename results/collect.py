"""Collect the measured numbers recorded in EXPERIMENTS.md."""
import json, time
from repro import Orion, preset
from repro.core import events as ev
from repro.power import area

t0 = time.time()
out = {}
SAMPLE = 2000
WARM = 800

# Walkthrough
out["walkthrough"] = {k: v for k, v in
                      Orion(preset("WH64")).flit_energy_walkthrough().items()}

# Fig 5
fig5_rates = [0.02, 0.06, 0.10, 0.13, 0.15, 0.17]
out["fig5"] = {}
for name in ("WH64", "VC16", "VC64", "VC128"):
    s = Orion(preset(name)).sweep_uniform(fig5_rates, warmup_cycles=WARM,
                                          sample_packets=SAMPLE, label=name)
    out["fig5"][name] = {
        "rates": s.rates, "latency": s.latencies, "power": s.powers,
        "saturation": s.saturation_rate(),
        "breakdown": [p.breakdown_w for p in s.points],
    }
    print(name, "done", f"{time.time()-t0:.0f}s", flush=True)

# Fig 6
cfg6 = preset("VC16").with_(tie_break="even")
r = Orion(cfg6).run_uniform(0.2/16, warmup_cycles=WARM, sample_packets=SAMPLE, seed=7)
out["fig6a"] = r.node_power_w()
r = Orion(cfg6).run_broadcast(9, 0.2, warmup_cycles=WARM, sample_packets=SAMPLE, seed=7)
out["fig6b"] = r.node_power_w()
print("fig6 done", f"{time.time()-t0:.0f}s", flush=True)

# Fig 7
u_rates = [0.02, 0.05, 0.08, 0.11]
b_rates = [0.05, 0.10, 0.15, 0.19]
out["fig7"] = {}
for name in ("XB", "CB"):
    o = Orion(preset(name))
    su = o.sweep_uniform(u_rates, warmup_cycles=WARM, sample_packets=1200, label=name)
    sb = o.sweep_broadcast(9, b_rates, warmup_cycles=WARM, sample_packets=1200, label=name)
    out["fig7"][name] = {
        "uniform": {"rates": su.rates, "latency": su.latencies,
                    "power": su.powers,
                    "breakdown": [p.breakdown_w for p in su.points]},
        "broadcast": {"rates": sb.rates, "latency": sb.latencies,
                      "power": sb.powers},
    }
    print(name, "done", f"{time.time()-t0:.0f}s", flush=True)

# Area
xb = Orion(preset("XB")).power_models()
cb = Orion(preset("CB")).power_models()
out["area_mm2"] = {
    "XB": area.xb_router_area_um2(xb.buffer_model, xb.crossbar_model, 5)/1e6,
    "CB": area.cb_router_area_um2(cb.central_model, cb.buffer_model, 5)/1e6,
}

with open("/root/repo/results/measured.json", "w") as f:
    json.dump(out, f, indent=1)
print("ALL DONE", f"{time.time()-t0:.0f}s")
