"""Collect the measured numbers recorded in EXPERIMENTS.md.

Runs through the ``repro.exp`` orchestrator: the full figure grid fans
out over ``REPRO_COLLECT_PROCS`` worker processes and every point is
cached under ``results/.cache/`` — re-running after a crash (or after
editing only the plotting side) resumes instead of recomputing.
"""
import json
import os
import time
from dataclasses import replace

from repro import Orion, RunProtocol, preset
from repro.exp import ExperimentSpec, ResultCache, RunPoint, TrafficSpec, \
    run_experiment
from repro.power import area

HERE = os.path.dirname(os.path.abspath(__file__))
CACHE = ResultCache(os.path.join(HERE, ".cache"))
PROCS = int(os.environ.get("REPRO_COLLECT_PROCS", str(os.cpu_count() or 1)))

t0 = time.time()
out = {}
PROTO = RunProtocol(warmup_cycles=800, sample_packets=2000)


def progress(p):
    tag = "cache" if p.outcome.from_cache else f"{p.outcome.wall_seconds:.1f}s"
    print(f"  [{p.done}/{p.total}] {p.outcome.point.describe()} ({tag})",
          flush=True)


# Walkthrough
out["walkthrough"] = {k: v for k, v in
                      Orion(preset("WH64")).flit_energy_walkthrough().items()}

# Fig 5
fig5_rates = [0.02, 0.06, 0.10, 0.13, 0.15, 0.17]
fig5_names = ("WH64", "VC16", "VC64", "VC128")
fig5 = run_experiment(
    ExperimentSpec.of({name: preset(name) for name in fig5_names},
                      "uniform", fig5_rates, protocol=PROTO),
    processes=PROCS, cache=CACHE, progress=progress)
out["fig5"] = {}
for name in fig5_names:
    s = fig5.sweep(label=name, sweep_label=name)
    out["fig5"][name] = {
        "rates": s.rates, "latency": s.latencies, "power": s.powers,
        "saturation": s.saturation_rate(),
        "breakdown": [p.breakdown_w for p in s.points],
    }
    print(name, "done", f"{time.time()-t0:.0f}s", flush=True)

# Fig 6 (spatial maps need the full results: keep_results=True)
cfg6 = preset("VC16").with_(tie_break="even")
proto6 = replace(PROTO, seed=7)
fig6 = run_experiment(
    [RunPoint(cfg6, TrafficSpec.of("uniform"), 0.2 / 16, proto6,
              label="fig6a"),
     RunPoint(cfg6, TrafficSpec.of("broadcast", source=9), 0.2, proto6,
              label="fig6b")],
    processes=PROCS, cache=CACHE, keep_results=True, progress=progress)
out["fig6a"] = fig6.outcomes[0].result.node_power_w()
out["fig6b"] = fig6.outcomes[1].result.node_power_w()
print("fig6 done", f"{time.time()-t0:.0f}s", flush=True)

# Fig 7
u_rates = [0.02, 0.05, 0.08, 0.11]
b_rates = [0.05, 0.10, 0.15, 0.19]
fig7_configs = {name: preset(name) for name in ("XB", "CB")}
proto7 = replace(PROTO, sample_packets=1200)
fig7u = run_experiment(
    ExperimentSpec.of(fig7_configs, "uniform", u_rates, protocol=proto7),
    processes=PROCS, cache=CACHE, progress=progress)
fig7b = run_experiment(
    ExperimentSpec.of(fig7_configs, TrafficSpec.of("broadcast", source=9),
                      b_rates, protocol=proto7),
    processes=PROCS, cache=CACHE, progress=progress)
out["fig7"] = {}
for name in ("XB", "CB"):
    su = fig7u.sweep(label=name, sweep_label=name)
    sb = fig7b.sweep(label=name, sweep_label=name)
    out["fig7"][name] = {
        "uniform": {"rates": su.rates, "latency": su.latencies,
                    "power": su.powers,
                    "breakdown": [p.breakdown_w for p in su.points]},
        "broadcast": {"rates": sb.rates, "latency": sb.latencies,
                      "power": sb.powers},
    }
    print(name, "done", f"{time.time()-t0:.0f}s", flush=True)

# Area
xb = Orion(preset("XB")).power_models()
cb = Orion(preset("CB")).power_models()
out["area_mm2"] = {
    "XB": area.xb_router_area_um2(xb.buffer_model, xb.crossbar_model, 5)/1e6,
    "CB": area.cb_router_area_um2(cb.central_model, cb.buffer_model, 5)/1e6,
}

with open(os.path.join(HERE, "measured.json"), "w") as f:
    json.dump(out, f, indent=1)
print("ALL DONE", f"{time.time()-t0:.0f}s")
