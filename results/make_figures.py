#!/usr/bin/env python3
"""Regenerate every figure's data as CSV files under results/.

One file per paper artifact:

    fig5_<config>.csv      rate, latency, power, per-component power
    fig6a.csv / fig6b.csv  node, x, y, power_w
    fig7_<config>_uniform.csv / _broadcast.csv
    walkthrough.csv        E_wrt ... E_flit
    area.csv               XB / CB router areas

Usage:  python results/make_figures.py [--sample N]
"""

import argparse
import csv
import os
import sys

from repro import Orion, RunProtocol, preset
from repro.core.export import spatial_to_csv, sweep_to_csv
from repro.power import area

HERE = os.path.dirname(os.path.abspath(__file__))

FIG5_RATES = [0.02, 0.06, 0.10, 0.13, 0.15, 0.17, 0.20]
FIG7_UNIFORM_RATES = [0.02, 0.05, 0.08, 0.11]
FIG7_BROADCAST_RATES = [0.05, 0.10, 0.15, 0.19]
BROADCAST_SOURCE = 9  # node (1, 2)


def out(name: str) -> str:
    return os.path.join(HERE, name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sample", type=int, default=1200,
                        help="sample packets per point (paper: 10000)")
    parser.add_argument("--warmup", type=int, default=800)
    args = parser.parse_args(argv)
    protocol = RunProtocol(warmup_cycles=args.warmup,
                           sample_packets=args.sample)
    protocol7 = protocol.with_(seed=7)

    # Walkthrough (section 3.3).
    energies = Orion(preset("WH64")).flit_energy_walkthrough()
    with open(out("walkthrough.csv"), "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["term", "energy_j"])
        for term, joules in energies.items():
            writer.writerow([term, joules])
    print("walkthrough.csv")

    # Figure 5.
    for name in ("WH64", "VC16", "VC64", "VC128"):
        sweep = Orion(preset(name)).sweep_uniform(
            FIG5_RATES, protocol, label=name)
        sweep_to_csv(sweep, out(f"fig5_{name.lower()}.csv"))
        print(f"fig5_{name.lower()}.csv")

    # Figure 6.
    cfg6 = preset("VC16").with_(tie_break="even")
    uniform = Orion(cfg6).run_uniform(0.2 / 16, protocol7)
    spatial_to_csv(uniform, out("fig6a.csv"))
    broadcast = Orion(cfg6).run_broadcast(
        BROADCAST_SOURCE, 0.2, protocol7)
    spatial_to_csv(broadcast, out("fig6b.csv"))
    print("fig6a.csv fig6b.csv")

    # Figure 7.
    for name in ("XB", "CB"):
        orion = Orion(preset(name))
        sweep_to_csv(orion.sweep_uniform(
            FIG7_UNIFORM_RATES, protocol, label=name),
            out(f"fig7_{name.lower()}_uniform.csv"))
        sweep_to_csv(orion.sweep_broadcast(
            BROADCAST_SOURCE, FIG7_BROADCAST_RATES, protocol, label=name),
            out(f"fig7_{name.lower()}_broadcast.csv"))
        print(f"fig7_{name.lower()}_*.csv")

    # Section 4.4 area parity.
    xb = Orion(preset("XB")).power_models()
    cb = Orion(preset("CB")).power_models()
    with open(out("area.csv"), "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["router", "area_mm2"])
        writer.writerow(["XB", area.xb_router_area_um2(
            xb.buffer_model, xb.crossbar_model, 5) / 1e6])
        writer.writerow(["CB", area.cb_router_area_um2(
            cb.central_model, cb.buffer_model, 5) / 1e6])
    print("area.csv")
    return 0


if __name__ == "__main__":
    sys.exit(main())
