"""Unit tests for the component framework (the LSE substitute)."""

import pytest

from repro.core import events as ev
from repro.lse import (
    ArbiterModule,
    BufferModule,
    CrossbarModule,
    EventBus,
    LinkModule,
    Message,
    Module,
    SinkModule,
    SourceModule,
    System,
)


class TestPorts:
    def test_connect_and_send(self):
        a, b = Module("a"), Module("b")
        out = a.out_port("out")
        inp = b.in_port("in")
        out.connect(inp)
        out.send("hello")
        assert inp.drain() == ["hello"]
        assert inp.drain() == []

    def test_peek_does_not_consume(self):
        a, b = Module("a"), Module("b")
        a.out_port("out").connect(b.in_port("in"))
        a.out_ports["out"].send(1)
        assert b.in_ports["in"].peek() == [1]
        assert b.in_ports["in"].drain() == [1]

    def test_single_connection_enforced(self):
        a, b, c = Module("a"), Module("b"), Module("c")
        out = a.out_port("out")
        out.connect(b.in_port("in"))
        with pytest.raises(ValueError):
            out.connect(c.in_port("in"))
        with pytest.raises(ValueError):
            c.out_port("out").connect(b.in_ports["in"])

    def test_send_unconnected_raises(self):
        with pytest.raises(RuntimeError):
            Module("a").out_port("out").send(1)


class TestEventBus:
    def test_targeted_and_global_hooks(self):
        bus = EventBus()
        seen = []
        bus.subscribe("ping", lambda e, c: seen.append(("t", e)))
        bus.subscribe_all(lambda e, c: seen.append(("g", e)))
        bus.emit("ping", value=1)
        bus.emit("pong")
        assert seen == [("t", "ping"), ("g", "ping"), ("g", "pong")]

    def test_log_records_cycle_and_context(self):
        bus = EventBus()
        bus.record = True
        bus.now = 7
        bus.emit("ping", value=42)
        assert bus.log == [(7, "ping", {"value": 42})]
        bus.clear_log()
        assert bus.log == []


class TestSystem:
    def test_duplicate_module_names_rejected(self):
        system = System()
        system.add(SinkModule("x"))
        with pytest.raises(ValueError):
            system.add(SinkModule("x"))

    def test_string_port_lookup(self):
        system = System()
        system.add(SourceModule("src", [(0, Message())]))
        system.add(SinkModule("dst"))
        system.connect("src.out", "dst.in")
        system.build()
        system.run(2)
        assert len(system.module("dst").received) == 1

    def test_lookup_errors(self):
        system = System()
        system.add(SinkModule("dst"))
        with pytest.raises(KeyError):
            system.connect("nope.out", "dst.in")
        with pytest.raises(KeyError):
            system._lookup_port("dst.nope", output=False)
        with pytest.raises(ValueError):
            system._lookup_port("justaname", output=False)

    def test_build_validates_required_ports(self):
        system = System()
        system.add(SinkModule("dst"))  # "in" never wired
        with pytest.raises(ValueError, match="dst.in"):
            system.build()

    def test_step_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            System().step()

    def test_add_after_build_rejected(self):
        system = System()
        src = system.add(SourceModule("s", []))
        sink = system.add(SinkModule("d"))
        system.connect(src.out, sink.inp)
        system.build()
        with pytest.raises(RuntimeError):
            system.add(SinkModule("late"))


class TestLibraryModules:
    def _bus_with_log(self, system):
        system.bus.record = True
        return system.bus

    def test_buffer_overflow_detected(self):
        system = System()
        src = system.add(SourceModule(
            "s", [(0, Message()), (0, Message()), (0, Message())]))
        buf = system.add(BufferModule("b", depth=2))
        sink = system.add(SinkModule("d"))
        system.connect(src.out, buf.write)
        system.connect(buf.read, sink.inp)
        system.build()
        with pytest.raises(RuntimeError, match="overflow"):
            system.run(2)

    def test_buffer_requests_once_per_head(self):
        system = System()
        src = system.add(SourceModule("s", [(0, Message(out_port=3))]))
        buf = system.add(BufferModule("b", depth=4))
        arb = system.add(ArbiterModule("a", requesters=2, out_id=3))
        sink = system.add(SinkModule("d"))
        system.connect(src.out, buf.write)
        system.connect(buf.req, arb.req)
        system.connect(arb.grants[0], buf.grant)
        system.connect(buf.read, sink.inp)
        # arb.config must go somewhere: a second sink stands in.
        cfg_sink = system.add(SinkModule("cfg"))
        system.connect(arb.config, cfg_sink.inp)
        system.build()
        self._bus_with_log(system)
        system.run(4)
        arbitrations = [e for _, e, _ in system.bus.log
                        if e == ev.ARBITRATION]
        assert len(arbitrations) == 1
        assert len(sink.received) == 1

    def test_crossbar_requires_configuration(self):
        system = System()
        src = system.add(SourceModule("s", [(0, Message())]))
        xbar = system.add(CrossbarModule("x", inputs=2, outputs=2))
        sink = system.add(SinkModule("d"))
        system.connect(src.out, xbar.inputs[0])
        system.connect(xbar.outs[0], sink.inp)
        # Config port is required: unwired -> build error.
        with pytest.raises(ValueError, match="x.config"):
            system.build()

    def test_crossbar_routes_by_configuration(self):
        system = System()
        cfg_src = system.add(SourceModule(
            "cfg", [(0, Message(input_id=0, out_port=1))]))
        src = system.add(SourceModule("s", [(1, Message(payload=7))]))
        xbar = system.add(CrossbarModule("x", inputs=2, outputs=2))
        sink = system.add(SinkModule("d"))
        system.connect(cfg_src.out, xbar.config)
        system.connect(src.out, xbar.inputs[0])
        system.connect(xbar.outs[1], sink.inp)
        system.build()
        system.run(3)
        assert [m.payload for _, m in sink.received] == [7]

    def test_unconfigured_crossbar_input_raises(self):
        system = System()
        cfg_src = system.add(SourceModule("cfg", []))
        src = system.add(SourceModule("s", [(0, Message())]))
        xbar = system.add(CrossbarModule("x", inputs=2, outputs=2))
        sink = system.add(SinkModule("d"))
        system.connect(cfg_src.out, xbar.config)
        system.connect(src.out, xbar.inputs[0])
        system.connect(xbar.outs[0], sink.inp)
        system.build()
        with pytest.raises(RuntimeError, match="no configuration"):
            system.run(1)

    def test_link_latency(self):
        system = System()
        src = system.add(SourceModule("s", [(0, Message(payload=1))]))
        link = system.add(LinkModule("l", latency=3))
        sink = system.add(SinkModule("d"))
        system.connect(src.out, link.inp)
        system.connect(link.out, sink.inp)
        system.build()
        system.run(5)
        (arrival, message), = sink.received
        assert arrival == 3
        assert message.payload == 1

    def test_message_class_tags(self):
        from repro.lse import MESSAGE_PROCESSING, MESSAGE_TRANSPORTING
        assert BufferModule.MESSAGE_CLASS == MESSAGE_PROCESSING
        assert ArbiterModule.MESSAGE_CLASS == MESSAGE_PROCESSING
        assert CrossbarModule.MESSAGE_CLASS == MESSAGE_TRANSPORTING
        assert LinkModule.MESSAGE_CLASS == MESSAGE_TRANSPORTING

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BufferModule("b", depth=0)
        with pytest.raises(ValueError):
            ArbiterModule("a", requesters=0)
        with pytest.raises(ValueError):
            LinkModule("l", latency=0)
        with pytest.raises(ValueError):
            CrossbarModule("x", inputs=0)
        with pytest.raises(ValueError):
            Module("")
