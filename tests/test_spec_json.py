"""JSON round-trip tests for experiment specs.

The serve subsystem ships specs over HTTP as JSON, so every spec
object must survive ``to_json -> from_json`` bit-identically: equal
dataclasses *and* identical cache keys (the dedup and result-cache
currency).  Property-style: the full preset matrix crossed with
protocol and fault-grammar variations.
"""

import json

import pytest

from repro.core.config import RunProtocol
from repro.core.presets import PRESETS, preset
from repro.exp import (
    ExperimentSpec,
    RunPoint,
    TrafficSpec,
    config_from_dict,
    config_to_dict,
    protocol_from_dict,
    protocol_to_dict,
)
from repro.faults import FaultEvent, FaultSpec, parse_fault_specs

from tests.conftest import small_config

PROTOCOLS = [
    RunProtocol(),
    RunProtocol(warmup_cycles=0, sample_packets=1, collect_power=False),
    RunProtocol(kernel="dense", monitor=True, audit_every=500),
    RunProtocol(telemetry_window=128, seed=7, livelock_cycles=10_000,
                on_stall="finish"),
    RunProtocol(faults=FaultSpec(seed=3, link_kills=2, link_flips=1,
                                 router_freezes=1, flip_duration=250),
                on_stall="finish"),
    RunProtocol(faults=FaultSpec(
        policy="drop",
        events=(FaultEvent("link_kill", 100, 5, 2),
                FaultEvent("router_freeze", 50, 3),
                FaultEvent("vc_stuck", 80, 2, 1, 0)))),
    RunProtocol(faults=parse_fault_specs(
        ["link_flip:node=5,port=east,at=1000,for=500",
         "random:kills=1,stuck=1"], seed=9, policy="drop")),
]

TRAFFICS = [
    TrafficSpec.of("uniform"),
    TrafficSpec.of("broadcast", source=9),
    TrafficSpec.of("hotspot", hotspot=5),
    TrafficSpec.of("transpose"),
]


class TestConfigRoundTrip:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_configs(self, name):
        config = preset(name)
        rebuilt = config_from_dict(
            json.loads(json.dumps(config_to_dict(config))))
        assert rebuilt == config

    @pytest.mark.parametrize("kind", ["wormhole", "vc", "central"])
    def test_small_configs(self, kind):
        config = small_config(kind)
        rebuilt = config_from_dict(
            json.loads(json.dumps(config_to_dict(config))))
        assert rebuilt == config

    def test_partial_dict_takes_defaults(self):
        config = config_from_dict({"topology": "mesh", "width": 8,
                                   "height": 8})
        assert config.topology == "mesh"
        assert config.router.kind == "wormhole"

    def test_bad_field_rejected(self):
        with pytest.raises(TypeError):
            config_from_dict({"no_such_field": 1})


class TestProtocolRoundTrip:
    @pytest.mark.parametrize("index", range(len(PROTOCOLS)))
    def test_protocols(self, index):
        protocol = PROTOCOLS[index]
        rebuilt = protocol_from_dict(
            json.loads(json.dumps(protocol_to_dict(protocol))))
        assert rebuilt == protocol

    def test_fault_events_survive(self):
        protocol = PROTOCOLS[5]
        rebuilt = protocol_from_dict(
            json.loads(json.dumps(protocol_to_dict(protocol))))
        assert rebuilt.faults.events == protocol.faults.events


class TestTrafficRoundTrip:
    @pytest.mark.parametrize("index", range(len(TRAFFICS)))
    def test_traffics(self, index):
        spec = TRAFFICS[index]
        rebuilt = TrafficSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_bare_name_shorthand(self):
        assert TrafficSpec.from_dict("uniform") == TrafficSpec.of("uniform")

    def test_params_still_validated(self):
        with pytest.raises(ValueError, match="requires parameter"):
            TrafficSpec.from_dict({"name": "broadcast", "params": {}})


class TestRunPointRoundTrip:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    @pytest.mark.parametrize("protocol", PROTOCOLS[:4])
    def test_preset_matrix_cache_keys_identical(self, name, protocol):
        point = RunPoint(config=preset(name),
                         traffic=TrafficSpec.of("broadcast", source=3),
                         rate=0.0625, protocol=protocol, label=name)
        rebuilt = RunPoint.from_json(point.to_json())
        assert rebuilt == point
        assert rebuilt.cache_key() == point.cache_key()

    def test_fault_protocol_cache_keys_identical(self):
        for protocol in PROTOCOLS[4:]:
            point = RunPoint(config=small_config("vc"),
                             traffic=TrafficSpec.of("uniform"),
                             rate=0.03, protocol=protocol)
            rebuilt = RunPoint.from_json(point.to_json())
            assert rebuilt == point
            assert rebuilt.cache_key() == point.cache_key()


class TestExperimentSpecRoundTrip:
    def test_full_grid(self):
        spec = ExperimentSpec.of(
            configs={name: preset(name) for name in sorted(PRESETS)},
            traffics=TRAFFICS,
            rates=[0.02, 0.05, 0.1],
            seeds=[1, 2, 3],
            protocol=PROTOCOLS[3])
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        ours, theirs = spec.points(), rebuilt.points()
        assert ours == theirs
        assert [p.cache_key() for p in ours] == \
            [p.cache_key() for p in theirs]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_protocol_variant(self, protocol):
        # stuck_vcs faults only fit VC routers; keep the grid compatible
        spec = ExperimentSpec.of(small_config("vc"), "uniform",
                                 rates=[0.02], protocol=protocol)
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec

    def test_json_is_pure_data(self):
        spec = ExperimentSpec.of(preset("VC16"), "uniform", rates=[0.05])
        payload = json.loads(spec.to_json())
        assert isinstance(payload, dict)
        # no repr()-smuggled objects anywhere in the tree
        def assert_plain(node):
            if isinstance(node, dict):
                for value in node.values():
                    assert_plain(value)
            elif isinstance(node, list):
                for value in node:
                    assert_plain(value)
            else:
                assert node is None or isinstance(node, (str, int, float,
                                                         bool))
        assert_plain(payload)
