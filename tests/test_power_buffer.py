"""Unit tests for the FIFO buffer power model (paper Table 2)."""

import pytest

from repro.power import FIFOBufferPower
from repro.tech import Technology


def tech():
    return Technology(0.1, vdd=1.2, frequency_hz=2e9)


def buf(depth=64, bits=256, pr=1, pw=1, t=None):
    return FIFOBufferPower(t or tech(), depth_flits=depth, flit_bits=bits,
                           read_ports=pr, write_ports=pw)


class TestGeometry:
    def test_wordline_length_formula(self):
        # L_wl = F * (w_cell + 2*(Pr+Pw)*d_w)
        t = tech()
        b = buf(depth=8, bits=32, t=t)
        expected = 32 * (t.cell_width_um + 2 * 2 * t.wire_spacing_um)
        assert b.wordline_length_um == pytest.approx(expected)

    def test_bitline_length_formula(self):
        # L_bl = B * (h_cell + (Pr+Pw)*d_w)
        t = tech()
        b = buf(depth=8, bits=32, t=t)
        expected = 8 * (t.cell_height_um + 2 * t.wire_spacing_um)
        assert b.bitline_length_um == pytest.approx(expected)

    def test_extra_ports_stretch_both_dimensions(self):
        single = buf(pr=1, pw=1)
        multi = buf(pr=2, pw=2)
        assert multi.wordline_length_um > single.wordline_length_um
        assert multi.bitline_length_um > single.bitline_length_um


class TestCapacitances:
    def test_wordline_cap_formula(self):
        # C_wl = 2*F*Cg(Tp) + Ca(Twd) + Cw(L_wl)
        t = tech()
        b = buf(depth=4, bits=16, t=t)
        expected = (
            2 * 16 * t.gate_cap(t.scaled_width("memcell_access"),
                                pass_gate=True)
            + t.inverter_cap(t.scaled_width("wordline_driver_n"),
                             t.scaled_width("wordline_driver_p"))
            + t.wire_cap(b.wordline_length_um, layer="word")
        )
        assert b.wordline_cap == pytest.approx(expected)

    def test_read_bitline_cap_formula(self):
        # C_br = B*Cd(Tp) + Cd(Tc) + Cw(L_bl)
        t = tech()
        b = buf(depth=4, bits=16, t=t)
        expected = (
            4 * t.diff_cap(t.scaled_width("memcell_access"))
            + t.diff_cap(t.scaled_width("precharge"), pmos=True)
            + t.wire_cap(b.bitline_length_um, layer="bit")
        )
        assert b.read_bitline_cap == pytest.approx(expected)

    def test_write_bitline_cap_formula(self):
        # C_bw = B*Cd(Tp) + Ca(Tbd) + Cw(L_bl)
        t = tech()
        b = buf(depth=4, bits=16, t=t)
        expected = (
            4 * t.diff_cap(t.scaled_width("memcell_access"))
            + t.inverter_cap(t.scaled_width("bitline_driver_n"),
                             t.scaled_width("bitline_driver_p"))
            + t.wire_cap(b.bitline_length_um, layer="bit")
        )
        assert b.write_bitline_cap == pytest.approx(expected)

    def test_precharge_cap_is_gate_only(self):
        t = tech()
        b = buf(t=t)
        assert b.precharge_cap == pytest.approx(
            t.gate_cap(t.scaled_width("precharge")))

    def test_cell_cap_formula(self):
        # C_cell = 2*(Pr+Pw)*Cd(Tp) + 2*Ca(Tm)
        t = tech()
        b = buf(pr=2, pw=1, t=t)
        expected = (
            2 * 3 * t.diff_cap(t.scaled_width("memcell_access"))
            + 2 * t.inverter_cap(t.scaled_width("memcell_nmos"),
                                 t.scaled_width("memcell_pmos"))
        )
        assert b.cell_cap == pytest.approx(expected)


class TestEnergies:
    def test_read_energy_composition(self):
        # E_read = E_wl + F*(E_br + 2*E_chg + E_amp)
        b = buf(depth=8, bits=32)
        per_bit = (b.read_bitline_energy + 2 * b.precharge_energy
                   + b.sense_amp_energy)
        assert b.read_energy() == pytest.approx(
            b.wordline_energy + 32 * per_bit)

    def test_write_energy_average_uses_half_width(self):
        # E_wrt = E_wl + (F/2)*(E_bw + E_cell) under random data.
        b = buf(depth=8, bits=32)
        assert b.write_energy() == pytest.approx(
            b.wordline_energy
            + 16 * (b.write_bitline_energy + b.cell_energy))

    def test_write_energy_tracks_hamming_distance(self):
        b = buf(depth=8, bits=32)
        zero_flip = b.write_energy(0b1010, 0b1010)
        one_flip = b.write_energy(0b1010, 0b1011)
        assert zero_flip == pytest.approx(b.wordline_energy)
        assert one_flip == pytest.approx(
            b.wordline_energy + b.write_bitline_energy + b.cell_energy)

    def test_read_energy_grows_with_flit_width(self):
        assert buf(bits=256).read_energy() > buf(bits=64).read_energy()

    def test_read_energy_grows_with_depth(self):
        # Longer bitlines make reads dearer.
        assert buf(depth=128).read_energy() > buf(depth=16).read_energy()

    def test_vc64_equals_wh64_buffer_power(self):
        """VC64's shared per-port array (8 VCs x 8 flits) is physically
        the same 64-flit array as WH64's — the Figure 5(b) equality."""
        assert buf(depth=8 * 8).read_energy() == pytest.approx(
            buf(depth=64).read_energy())

    def test_describe_is_complete(self):
        d = buf().describe()
        for key in ("wordline_cap_f", "read_energy_j", "write_energy_j",
                    "bitline_length_um"):
            assert key in d


class TestValidation:
    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            buf(depth=0)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            buf(bits=0)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            buf(pr=0)
        with pytest.raises(ValueError):
            buf(pw=0)
