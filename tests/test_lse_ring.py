"""Tests for the module-assembled ring network."""

from collections import Counter

import pytest

from repro.core import events as ev
from repro.lse import Message, build_ring_network, ring_route


def all_pairs_system(size=4):
    schedules = [[] for _ in range(size)]
    expected = []
    for src in range(size):
        for dst in range(size):
            if src != dst:
                schedules[src].append((src, Message(
                    payload=src * 10 + dst,
                    route=ring_route(src, dst, size))))
                expected.append((dst, src * 10 + dst))
    system = build_ring_network(schedules)
    system.bus.record = True
    return system, expected


class TestRingRoute:
    def test_forward_hops_then_eject(self):
        from repro.lse import RING_EJECT, RING_FORWARD
        assert ring_route(0, 1, 4) == [RING_FORWARD, RING_EJECT]
        assert ring_route(3, 1, 4) == [RING_FORWARD, RING_FORWARD,
                                       RING_EJECT]

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_route(0, 0, 4)
        with pytest.raises(ValueError):
            ring_route(0, 9, 4)


class TestRingDelivery:
    def test_all_pairs_delivered_to_correct_sinks(self):
        system, expected = all_pairs_system()
        system.run(80)
        got = []
        for r in range(4):
            for _, message in system.module(f"R{r}.Sink").received:
                got.append((r, message.payload))
        assert sorted(got) == sorted(expected)

    def test_event_counts_match_route_lengths(self):
        """Buffer writes = router visits (hops+1 per message); link
        traversals = forward hops — conservation across the fabric."""
        system, expected = all_pairs_system()
        system.run(80)
        counts = Counter(name for _, name, _ in system.bus.log)
        # 4-ring all-pairs: distances 1,2,3 each x4 messages.
        total_visits = sum((d + 1) * 4 for d in (1, 2, 3))
        total_hops = sum(d * 4 for d in (1, 2, 3))
        assert counts[ev.BUFFER_WRITE] == total_visits
        assert counts[ev.BUFFER_READ] == total_visits
        assert counts[ev.XBAR_TRAVERSAL] == total_visits
        assert counts[ev.LINK_TRAVERSAL] == total_hops

    def test_larger_ring(self):
        size = 6
        schedules = [[] for _ in range(size)]
        schedules[0].append((0, Message(payload=1,
                                        route=ring_route(0, 5, size))))
        system = build_ring_network(schedules)
        system.run(60)
        assert len(system.module("R5.Sink").received) == 1

    def test_route_exhaustion_caught(self):
        """A malformed (too short) route must raise, not wrap silently."""
        schedules = [[] for _ in range(3)]
        schedules[0].append((0, Message(route=[0])))  # never ejects
        system = build_ring_network(schedules)
        with pytest.raises(RuntimeError, match="route exhausted"):
            system.run(20)

    def test_needs_two_routers(self):
        with pytest.raises(ValueError):
            build_ring_network([[]])
