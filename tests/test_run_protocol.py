"""Tests for RunProtocol and the deprecated per-run kwargs compat layer."""

import pytest

from repro.core.config import RunProtocol, resolve_protocol
from repro.core.orion import Orion
from repro.sim.engine import Simulation
from repro.sim.traffic import UniformRandomTraffic
from repro.sim.topology import topology_for

from tests.conftest import small_config


class TestRunProtocol:
    def test_defaults_match_paper(self):
        proto = RunProtocol()
        assert proto.warmup_cycles == 1000
        assert proto.sample_packets == 10000
        assert proto.collect_power and not proto.monitor

    @pytest.mark.parametrize("field,value", [
        ("warmup_cycles", -1),
        ("sample_packets", 0),
        ("max_cycles", 0),
        ("watchdog_cycles", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            RunProtocol(**{field: value})

    def test_with_replaces_fields(self):
        proto = RunProtocol().with_(seed=9, monitor=True)
        assert proto.seed == 9 and proto.monitor
        assert RunProtocol().seed == 1  # original untouched

    def test_resolve_merges_overrides(self):
        base = RunProtocol(warmup_cycles=500)
        with pytest.warns(DeprecationWarning):
            merged = resolve_protocol(base, sample_packets=42)
        assert merged.warmup_cycles == 500 and merged.sample_packets == 42

    def test_resolve_without_overrides_is_identity(self):
        base = RunProtocol(seed=3)
        assert resolve_protocol(base) is base

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            resolve_protocol(None, warmup_cycles=100)


class TestLegacyEquivalence:
    """The deprecated kwargs and the RunProtocol path must be
    bit-identical."""

    def test_orion_run_uniform(self):
        orion = Orion(small_config("wormhole"))
        legacy = orion.run_uniform(0.03, warmup_cycles=120,
                                   sample_packets=50, seed=2)
        proto = orion.run_uniform(0.03, RunProtocol(warmup_cycles=120,
                                                    sample_packets=50,
                                                    seed=2))
        assert legacy.avg_latency == proto.avg_latency
        assert legacy.total_power_w == proto.total_power_w
        assert legacy.total_cycles == proto.total_cycles

    def test_simulation_constructor(self, wormhole_config):
        def run(**kwargs):
            topo = topology_for(wormhole_config)
            traffic = UniformRandomTraffic(topo, 0.03, seed=4)
            return Simulation(wormhole_config, traffic, **kwargs).run()

        legacy = run(warmup_cycles=100, sample_packets=40)
        proto = run(protocol=RunProtocol(warmup_cycles=100,
                                         sample_packets=40))
        assert legacy.avg_latency == proto.avg_latency
        assert legacy.total_power_w == proto.total_power_w

    def test_sweep_uniform_equivalence(self):
        orion = Orion(small_config("vc"))
        legacy = orion.sweep_uniform([0.02, 0.04], warmup_cycles=100,
                                     sample_packets=40, seed=5)
        proto = orion.sweep_uniform([0.02, 0.04],
                                    RunProtocol(warmup_cycles=100,
                                                sample_packets=40, seed=5))
        assert legacy.latencies == proto.latencies
        assert legacy.powers == proto.powers

    def test_simulation_rejects_bad_legacy_values(self, wormhole_config):
        topo = topology_for(wormhole_config)
        traffic = UniformRandomTraffic(topo, 0.03)
        with pytest.raises(ValueError):
            Simulation(wormhole_config, traffic, warmup_cycles=-1)


class TestMonitorThroughFacade:
    """Bugfix: Orion.run*/run_uniform could not enable the occupancy
    monitor; RunProtocol(monitor=True) now threads it through."""

    def test_run_uniform_monitor(self):
        orion = Orion(small_config("wormhole"))
        result = orion.run_uniform(
            0.03, RunProtocol(warmup_cycles=100, sample_packets=40,
                              monitor=True))
        assert result.monitor is not None
        assert result.monitor.cycles > 0
        assert 0.0 < result.monitor.max_channel_utilization() <= 1.0

    def test_run_broadcast_monitor(self):
        orion = Orion(small_config("vc"))
        result = orion.run_broadcast(
            9, 0.1, RunProtocol(warmup_cycles=100, sample_packets=40,
                                monitor=True))
        assert result.monitor is not None

    def test_monitor_off_by_default(self):
        orion = Orion(small_config("wormhole"))
        result = orion.run_uniform(0.03, RunProtocol(warmup_cycles=50,
                                                     sample_packets=20))
        assert result.monitor is None
