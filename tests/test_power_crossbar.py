"""Unit tests for the crossbar power models (paper Table 3)."""

import pytest

from repro.power import MatrixCrossbarPower, MuxTreeCrossbarPower
from repro.tech import Technology, driver_total_cap


def tech():
    return Technology(0.1, vdd=1.2, frequency_hz=2e9)


def matrix(i=5, o=5, w=32, t=None):
    return MatrixCrossbarPower(t or tech(), inputs=i, outputs=o,
                               width_bits=w)


def muxtree(i=5, o=5, w=32, t=None):
    return MuxTreeCrossbarPower(t or tech(), inputs=i, outputs=o,
                                width_bits=w)


class TestMatrixGeometry:
    def test_input_line_length(self):
        # L_in spans O output columns of W wires at the crosspoint pitch.
        t = tech()
        xb = matrix(i=5, o=5, w=32, t=t)
        assert xb.input_line_length_um == pytest.approx(
            5 * 32 * xb.crosspoint_pitch_um)

    def test_output_line_length(self):
        t = tech()
        xb = matrix(i=3, o=7, w=16, t=t)
        assert xb.output_line_length_um == pytest.approx(
            3 * 16 * xb.crosspoint_pitch_um)

    def test_crosspoint_pitch_is_two_wire_pitches(self):
        t = tech()
        assert matrix(t=t).crosspoint_pitch_um == pytest.approx(
            2 * t.wire_spacing_um)


class TestMatrixCapacitances:
    def test_input_line_cap_composition(self):
        # C_in = Ca(T_id) + O*Cd(T_x) + Cw(L_in)
        t = tech()
        xb = matrix(i=5, o=5, w=32, t=t)
        connector = t.diff_cap(t.scaled_width("crossbar_pass"))
        wire = t.wire_cap(xb.input_line_length_um, layer="word")
        passive = 5 * connector + wire
        assert xb.input_line_cap == pytest.approx(
            driver_total_cap(t, passive) + passive)

    def test_control_line_cap_composition(self):
        # C_xb_ctr = W*Cg(T_x) + Cw(L_in / 2)
        t = tech()
        xb = matrix(i=5, o=5, w=32, t=t)
        gate = t.gate_cap(t.scaled_width("crossbar_pass"), pass_gate=True)
        expected = 32 * gate + t.wire_cap(xb.input_line_length_um / 2,
                                          layer="word")
        assert xb.control_line_cap == pytest.approx(expected)

    def test_more_outputs_heavier_input_lines(self):
        assert matrix(o=8).input_line_cap > matrix(o=4).input_line_cap

    def test_more_inputs_heavier_output_lines(self):
        assert matrix(i=8).output_line_cap > matrix(i=4).output_line_cap


class TestMatrixEnergies:
    def test_traversal_energy_average(self):
        # delta = W/2 lines switch, each charging input + output line.
        xb = matrix(w=32)
        assert xb.traversal_energy() == pytest.approx(
            16 * (xb.input_line_energy + xb.output_line_energy))

    def test_traversal_energy_tracks_hamming(self):
        xb = matrix(w=32)
        same = xb.traversal_energy(0xDEAD, 0xDEAD)
        diff = xb.traversal_energy(0, 0b111)
        assert same == 0.0
        assert diff == pytest.approx(
            3 * (xb.input_line_energy + xb.output_line_energy))

    def test_traversal_energy_grows_with_width(self):
        assert matrix(w=256).traversal_energy() > matrix(w=32).traversal_energy()

    def test_describe_is_complete(self):
        d = matrix().describe()
        for key in ("input_line_cap_f", "control_line_cap_f",
                    "traversal_energy_j"):
            assert key in d


class TestMuxTree:
    def test_depth_is_log2_inputs(self):
        assert muxtree(i=2).depth == 1
        assert muxtree(i=5).depth == 3
        assert muxtree(i=8).depth == 3
        assert muxtree(i=1).depth == 0

    def test_traversal_energy_average(self):
        xb = muxtree(w=32)
        assert xb.traversal_energy() == pytest.approx(16 * xb.per_bit_energy)

    def test_traversal_energy_tracks_hamming(self):
        xb = muxtree(w=32)
        assert xb.traversal_energy(0, 0) == 0.0
        assert xb.traversal_energy(0, 1) == pytest.approx(xb.per_bit_energy)

    def test_cheaper_than_matrix_for_wide_fabrics(self):
        """A mux tree switches one log-depth path instead of full
        crosspoint rails, so traversals cost less."""
        assert muxtree(w=256).traversal_energy() < \
            matrix(w=256).traversal_energy()

    def test_deeper_tree_for_more_inputs(self):
        assert muxtree(i=16).traversal_energy() > muxtree(i=4).traversal_energy()


class TestValidation:
    @pytest.mark.parametrize("cls", [MatrixCrossbarPower, MuxTreeCrossbarPower])
    def test_rejects_zero_ports(self, cls):
        with pytest.raises(ValueError):
            cls(tech(), inputs=0, outputs=5, width_bits=32)
        with pytest.raises(ValueError):
            cls(tech(), inputs=5, outputs=0, width_bits=32)

    @pytest.mark.parametrize("cls", [MatrixCrossbarPower, MuxTreeCrossbarPower])
    def test_rejects_zero_width(self, cls):
        with pytest.raises(ValueError):
            cls(tech(), inputs=5, outputs=5, width_bits=0)
