"""Unit tests for the simulation engine and its measurement protocol."""

import pytest

from repro.core import events as ev
from repro.sim.engine import (
    DeadlockError,
    Simulation,
    SimulationTimeout,
)
from repro.sim.traffic import TraceTraffic, UniformRandomTraffic
from repro.sim.topology import Torus

from tests.conftest import small_config


def sim(kind="wormhole", rate=0.02, warmup=100, sample=50, **kwargs):
    cfg = small_config(kind)
    traffic = UniformRandomTraffic(Torus(4), rate, seed=11)
    return Simulation(cfg, traffic, warmup_cycles=warmup,
                      sample_packets=sample, **kwargs)


class TestProtocol:
    def test_sample_size_honoured(self):
        result = sim(sample=40).run()
        assert result.sample_packets == 40
        assert result.latency.count == 40

    def test_measured_cycles_exclude_warmup(self):
        result = sim(warmup=120).run()
        assert result.measured_cycles == result.total_cycles - 120

    def test_warmup_energy_excluded(self):
        """Energy from the first warmup cycles must not appear in the
        result (section 4.1)."""
        long_warm = sim(warmup=400, sample=30).run()
        # Rough invariant: energy per measured cycle should be similar
        # whether warm-up was long or short.
        short_warm = sim(warmup=50, sample=30).run()
        per_cycle_long = long_warm.total_energy_j / long_warm.measured_cycles
        per_cycle_short = (short_warm.total_energy_j /
                           short_warm.measured_cycles)
        assert per_cycle_long == pytest.approx(per_cycle_short, rel=0.5)

    def test_power_formula(self):
        """Average power = total energy * f / measured cycles."""
        result = sim().run()
        f = result.config.tech.frequency_hz
        assert result.total_power_w == pytest.approx(
            result.total_energy_j * f / result.measured_cycles)

    def test_breakdown_sums_to_total_power(self):
        result = sim().run()
        assert sum(result.power_breakdown_w().values()) == pytest.approx(
            result.total_power_w)

    def test_node_power_sums_to_total(self):
        result = sim().run()
        assert sum(result.node_power_w()) == pytest.approx(
            result.total_power_w)

    def test_all_sample_packets_have_latency(self):
        result = sim().run()
        assert result.avg_latency > 0
        assert result.latency.minimum >= 1

    def test_collect_power_false_disables_accounting(self):
        result = sim(collect_power=False).run()
        assert result.accountant is None
        with pytest.raises(ValueError):
            result.total_energy_j

    def test_event_counts_match_flits(self):
        """Every measured flit-hop does exactly one buffer read and one
        crossbar traversal in a wormhole network."""
        result = sim().run()
        acc = result.accountant
        reads = acc.event_count(ev.BUFFER_READ)
        xbars = acc.event_count(ev.XBAR_TRAVERSAL)
        assert reads == xbars


class TestTermination:
    def test_timeout_raises(self):
        with pytest.raises(SimulationTimeout):
            sim(max_cycles=150, warmup=100, sample=10_000).run()

    def test_trace_traffic_completes(self):
        cfg = small_config("wormhole")
        trace = [(0, 0, 5), (0, 1, 6), (3, 2, 7)]
        s = Simulation(cfg, TraceTraffic(Torus(4), trace),
                       warmup_cycles=0, sample_packets=3)
        result = s.run()
        assert result.packets_delivered == 3

    def test_watchdog_fires_on_artificial_stall(self):
        """Freeze every router: the watchdog must detect the stall
        instead of spinning forever."""
        s = sim(watchdog_cycles=50, warmup=0, sample=5)
        for router in s.network.routers:
            router.traversal_phase = lambda cycle: None
            router.allocation_phase = lambda cycle: None
            router.inject_flit = lambda flit: False
        s.network.create_packet(0, 5, 0)
        with pytest.raises(DeadlockError):
            s.run()


class TestValidation:
    def test_rejects_bad_parameters(self):
        cfg = small_config("wormhole")
        traffic = UniformRandomTraffic(Torus(4), 0.1)
        with pytest.raises(ValueError):
            Simulation(cfg, traffic, warmup_cycles=-1)
        with pytest.raises(ValueError):
            Simulation(cfg, traffic, sample_packets=0)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = sim().run()
        b = sim().run()
        assert a.avg_latency == b.avg_latency
        assert a.total_cycles == b.total_cycles
        assert a.total_energy_j == pytest.approx(b.total_energy_j)
