"""Unit tests for the static-power extension (Butts-Sohi model)."""

import pytest

from repro import Orion, preset
from repro.power import (
    CentralBufferPower,
    FIFOBufferPower,
    FlipFlopPower,
    MatrixArbiterPower,
    MatrixCrossbarPower,
    MuxTreeCrossbarPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.power import leakage
from repro.tech import Technology


def tech(feature=0.1):
    return Technology(feature, vdd=1.2, frequency_hz=1e9)


class TestStaticPowerFormula:
    def test_linear_in_width(self):
        t = tech()
        assert leakage.static_power(t, 200.0) == pytest.approx(
            2 * leakage.static_power(t, 100.0))

    def test_grows_with_smaller_nodes(self):
        """Leakage per um rises steeply as the process scales."""
        width = 1000.0
        assert leakage.static_power(tech(0.07), width) > \
            10 * leakage.static_power(tech(0.18), width)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            leakage.static_power(tech(), -1.0)


class TestInventories:
    def test_buffer_width_scales_with_cells(self):
        t = tech()
        small = FIFOBufferPower(t, depth_flits=16, flit_bits=32)
        big = FIFOBufferPower(t, depth_flits=64, flit_bits=32)
        assert leakage.buffer_width_um(big) > \
            3 * leakage.buffer_width_um(small)

    def test_crossbar_width_scales_with_radix(self):
        t = tech()
        small = MatrixCrossbarPower(t, 3, 3, 32)
        big = MatrixCrossbarPower(t, 6, 6, 32)
        assert leakage.crossbar_width_um(big) > \
            2 * leakage.crossbar_width_um(small)

    def test_mux_tree_leaks_less_than_matrix(self):
        t = tech()
        mx = MatrixCrossbarPower(t, 8, 8, 64)
        mt = MuxTreeCrossbarPower(t, 8, 8, 64)
        assert leakage.crossbar_width_um(mt) < leakage.crossbar_width_um(mx)

    def test_arbiter_inventories_cover_all_types(self):
        t = tech()
        for cls in (MatrixArbiterPower, RoundRobinArbiterPower,
                    QueuingArbiterPower):
            width = leakage.arbiter_width_um(cls(t, requesters=4))
            assert width > 0

    def test_matrix_arbiter_state_grows_quadratically(self):
        t = tech()
        small = leakage.arbiter_width_um(MatrixArbiterPower(t, requesters=4))
        big = leakage.arbiter_width_um(MatrixArbiterPower(t, requesters=16))
        assert big > 8 * small

    def test_central_buffer_includes_subcomponents(self):
        t = tech()
        model = CentralBufferPower(t, rows=256, banks=4, flit_bits=32)
        total = leakage.central_buffer_width_um(model)
        assert total > leakage.buffer_width_um(model.bank_model)

    def test_flipflop_width_positive(self):
        assert leakage.flipflop_width_um(FlipFlopPower(tech())) > 0

    def test_unknown_model_rejected(self):
        with pytest.raises(TypeError):
            leakage.crossbar_width_um(object())
        with pytest.raises(TypeError):
            leakage.arbiter_width_um(object())


class TestEndToEnd:
    def test_leakage_adds_idle_floor(self):
        """With leakage on, a nearly idle network still burns power in
        buffers; with it off, idle power is only the links."""
        base = preset("VC16")
        with_leak = base.with_(include_leakage=True)
        rate = 0.01
        off = Orion(base).run_uniform(rate, warmup_cycles=200,
                                      sample_packets=60)
        on = Orion(with_leak).run_uniform(rate, warmup_cycles=200,
                                          sample_packets=60)
        assert on.total_power_w > off.total_power_w

    def test_leakage_is_rate_independent(self):
        cfg = preset("VC16").with_(include_leakage=True)
        slow = Orion(cfg).run_uniform(0.01, warmup_cycles=200,
                                      sample_packets=60)
        base = preset("VC16")
        slow_off = Orion(base).run_uniform(0.01, warmup_cycles=200,
                                           sample_packets=60)
        static = slow.total_power_w - slow_off.total_power_w
        fast = Orion(cfg).run_uniform(0.08, warmup_cycles=200,
                                      sample_packets=60)
        fast_off = Orion(base).run_uniform(0.08, warmup_cycles=200,
                                           sample_packets=60)
        static_fast = fast.total_power_w - fast_off.total_power_w
        assert static == pytest.approx(static_fast, rel=0.05)

    def test_event_counts_unchanged_by_leakage(self):
        from repro.core import events as ev
        cfg = preset("VC16").with_(include_leakage=True)
        result = Orion(cfg).run_uniform(0.02, warmup_cycles=200,
                                        sample_packets=60)
        base = Orion(preset("VC16")).run_uniform(0.02, warmup_cycles=200,
                                                 sample_packets=60)
        assert result.accountant.event_count(ev.BUFFER_WRITE) == \
            base.accountant.event_count(ev.BUFFER_WRITE)
