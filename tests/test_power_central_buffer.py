"""Unit tests for the hierarchical central buffer power model."""

import pytest

from repro.power import CentralBufferPower, FIFOBufferPower
from repro.tech import Technology


def tech():
    return Technology(0.1, vdd=1.2, frequency_hz=1e9)


def cb(rows=2560, banks=4, bits=32, rp=2, wp=2, row_access=True, t=None):
    return CentralBufferPower(t or tech(), rows=rows, banks=banks,
                              flit_bits=bits, read_ports=rp, write_ports=wp,
                              router_ports=5, row_access=row_access)


class TestComposition:
    def test_capacity(self):
        assert cb().capacity_flits == 2560 * 4

    def test_row_access_energises_full_row(self):
        model = cb(row_access=True)
        assert model.access_bits == 4 * 32
        assert model.bank_model.flit_bits == 128

    def test_flit_access_energises_one_bank(self):
        model = cb(row_access=False)
        assert model.access_bits == 32
        assert model.bank_model.flit_bits == 32

    def test_bank_reuses_fifo_model_with_fabric_ports(self):
        model = cb(rp=2, wp=2)
        assert isinstance(model.bank_model, FIFOBufferPower)
        assert model.bank_model.read_ports == 2
        assert model.bank_model.write_ports == 2
        assert model.bank_model.depth_flits == 2560

    def test_crossbars_bridge_router_and_fabric_ports(self):
        model = cb()
        assert model.input_crossbar.inputs == 5
        assert model.input_crossbar.outputs == 2
        assert model.output_crossbar.inputs == 2
        assert model.output_crossbar.outputs == 5


class TestEnergies:
    def test_write_composition(self):
        """Write = input crossbar + pipeline register + bank write."""
        model = cb()
        switching = model.flit_bits / 2
        expected = (
            model.input_crossbar.traversal_energy()
            + model.access_bits * model.register_model.clock_energy
            + switching * model.register_model.data_switch_energy
            + model.bank_model.write_energy()
        )
        assert model.write_energy() == pytest.approx(expected)

    def test_read_composition(self):
        model = cb()
        switching = model.flit_bits / 2
        expected = (
            model.bank_model.read_energy()
            + model.access_bits * model.register_model.clock_energy
            + switching * model.register_model.data_switch_energy
            + model.output_crossbar.traversal_energy()
        )
        assert model.read_energy() == pytest.approx(expected)

    def test_row_access_costs_more_than_flit_access(self):
        assert cb(row_access=True).read_energy() > \
            cb(row_access=False).read_energy()

    def test_central_buffer_dwarfs_its_crossbars(self):
        """Section 4.4: "a central buffer consumes much more energy than a
        crossbar due to its higher switching capacitance"."""
        model = cb()
        assert model.read_energy() > 10 * model.input_crossbar \
            .traversal_energy()

    def test_energy_grows_with_rows(self):
        assert cb(rows=4096).read_energy() > cb(rows=512).read_energy()

    def test_payload_tracking_reduces_idle_rewrites(self):
        model = cb()
        assert model.write_energy(0xAA, 0xAA) < model.write_energy()

    def test_describe_nests_subcomponents(self):
        d = cb().describe()
        assert d["bank"]["depth_flits"] == 2560
        assert d["input_crossbar"]["inputs"] == 5
        assert d["row_access"] is True


class TestValidation:
    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            cb(rows=0)

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            cb(banks=0)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            cb(rp=0)
        with pytest.raises(ValueError):
            cb(wp=0)

    def test_rejects_zero_flit_bits(self):
        with pytest.raises(ValueError):
            cb(bits=0)
