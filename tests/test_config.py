"""Unit tests for configuration validation."""

import pytest

from repro.core.config import (
    LinkConfig,
    NetworkConfig,
    RouterConfig,
    TechConfig,
)


class TestTechConfig:
    def test_builds_technology(self):
        tech = TechConfig(0.1, vdd=1.2, frequency_hz=2e9).build()
        assert tech.vdd == 1.2
        assert tech.frequency_hz == 2e9


class TestRouterConfig:
    def test_defaults_valid(self):
        RouterConfig()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            RouterConfig(kind="optical")

    def test_vc_buffer_is_per_vc(self):
        rc = RouterConfig(kind="vc", num_vcs=8, buffer_depth=8)
        assert rc.buffer_flits_per_port == 64

    def test_wormhole_buffer_is_per_port(self):
        rc = RouterConfig(kind="wormhole", buffer_depth=64)
        assert rc.buffer_flits_per_port == 64

    def test_cb_capacity(self):
        rc = RouterConfig(kind="central", cb_rows=2560, cb_banks=4)
        assert rc.cb_capacity_flits == 10240

    def test_dateline_needs_two_vcs(self):
        with pytest.raises(ValueError):
            RouterConfig(kind="vc", num_vcs=1, vc_class_mode="dateline")
        RouterConfig(kind="vc", num_vcs=2, vc_class_mode="dateline")

    @pytest.mark.parametrize("field,value", [
        ("flit_bits", 0), ("buffer_depth", 0), ("num_vcs", 0),
        ("arbiter_type", "oracle"), ("crossbar_type", "optical"),
        ("vc_class_mode", "escape"),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            RouterConfig(**{field: value})

    def test_central_validation(self):
        with pytest.raises(ValueError):
            RouterConfig(kind="central", cb_rows=0)
        with pytest.raises(ValueError):
            RouterConfig(kind="central", cb_read_ports=0)


class TestLinkConfig:
    def test_on_chip_needs_positive_length(self):
        with pytest.raises(ValueError):
            LinkConfig(kind="on_chip", length_mm=0.0)

    def test_chip_to_chip_needs_nonnegative_power(self):
        with pytest.raises(ValueError):
            LinkConfig(kind="chip_to_chip", power_watts=-1.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            LinkConfig(kind="wireless")


class TestNetworkConfig:
    def test_num_nodes(self):
        assert NetworkConfig(width=4, height=4).num_nodes == 16

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="hypercube")

    def test_unknown_tie_break(self):
        with pytest.raises(ValueError):
            NetworkConfig(tie_break="flip")

    def test_unknown_activity_mode(self):
        with pytest.raises(ValueError):
            NetworkConfig(activity_mode="peak")

    def test_zero_length_packets_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(packet_length_flits=0)

    def test_with_router_replaces_only_router_fields(self):
        cfg = NetworkConfig()
        new = cfg.with_router(buffer_depth=99)
        assert new.router.buffer_depth == 99
        assert new.width == cfg.width
        assert cfg.router.buffer_depth != 99  # original untouched

    def test_with_replaces_top_level(self):
        cfg = NetworkConfig()
        new = cfg.with_(activity_mode="data")
        assert new.activity_mode == "data"
        assert cfg.activity_mode == "average"

    def test_frozen(self):
        cfg = NetworkConfig()
        with pytest.raises(Exception):
            cfg.width = 8
