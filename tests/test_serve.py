"""Tests for the simulation service (``repro serve``).

Unit layers first (queue, metrics, job parsing, journal), then
integration against a real in-process server: 100 concurrent
submissions over 2 workers, single-flight dedup, 429 backpressure,
journal recovery, and a subprocess SIGTERM graceful-drain check.
"""

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exp import config_to_dict
from repro.serve import (
    Job,
    JobError,
    JobJournal,
    JobNotFound,
    JobQueue,
    JobRejected,
    QueueFull,
    ServeApp,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerMetrics,
    parse_job,
)

from tests.conftest import small_config

SMALL_CONFIG = config_to_dict(small_config("wormhole"))
FAST_PROTOCOL = {"warmup_cycles": 80, "sample_packets": 30}


def run_payload(rate=0.03, label="", **spec_extra):
    spec = {"config": SMALL_CONFIG, "traffic": "uniform", "rate": rate,
            "protocol": dict(FAST_PROTOCOL), "label": label}
    spec.update(spec_extra)
    return {"kind": "run", "spec": spec}


def estimate_payload(rate=0.05, preset="VC16"):
    return {"kind": "estimate",
            "spec": {"config": preset, "traffic": "uniform", "rate": rate}}


def experiment_payload(rates, **spec_extra):
    spec = {"configs": [["small", SMALL_CONFIG]], "traffics": ["uniform"],
            "rates": list(rates), "protocol": dict(FAST_PROTOCOL)}
    spec.update(spec_extra)
    return {"kind": "experiment", "spec": spec}


def make_job(payload, job_id="j1", priority=0):
    payload = dict(payload)
    if priority:
        payload["priority"] = priority
    return parse_job(payload, job_id)


# --- unit: queue -------------------------------------------------------------

class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue(limit=8)
        jobs = [make_job(estimate_payload(rate=0.01 * i), f"j{i}")
                for i in range(1, 4)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop().id for _ in range(3)] == ["j1", "j2", "j3"]
        assert queue.pop() is None

    def test_higher_priority_first(self):
        queue = JobQueue(limit=8)
        queue.push(make_job(estimate_payload(0.01), "low"))
        queue.push(make_job(estimate_payload(0.02), "high", priority=5))
        queue.push(make_job(estimate_payload(0.03), "mid", priority=1))
        assert [queue.pop().id for _ in range(3)] == ["high", "mid", "low"]

    def test_bound_raises_queue_full(self):
        queue = JobQueue(limit=2)
        queue.push(make_job(estimate_payload(0.01), "a"))
        queue.push(make_job(estimate_payload(0.02), "b"))
        with pytest.raises(QueueFull):
            queue.push(make_job(estimate_payload(0.03), "c"))
        assert len(queue) == 2

    def test_iter_is_pop_order_and_non_destructive(self):
        queue = JobQueue(limit=8)
        queue.push(make_job(estimate_payload(0.01), "low"))
        queue.push(make_job(estimate_payload(0.02), "high", priority=9))
        assert [job.id for job in queue] == ["high", "low"]
        assert len(queue) == 2

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(limit=0)


# --- unit: metrics -----------------------------------------------------------

class TestServerMetrics:
    def test_counters_start_at_zero_and_inc(self):
        metrics = ServerMetrics()
        assert metrics.counters["deduped"] == 0
        metrics.inc("deduped")
        metrics.inc("submitted", 3)
        assert metrics.counters["deduped"] == 1
        assert metrics.counters["submitted"] == 3

    def test_percentiles_nearest_rank(self):
        metrics = ServerMetrics()
        assert metrics.percentile(50) is None
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            metrics.observe_duration(value)
        assert metrics.percentile(50) == 3.0
        assert metrics.percentile(99) == 5.0
        assert metrics.percentile(0) == 1.0

    def test_snapshot_shape(self):
        metrics = ServerMetrics()
        metrics.inc("accepted")
        snap = metrics.snapshot(queue_depth=3, in_flight=1, draining=False)
        assert snap["queue_depth"] == 3
        assert snap["in_flight"] == 1
        assert snap["accepted"] == 1
        assert snap["draining"] is False
        assert "wall_seconds_p50" in snap
        assert "cache_hits" not in snap  # no cache wired in


# --- unit: job parsing and dedup keys ---------------------------------------

class TestParseJob:
    def test_run_job_expands_one_point(self):
        job = make_job(run_payload(rate=0.04))
        assert job.kind == "run"
        assert len(job.points) == 1
        assert job.points[0].rate == 0.04

    def test_experiment_job_expands_grid(self):
        job = make_job(experiment_payload([0.02, 0.05], seeds=[1, 2]))
        assert len(job.points) == 4

    def test_estimate_job_has_no_points(self):
        job = make_job(estimate_payload())
        assert job.points == []
        assert job.estimate["rate"] == 0.05

    def test_preset_name_and_explicit_dict_share_key(self):
        from repro.core.presets import preset
        by_name = make_job({"kind": "run",
                            "spec": {"config": "VC16", "rate": 0.03}}, "a")
        by_dict = make_job({"kind": "run",
                            "spec": {"config": config_to_dict(preset("VC16")),
                                     "rate": 0.03}}, "b")
        assert by_name.key == by_dict.key

    def test_run_and_one_point_experiment_share_key(self):
        run = make_job(run_payload(rate=0.03, label="small"), "a")
        experiment = make_job(experiment_payload([0.03]), "b")
        assert run.key == experiment.key

    def test_different_rates_differ(self):
        assert make_job(run_payload(0.03), "a").key \
            != make_job(run_payload(0.04), "b").key

    def test_preset_overrides(self):
        job = make_job({"kind": "run", "spec": {
            "config": {"preset": "VC16",
                       "overrides": {"router": {"num_vcs": 4}}},
            "rate": 0.03}})
        assert job.points[0].config.router.num_vcs == 4

    @pytest.mark.parametrize("payload,fragment", [
        ([1, 2], "must be a JSON object"),
        ({"kind": "teleport", "spec": {}}, "unknown job kind"),
        ({"kind": "run"}, "needs a 'spec' object"),
        ({"kind": "run", "spec": {"rate": 0.03}}, "missing 'config'"),
        ({"kind": "run", "spec": {"config": "NOPE", "rate": 0.03}},
         "unknown preset"),
        ({"kind": "run", "spec": {"config": "VC16", "rate": "fast"}},
         "rate must be a number"),
        ({"kind": "run", "spec": {"config": "VC16", "rate": 0.03},
          "bogus": 1}, "unknown job fields"),
        ({"kind": "run", "spec": {"config": "VC16", "rate": 0.03},
          "options": {"processes": 0}}, "processes must be >= 1"),
        ({"kind": "run", "spec": {"config": "VC16", "rate": 0.03},
          "options": {"point_timeout": -1}}, "point_timeout must be > 0"),
        ({"kind": "experiment", "spec": {"traffics": ["uniform"],
                                         "rates": [0.03]}},
         "missing configs"),
        ({"kind": "experiment",
          "spec": {"presets": ["VC16"], "configs": [["a", "VC16"]],
                   "traffics": ["uniform"], "rates": [0.03]}},
         "not both"),
        ({"kind": "estimate", "spec": {"config": "VC16"}},
         "missing 'rate'"),
    ])
    def test_malformed_payloads_raise_job_error(self, payload, fragment):
        with pytest.raises(JobError, match=fragment):
            parse_job(payload, "x")


# --- unit: journal -----------------------------------------------------------

class TestJobJournal:
    def test_record_recover_discard(self, tmp_path):
        journal = JobJournal(tmp_path / "journal")
        first = make_job(estimate_payload(0.01), "first")
        second = make_job(estimate_payload(0.02), "second")
        journal.record(first)
        journal.record(second)
        assert len(journal) == 2
        entries = journal.recover()
        assert [e["id"] for e in entries] == ["first", "second"]
        assert entries[0]["payload"] == first.payload
        journal.discard("first")
        assert len(journal) == 1
        journal.discard("first")  # idempotent
        assert [e["id"] for e in journal.recover()] == ["second"]

    def test_recover_drops_unreadable_entries(self, tmp_path):
        root = tmp_path / "journal"
        journal = JobJournal(root)
        journal.record(make_job(estimate_payload(0.01), "good"))
        (root / "bad.json").write_text("{not json")
        (root / "wrong.json").write_text('{"no": "id"}')
        assert [e["id"] for e in journal.recover()] == ["good"]
        assert len(journal) == 1  # junk removed

    def test_missing_root_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "nowhere")
        assert journal.recover() == []
        assert len(journal) == 0


# --- integration: in-process server ------------------------------------------

class ServerHandle:
    """One in-process server on an ephemeral port, drained on close."""

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self.thread = threading.Thread(
            target=lambda: asyncio.run(app.serve()), daemon=True)
        self.thread.start()
        if not app.ready.wait(15):
            raise RuntimeError("server did not come up")
        self.client = ServeClient(f"http://127.0.0.1:{app.port}",
                                  timeout=30.0)

    def close(self) -> None:
        self.app.request_drain()
        self.thread.join(timeout=60)


@pytest.fixture
def start_server(tmp_path):
    handles = []

    def start(**kwargs):
        options = dict(host="127.0.0.1", port=0, workers=2, queue_limit=64,
                       cache_dir=str(tmp_path / "cache"),
                       journal_dir=str(tmp_path / "journal"),
                       drain_timeout=20.0, quiet=True)
        options.update(kwargs)
        handle = ServerHandle(ServeApp(ServeConfig(**options)))
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.close()


def wait_until_running(client, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(job_id)["status"]
        if status in ("running", "done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never started")


class TestServerBasics:
    def test_health_and_estimate_round_trip(self, start_server):
        server = start_server()
        client = server.client
        assert client.health()["status"] == "ok"
        final = client.submit_and_wait(estimate_payload(0.05), timeout=30)
        assert final["status"] == "done"
        est = final["result"]["estimate"]
        assert est["rate"] == 0.05
        assert est["total_power_w"] > 0
        assert est["avg_latency"] > 0

    def test_run_job_returns_point_summaries(self, start_server):
        server = start_server()
        final = server.client.submit_and_wait(run_payload(0.03), timeout=120)
        assert final["status"] == "done"
        result = final["result"]
        assert result["num_points"] == 1
        assert result["failures"] == 0
        point = result["points"][0]
        assert point["ok"] is True
        assert point["avg_latency"] > 0
        assert point["total_power_w"] > 0

    def test_unknown_job_is_404(self, start_server):
        server = start_server()
        with pytest.raises(ServeError) as excinfo:
            server.client.status("nope")
        assert excinfo.value.status == 404

    def test_invalid_payload_is_400(self, start_server):
        server = start_server()
        with pytest.raises(ServeError) as excinfo:
            server.client.submit({"kind": "run", "spec": {"rate": 0.03}})
        assert excinfo.value.status == 400
        assert "config" in str(excinfo.value)
        assert server.client.metrics()["invalid"] == 1

    def test_event_stream_ends_with_done(self, start_server):
        server = start_server()
        client = server.client
        accepted = client.submit(run_payload(0.02, label="streamed"))
        events = list(client.stream(accepted["id"]))
        assert events[0]["type"] == "status"
        assert events[-1]["type"] == "done"
        assert events[-1]["status"] == "done"
        assert any(event["type"] == "progress" for event in events)

    def test_cache_hit_on_resubmit_after_completion(self, start_server):
        server = start_server()
        client = server.client
        first = client.submit_and_wait(run_payload(0.025), timeout=120)
        assert first["result"]["points"][0]["from_cache"] is False
        second = client.submit_and_wait(run_payload(0.025), timeout=120)
        assert second["id"] != first["id"]
        assert second["result"]["points"][0]["from_cache"] is True
        assert client.metrics()["cache_hits"] >= 1


class TestDedupAndBackpressure:
    def test_identical_payloads_coalesce(self, start_server):
        server = start_server(workers=1)
        client = server.client
        # Occupy the single worker so duplicates meet an active key.
        blocker = client.submit(run_payload(0.02, label="blocker"))
        wait_until_running(client, blocker["id"])
        first = client.submit(run_payload(0.03, label="dup"))
        assert first["deduped"] is False
        second = client.submit(run_payload(0.03, label="dup"))
        assert second["deduped"] is True
        assert second["id"] == first["id"]
        final = client.wait(first["id"], timeout=120)
        assert final["status"] == "done"
        assert final["coalesced"] == 1
        metrics = client.metrics()
        assert metrics["deduped"] == 1
        assert metrics["accepted"] == 2

    def test_queue_full_gets_429_with_retry_after(self, start_server):
        server = start_server(workers=1, queue_limit=1)
        client = server.client
        blocker = client.submit(run_payload(0.02, label="blocker"))
        wait_until_running(client, blocker["id"])
        queued = client.submit(run_payload(0.03, label="queued"))
        assert queued["status"] == "queued"
        with pytest.raises(ServeError) as excinfo:
            client.submit(run_payload(0.04, label="bounced"))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1
        assert client.metrics()["rejected_queue_full"] == 1
        # Both surviving jobs still finish.
        assert client.wait(queued["id"], timeout=120)["status"] == "done"


class TestConcurrentLoad:
    def test_hundred_concurrent_submissions(self, start_server):
        server = start_server(workers=2, queue_limit=256)
        client = server.client

        # Keep both workers busy so the duplicate pair below reliably
        # meets an active (queued) key instead of racing a fast finish.
        # Distinct rates: identical rates would dedup into one job.
        blockers = [client.submit(run_payload(0.021 + 0.001 * i,
                                              label=f"blk{i}"))
                    for i in range(2)]
        for blocker in blockers:
            wait_until_running(client, blocker["id"])

        payloads = [estimate_payload(rate=0.001 + 0.0005 * i)
                    for i in range(96)]
        payloads += [run_payload(0.03, label="dup"),
                     run_payload(0.03, label="dup"),
                     run_payload(0.035, label="solo"),
                     experiment_payload([0.02, 0.04])]
        assert len(payloads) == 100

        with ThreadPoolExecutor(max_workers=32) as pool:
            accepted = list(pool.map(client.submit, payloads))

        job_ids = {entry["id"] for entry in accepted}
        finals = {job_id: client.wait(job_id, timeout=300)
                  for job_id in job_ids}
        assert all(final["status"] == "done"
                   for final in finals.values())

        # Estimates came back correct: rate echoed, finite physics.
        rates_seen = sorted(
            final["result"]["estimate"]["rate"]
            for final in finals.values() if "estimate" in
            (final["result"] or {}))
        assert rates_seen == sorted(p["spec"]["rate"] for p in payloads
                                    if p["kind"] == "estimate")
        # The experiment grid ran both points.
        experiment_final = next(f for f in finals.values()
                                if f["kind"] == "experiment")
        assert experiment_final["result"]["num_points"] == 2
        assert experiment_final["result"]["failures"] == 0

        # Identical payloads executed at most once.
        dup_ids = {entry["id"] for entry, payload in zip(accepted, payloads)
                   if payload.get("spec", {}).get("label") == "dup"}
        assert len(dup_ids) == 1
        metrics = client.metrics()
        assert metrics["deduped"] >= 1
        assert metrics["submitted"] == 102  # 2 blockers + 100 burst
        assert metrics["accepted"] == len(job_ids) + 2
        assert metrics["failed"] == 0


class TestRecovery:
    def test_journaled_jobs_recovered_and_completed(self, tmp_path,
                                                    start_server):
        journal = JobJournal(tmp_path / "journal")
        for index in range(3):
            journal.record(make_job(estimate_payload(0.01 + 0.01 * index),
                                    f"lost{index}"))
        server = start_server(journal_dir=str(tmp_path / "journal"))
        client = server.client
        assert client.metrics()["recovered"] == 3
        for index in range(3):
            final = client.wait(f"lost{index}", timeout=60)
            assert final["status"] == "done"
        assert len(journal) == 0  # discarded as each completed

    def test_drain_completes_in_flight_then_exits(self, tmp_path):
        app = ServeApp(ServeConfig(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            journal_dir=str(tmp_path / "journal"), drain_timeout=20.0,
            quiet=True))
        thread = threading.Thread(target=lambda: asyncio.run(app.serve()),
                                  daemon=True)
        thread.start()
        assert app.ready.wait(15)
        client = ServeClient(f"http://127.0.0.1:{app.port}")
        accepted = client.submit(run_payload(0.02))
        wait_until_running(client, accepted["id"])
        app.request_drain()
        thread.join(timeout=60)
        assert not thread.is_alive()
        # The in-flight job finished and its journal entry was cleared.
        assert app.jobs[accepted["id"]].status == "done"
        assert len(app.journal) == 0


class TestSigtermSubprocess:
    def test_sigterm_mid_load_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                         "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        journal_dir = tmp_path / "journal"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--cache-dir", str(tmp_path / "cache"),
             "--journal-dir", str(journal_dir),
             "--drain-timeout", "60"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(tmp_path))
        try:
            line = process.stdout.readline()
            assert "serving on http://" in line, line
            port = int(line.split("http://")[1].split()[0]
                       .rsplit(":", 1)[1])
            client = ServeClient(f"http://127.0.0.1:{port}")
            accepted = [client.submit(run_payload(0.02 + 0.005 * i,
                                                  label=f"load{i}"))
                        for i in range(4)]
            wait_until_running(client, accepted[0]["id"])
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, out
        assert "drain: complete, exiting 0" in out
        # Anything unfinished stayed journaled (recoverable), anything
        # finished was discarded — either way every file is readable.
        leftover = JobJournal(journal_dir).recover()
        finished = 4 - len(leftover)
        assert 0 <= finished <= 4
        for entry in leftover:
            parse_job(entry["payload"], entry["id"])  # recoverable


class TestBatchAndHousekeeping:
    def test_batch_submit_mixed_entries(self, start_server):
        """One batch with good, duplicate and bad entries: per-entry
        http_status, no cross-poisoning, correct tallies."""
        server = start_server()
        client = server.client
        good = run_payload(0.02, label="batch0")
        out = client.submit_many([good, good, {"kind": "nonsense"}])
        assert len(out) == 3
        assert out[0]["http_status"] == 202
        # Same payload → single-flight dedup onto the first entry's job.
        assert out[1]["http_status"] in (200, 202)
        assert out[1]["id"] == out[0]["id"]
        assert out[2]["http_status"] == 400
        assert "error" in out[2]
        final = client.wait(out[0]["id"], timeout=120)
        assert final["status"] == "done"
        metrics = client.metrics()
        assert metrics["submitted"] >= 3
        assert metrics["invalid"] >= 1

    def test_batch_rejects_non_list_body(self, start_server):
        server = start_server()
        client = server.client
        with pytest.raises(ServeError) as err:
            client._request("POST", "/v1/jobs:batch", {"jobs": "nope"})
        assert err.value.status == 400

    def test_terminal_jobs_evicted_after_ttl(self, start_server):
        server = start_server(job_ttl=10.0)
        client = server.client
        final = client.submit_and_wait(run_payload(0.02, label="ttl"),
                                       timeout=120)
        app = server.app
        job_id = final["id"]
        assert app.housekeep(now=time.time() + 5.0) == 0
        assert job_id in app.jobs
        assert app.housekeep(now=time.time() + 11.0) == 1
        assert job_id not in app.jobs
        assert client.metrics()["evicted_jobs"] == 1
        with pytest.raises(ServeError) as err:
            client.status(job_id)
        assert err.value.status == 404

    def test_running_jobs_never_evicted(self, start_server):
        server = start_server(workers=1, job_ttl=0.001)
        client = server.client
        accepted = client.submit(run_payload(0.02, label="live"))
        wait_until_running(client, accepted["id"])
        server.app.housekeep(now=time.time() + 3600.0)
        final = client.wait(accepted["id"], timeout=120)
        assert final["status"] == "done"

    def test_event_log_bounded_and_stream_survives(self, start_server):
        server = start_server(max_job_events=3)
        client = server.client
        accepted = client.submit(experiment_payload(
            [0.02, 0.025, 0.03, 0.035], label="bounded"))
        final = client.wait(accepted["id"], timeout=120)
        # 1 queued + 1 running + 4 progress + 1 done published, only the
        # newest 3 retained.
        assert final["num_events"] == 7
        assert final["events_trimmed"] == 4
        assert client.metrics()["trimmed_events"] >= 4
        # A late stream replays only the retained tail, still ending
        # with the terminal done event.
        events = list(client.stream(accepted["id"]))
        assert len(events) == 3
        assert events[-1]["type"] == "done"

    def test_housekeeping_prunes_result_cache(self, tmp_path,
                                              start_server):
        server = start_server(cache_max_entries=1,
                              housekeeping_interval=0.2)
        client = server.client
        client.submit_and_wait(run_payload(0.02, label="p0"), timeout=120)
        client.submit_and_wait(run_payload(0.03, label="p1"), timeout=120)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if server.app.cache.stats()["entries"] <= 1:
                break
            time.sleep(0.1)
        assert server.app.cache.stats()["entries"] <= 1
        assert client.metrics()["cache_pruned"] >= 1

    def test_metrics_expose_pool_stats(self, start_server):
        server = start_server()
        client = server.client
        client.submit_and_wait(run_payload(0.02, label="pooled"),
                               timeout=120)
        metrics = client.metrics()
        assert metrics["pool_workers"] >= 1
        assert metrics["pool_tasks_completed"] >= 1

    def test_serve_config_validates_pool_idle_timeout(self, tmp_path):
        base = dict(port=0, cache_dir=str(tmp_path / "c"),
                    journal_dir=str(tmp_path / "j"), quiet=True)
        with pytest.raises(ValueError):
            ServeConfig(pool_idle_timeout=0.0, **base)
        with pytest.raises(ValueError):
            ServeConfig(pool_idle_timeout=-5.0, **base)
        assert ServeConfig(pool_idle_timeout=60.0,
                           **base).pool_idle_timeout == 60.0

    def test_serve_config_validates_new_knobs(self, tmp_path):
        base = dict(port=0, cache_dir=str(tmp_path / "c"),
                    journal_dir=str(tmp_path / "j"), quiet=True)
        with pytest.raises(ValueError):
            ServeConfig(job_ttl=0.0, **base)
        with pytest.raises(ValueError):
            ServeConfig(max_job_events=1, **base)
        with pytest.raises(ValueError):
            ServeConfig(cache_max_age=-1.0, **base)
        with pytest.raises(ValueError):
            ServeConfig(cache_max_entries=-1, **base)
        with pytest.raises(ValueError):
            ServeConfig(housekeeping_interval=0.0, **base)


# --- v2 API surface: envelopes, adapters, cancellation -----------------------

def raw_request(port, method, path, body=None):
    """One raw HTTP round-trip, returning (status, headers, parsed body) —
    used where the client would hide the wire shape we're asserting on."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return (response.status, dict(response.getheaders()),
                json.loads(data) if data else {})
    finally:
        conn.close()


class TestV2Envelope:
    def test_v2_errors_carry_the_uniform_envelope(self, start_server):
        server = start_server()
        port = server.app.port
        status, _, out = raw_request(port, "POST", "/v2/jobs",
                                     {"kind": "run", "spec": {"rate": 1}})
        assert status == 400
        err = out["error"]
        assert err["code"] == "invalid_job"
        assert "config" in err["message"]
        assert err["retryable"] is False
        status, _, out = raw_request(port, "GET", "/v2/jobs/nope")
        assert status == 404
        assert out["error"]["code"] == "job_not_found"

    def test_v1_adapter_flattens_errors_and_marks_deprecation(
            self, start_server):
        server = start_server()
        port = server.app.port
        status, headers, out = raw_request(port, "GET", "/v1/jobs/nope")
        assert status == 404
        assert isinstance(out["error"], str)  # legacy flat shape
        assert "Deprecation" in headers
        assert "/v2/" in headers["Deprecation"]
        # The native surface carries neither.
        status, headers, out = raw_request(port, "GET", "/v2/jobs")
        assert status == 200
        assert "Deprecation" not in headers

    def test_v1_and_v2_success_bodies_match(self, start_server):
        server = start_server()
        port = server.app.port
        _, _, accepted = raw_request(port, "POST", "/v1/jobs",
                                     estimate_payload(0.04))
        server.client.wait(accepted["id"], timeout=60)
        _, _, via_v1 = raw_request(port, "GET",
                                   f"/v1/jobs/{accepted['id']}")
        _, _, via_v2 = raw_request(port, "GET",
                                   f"/v2/jobs/{accepted['id']}")
        assert via_v1 == via_v2  # adapters only rewrite *error* bodies

    def test_client_raises_typed_exceptions(self, start_server):
        server = start_server()
        client = server.client
        with pytest.raises(JobNotFound) as not_found:
            client.status("ghost")
        assert not_found.value.status == 404
        assert not_found.value.code == "job_not_found"
        with pytest.raises(JobRejected) as rejected:
            client.submit({"kind": "run", "spec": {"rate": 0.03}})
        assert rejected.value.status == 400
        assert rejected.value.code == "invalid_job"


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, start_server):
        server = start_server(workers=1)
        client = server.client
        blocker = client.submit(run_payload(0.02, label="blocker"))
        wait_until_running(client, blocker["id"])
        queued = client.submit(run_payload(0.03, label="doomed"))
        assert queued["status"] == "queued"
        out = client.cancel(queued["id"])
        assert out["status"] == "cancelled"
        final = client.status(queued["id"])
        assert final["status"] == "cancelled"
        assert final["error"] == "cancelled by client"
        # Idempotent re-cancel; queue slot freed; journal entry cleared.
        assert client.cancel(queued["id"])["status"] == "cancelled"
        assert client.metrics()["cancelled_jobs"] == 1
        assert len(server.app.journal) <= 1  # only the blocker remains
        assert client.wait(blocker["id"], timeout=120)["status"] == "done"

    def test_cancel_queued_key_can_be_resubmitted(self, start_server):
        server = start_server(workers=1)
        client = server.client
        blocker = client.submit(run_payload(0.02, label="blocker"))
        wait_until_running(client, blocker["id"])
        first = client.submit(run_payload(0.03, label="again"))
        client.cancel(first["id"])
        # The cancelled key no longer dedups new submissions onto it.
        second = client.submit(run_payload(0.03, label="again"))
        assert second["id"] != first["id"]
        assert second["deduped"] is False
        assert client.wait(second["id"], timeout=120)["status"] == "done"

    def test_cancel_running_job_kills_workers_and_recovers(
            self, start_server):
        server = start_server(workers=1)
        client = server.client
        accepted = client.submit(experiment_payload(
            [0.02, 0.022, 0.024, 0.026, 0.028, 0.03], label="long"))
        wait_until_running(client, accepted["id"])
        out = client.cancel(accepted["id"])
        assert out["status"] in ("cancelling", "cancelled")
        final = client.wait(accepted["id"], timeout=60)
        assert final["status"] == "cancelled"
        assert client.metrics()["cancelled_jobs"] == 1
        # The pool respawned its killed workers: new work still runs.
        after = client.submit_and_wait(estimate_payload(0.06), timeout=60)
        assert after["status"] == "done"

    def test_cancel_unknown_and_finished_jobs(self, start_server):
        server = start_server()
        client = server.client
        with pytest.raises(JobNotFound):
            client.cancel("ghost")
        done = client.submit_and_wait(estimate_payload(0.05), timeout=60)
        with pytest.raises(JobRejected) as err:
            client.cancel(done["id"])
        assert err.value.status == 409
        assert err.value.code == "job_already_finished"

    def test_cancelled_stream_ends_with_done_event(self, start_server):
        server = start_server(workers=1)
        client = server.client
        blocker = client.submit(run_payload(0.02, label="blocker"))
        wait_until_running(client, blocker["id"])
        queued = client.submit(run_payload(0.035, label="streamed"))
        client.cancel(queued["id"])
        events = list(client.stream(queued["id"]))
        assert events[-1]["type"] == "done"
        assert events[-1]["status"] == "cancelled"
