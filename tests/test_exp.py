"""Tests for the experiment orchestrator: specs, caching, parallelism,
failure isolation and progress reporting."""

import dataclasses

import pytest

from repro.core.config import RunProtocol
from repro.core.orion import Orion
from repro.exp import (
    ExperimentSpec,
    ResultCache,
    RunPoint,
    TrafficSpec,
    run_experiment,
    run_points,
)
from repro.sim.engine import SimulationTimeout

from tests.conftest import small_config

FAST = RunProtocol(warmup_cycles=100, sample_packets=50)


def point(rate=0.02, traffic=None, protocol=FAST, **config_kwargs):
    return RunPoint(config=small_config("wormhole", **config_kwargs),
                    traffic=traffic or TrafficSpec.of("uniform"),
                    rate=rate, protocol=protocol)


class TestTrafficSpec:
    def test_build_matches_direct_construction(self, wormhole_config):
        from repro.sim.topology import topology_for
        from repro.sim.traffic import UniformRandomTraffic
        topo = topology_for(wormhole_config)
        built = TrafficSpec.of("uniform").build(topo, 0.05, seed=3)
        direct = UniformRandomTraffic(topo, 0.05, seed=3)
        assert [built.packets_at(c) for c in range(50)] == \
            [direct.packets_at(c) for c in range(50)]

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown traffic"):
            TrafficSpec.of("teleport")

    def test_missing_required_param_rejected_eagerly(self):
        with pytest.raises(ValueError, match="requires parameter"):
            TrafficSpec.of("broadcast")

    def test_describe_includes_params(self):
        assert TrafficSpec.of("broadcast", source=9).describe() == \
            "broadcast(source=9)"

    def test_is_picklable(self):
        import pickle
        spec = TrafficSpec.of("hotspot", hotspot=5)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestCacheKey:
    def test_stable_across_equal_points(self):
        assert point().cache_key() == point().cache_key()

    def test_differs_by_rate_protocol_traffic_config(self):
        base = point()
        assert base.cache_key() != point(rate=0.03).cache_key()
        assert base.cache_key() != \
            point(protocol=FAST.with_(seed=2)).cache_key()
        assert base.cache_key() != \
            point(traffic=TrafficSpec.of("transpose")).cache_key()
        assert base.cache_key() != point(flit_bits=32).cache_key()

    def test_label_is_cosmetic(self):
        assert point().cache_key() == \
            dataclasses.replace(point(), label="other").cache_key()


class TestExperimentSpec:
    def test_grid_expansion(self, wormhole_config):
        spec = ExperimentSpec.of(
            {"a": wormhole_config, "b": wormhole_config},
            ["uniform", "transpose"], [0.02, 0.05], seeds=[1, 2],
            protocol=FAST)
        points = spec.points()
        assert len(points) == spec.num_points == 2 * 2 * 2 * 2
        # Rates vary innermost: the first two points form one curve.
        assert [p.rate for p in points[:2]] == [0.02, 0.05]
        assert points[0].label == "a"
        assert points[0].protocol.seed == 1

    def test_empty_dimension_rejected(self, wormhole_config):
        with pytest.raises(ValueError):
            ExperimentSpec.of(wormhole_config, "uniform", [])

    def test_single_config_and_traffic_accepted(self, wormhole_config):
        spec = ExperimentSpec.of(wormhole_config, "uniform", [0.02])
        assert spec.points()[0].traffic.name == "uniform"


class TestSerialParallelParity:
    @pytest.mark.parametrize("traffic,params", [
        ("uniform", {}),
        ("transpose", {}),
        ("hotspot", {"hotspot": 5}),
    ])
    def test_bit_identical_points(self, traffic, params):
        orion = Orion(small_config("wormhole"))
        serial = orion.sweep_traffic(traffic, [0.02, 0.04], FAST, **params)
        parallel = orion.sweep_traffic(traffic, [0.02, 0.04], FAST,
                                       processes=4, **params)
        assert serial.rates == parallel.rates
        for s, p in zip(serial.points, parallel.points):
            assert p.avg_latency == s.avg_latency
            assert p.total_power_w == s.total_power_w
            assert p.throughput_flits_per_cycle == \
                s.throughput_flits_per_cycle
            assert p.breakdown_w == s.breakdown_w

    def test_parallel_matches_legacy_uniform_sweep(self):
        orion = Orion(small_config("vc"))
        legacy = orion.sweep_uniform([0.02, 0.05], FAST)
        parallel = orion.sweep_uniform([0.02, 0.05], FAST, processes=2)
        assert legacy.latencies == parallel.latencies
        assert legacy.powers == parallel.powers


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path, wormhole_config):
        spec = ExperimentSpec.of(wormhole_config, ["uniform", "transpose"],
                                 [0.02, 0.04], protocol=FAST)
        cache = ResultCache(tmp_path / "cache")
        seen = []
        first = run_experiment(spec, cache=cache,
                               progress=lambda p: seen.append(p))
        assert first.cache_hits == 0 and first.simulated == 4
        assert seen[-1].done == seen[-1].total == 4
        assert seen[-1].cycles_simulated > 0

        seen.clear()
        second = run_experiment(spec, cache=cache,
                                progress=lambda p: seen.append(p))
        # Zero simulations: every progress event reports a cache hit.
        assert second.cache_hits == 4 and second.simulated == 0
        assert all(p.outcome.from_cache for p in seen)
        assert seen[-1].cache_hit_rate == 1.0
        assert seen[-1].cycles_simulated == 0
        # ... and the numbers are bit-identical to the fresh run.
        for fresh, cached in zip(first.outcomes, second.outcomes):
            assert cached.avg_latency == fresh.avg_latency
            assert cached.total_power_w == fresh.total_power_w

    def test_progress_reports_hit_and_miss_counts(self, tmp_path,
                                                  wormhole_config):
        """Progress events and the result expose cache hits AND misses,
        so callers can report 'N hits / M misses' without bookkeeping."""
        spec = ExperimentSpec.of(wormhole_config, "uniform", [0.02, 0.04],
                                 protocol=FAST)
        cache = ResultCache(tmp_path / "cache")
        seen = []
        first = run_experiment(spec, cache=cache,
                               progress=lambda p: seen.append(p))
        assert seen[-1].cache_hits == 0
        assert seen[-1].cache_misses == 2
        assert first.cache_misses == 2 == first.simulated

        seen.clear()
        second = run_experiment(spec, cache=cache,
                                progress=lambda p: seen.append(p))
        assert seen[-1].cache_hits == 2
        assert seen[-1].cache_misses == 0
        assert second.cache_misses == 0
        # hits + misses always account for every finished point
        assert all(p.cache_hits + p.cache_misses == p.done for p in seen)

    def test_cache_accepts_directory_path(self, tmp_path, wormhole_config):
        spec = ExperimentSpec.of(wormhole_config, "uniform", [0.02],
                                 protocol=FAST)
        run_experiment(spec, cache=str(tmp_path / "c"))
        assert run_experiment(spec, cache=str(tmp_path / "c")).cache_hits == 1

    def test_keep_results_misses_summary_only_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        pts = [point()]
        run_points(pts, cache=cache)  # stores summary only
        again = run_points(pts, cache=cache, keep_results=True)
        assert not again[0].from_cache  # had to recompute for the result
        assert again[0].result is not None
        third = run_points(pts, cache=cache, keep_results=True)
        assert third[0].from_cache and third[0].result is not None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        pts = [point()]
        run_points(pts, cache=cache)
        entry = next((tmp_path / "cache").glob("objects/*/*/*.pkl"))
        entry.write_bytes(b"not a pickle")
        redone = run_points(pts, cache=cache)
        assert not redone[0].from_cache and redone[0].ok

    def test_corrupted_entry_logs_a_warning(self, tmp_path, caplog):
        import logging

        cache = ResultCache(tmp_path / "cache")
        pts = [point()]
        run_points(pts, cache=cache)
        entry = next((tmp_path / "cache").glob("objects/*/*/*.pkl"))
        entry.write_bytes(b"\x80\x04garbage")
        cache.misses = 0
        with caplog.at_level(logging.WARNING, logger="repro.exp.cache"):
            redone = run_points(pts, cache=cache)
        assert redone[0].ok and not redone[0].from_cache
        assert cache.misses == 1
        assert any("unreadable" in record.message
                   for record in caplog.records)

    def test_plain_miss_stays_silent(self, tmp_path, caplog):
        import logging

        cache = ResultCache(tmp_path / "cache")
        with caplog.at_level(logging.WARNING, logger="repro.exp.cache"):
            assert cache.load(point().cache_key()) is None
        assert not caplog.records

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_points([point(), point(rate=0.03)], cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_concurrent_writers_same_key(self, tmp_path):
        """Many writers racing on one key must not collide on tmp names
        or leave orphan tmp files — each write stays atomic."""
        import threading

        cache = ResultCache(tmp_path / "cache")
        outcome = run_points([point()], cache=None)[0]
        key = point().cache_key()
        errors = []

        def write():
            try:
                for _ in range(20):
                    cache.store(key, outcome)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert not list((tmp_path / "cache").glob("*/*.tmp*"))
        hit = cache.load(key)
        assert hit is not None and hit.ok

    def test_stale_tmp_files_swept_on_construction(self, tmp_path):
        import os
        import time

        root = tmp_path / "cache"
        cache = ResultCache(root)
        outcome = run_points([point()], cache=None)[0]
        cache.store(point().cache_key(), outcome)
        subdir = next(root.glob("*/"))
        old = subdir / "dead.pkl.tmpabc123"
        old.write_bytes(b"partial write from a crashed run")
        stale = time.time() - 7200
        os.utime(old, (stale, stale))
        young = subdir / "live.pkl.tmpdef456"
        young.write_bytes(b"a concurrent writer still owns this")

        ResultCache(root)  # construction sweeps
        assert not old.exists()
        assert young.exists()  # too young to be an orphan
        assert len(cache) == 1  # real entries untouched

    def test_interrupted_store_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("boom mid-write")

        with pytest.raises(RuntimeError, match="boom"):
            cache.store(point().cache_key(), Unpicklable())
        assert not list((tmp_path / "cache").glob("*/*.tmp*"))

    def test_telemetry_carried_and_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        proto = FAST.with_(telemetry_window=25)
        fresh = run_points([point(protocol=proto)], cache=cache)[0]
        assert fresh.telemetry is not None
        assert fresh.telemetry.num_windows > 0
        cached = run_points([point(protocol=proto)], cache=cache)[0]
        assert cached.from_cache
        assert cached.telemetry is not None
        assert cached.telemetry.event_totals() == \
            fresh.telemetry.event_totals()


class TestFailureIsolation:
    def test_timeout_recorded_without_killing_sweep(self):
        doomed = point(protocol=FAST.with_(max_cycles=30,
                                           sample_packets=5000))
        healthy = point()
        outcomes = run_points([healthy, doomed, point(rate=0.03)])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "SimulationTimeout" in outcomes[1].error
        assert outcomes[1].total_cycles > 0

    def test_on_error_raise_propagates(self):
        doomed = point(protocol=FAST.with_(max_cycles=30,
                                           sample_packets=5000))
        with pytest.raises(SimulationTimeout):
            run_points([doomed], on_error="raise")

    def test_failures_are_cached_too(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        doomed = point(protocol=FAST.with_(max_cycles=30,
                                           sample_packets=5000))
        run_points([doomed], cache=cache)
        again = run_points([doomed], cache=cache)
        assert again[0].from_cache and not again[0].ok

    def test_failed_point_renders_in_sweep_table(self):
        doomed = point(protocol=FAST.with_(max_cycles=30,
                                           sample_packets=5000))
        result = run_experiment([point(), doomed])
        sweep = next(iter(result.sweeps().values()))
        assert len(sweep.failed_points) == 1
        assert "FAILED" in sweep.table()
        assert sweep.saturation_rate() is None or True  # must not raise


class TestExperimentResult:
    def test_select_and_sweep_filters(self, wormhole_config, vc_config):
        spec = ExperimentSpec.of({"wh": wormhole_config, "vc": vc_config},
                                 "uniform", [0.02, 0.04], protocol=FAST)
        result = run_experiment(spec)
        assert len(result.select(label="wh")) == 2
        sweep = result.sweep(label="vc", sweep_label="vc-curve")
        assert sweep.label == "vc-curve"
        assert sweep.rates == [0.02, 0.04]
        with pytest.raises(ValueError):
            result.sweep(label="nope")

    def test_summary_mentions_counts(self, wormhole_config):
        result = run_experiment(
            ExperimentSpec.of(wormhole_config, "uniform", [0.02],
                              protocol=FAST))
        assert "1 points" in result.summary()
        assert "0 failed" in result.summary()

    def test_keep_results_through_pool(self):
        outcomes = run_points([point(), point(rate=0.03)], processes=2,
                              keep_results=True)
        assert all(o.result is not None for o in outcomes)
        assert all(o.result.accountant is not None for o in outcomes)

    def test_monitor_results_cross_process_boundary(self):
        monitored = point(protocol=FAST.with_(monitor=True))
        outcomes = run_points([monitored, point(rate=0.03,
                                                protocol=FAST.with_(
                                                    monitor=True))],
                              processes=2)
        assert all(o.result is not None for o in outcomes)
        assert outcomes[0].result.monitor.cycles > 0

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            run_points([])

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_points([point()], on_error="ignore")
