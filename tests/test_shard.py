"""Tests for the shard gateway (``repro serve --shards N``) and the
content-addressed result-cache layout.

Unit layers first — the consistent-hash ring (determinism, balance,
minimal remap) and the legacy→CAS cache migration — then integration
against a real two-shard fleet spawned as subprocesses: key-stable
routing, fleet-wide dedup, v1 adapter parity through the gateway, and
a SIGKILL failover test asserting no submitted job is ever lost.
"""

import os
import pickle
import re
import signal
import subprocess
import sys
import threading
import time
from collections import Counter

import pytest

from repro.exp.cache import CAS_DIR, ResultCache
from repro.exp.spec import CACHE_SCHEMA
from repro.serve import (
    GatewayConfig,
    JobNotFound,
    ServeClient,
    ShardRing,
)

from tests.test_serve import (
    estimate_payload,
    raw_request,
    run_payload,
)

BACKENDS = ("127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003")


# --- unit: consistent-hash ring ----------------------------------------------

class TestShardRing:
    def test_routing_is_deterministic_and_order_independent(self):
        keys = [f"key-{i}" for i in range(256)]
        ring = ShardRing(BACKENDS)
        shuffled = ShardRing(tuple(reversed(BACKENDS)))
        assert [ring.route(k) for k in keys] \
            == [shuffled.route(k) for k in keys]
        assert all(ring.route(k) in BACKENDS for k in keys)

    def test_keys_spread_over_every_backend(self):
        ring = ShardRing(BACKENDS)
        homes = Counter(ring.route(f"key-{i}") for i in range(3000))
        assert set(homes) == set(BACKENDS)
        # 64 virtual points per backend keep the spread far from
        # degenerate: nobody owns less than ~1/3 of a fair share.
        assert min(homes.values()) > 3000 / len(BACKENDS) / 3

    def test_backend_loss_only_remaps_its_own_keys(self):
        ring = ShardRing(BACKENDS)
        keys = [f"key-{i}" for i in range(2000)]
        before = {k: ring.route(k) for k in keys}
        victim = BACKENDS[0]
        survivors = [b for b in BACKENDS if b != victim]
        for key in keys:
            after = ring.route(key, live=survivors)
            if before[key] == victim:
                assert after in survivors  # rehomed somewhere live
            else:
                assert after == before[key]  # untouched

    def test_preference_starts_at_home_and_covers_all(self):
        ring = ShardRing(BACKENDS)
        for key in ("a", "b", "zz-9"):
            order = ring.preference(key)
            assert order[0] == ring.route(key)
            assert sorted(order) == sorted(BACKENDS)
            # The failover target is exactly the next preference.
            live = [b for b in BACKENDS if b != order[0]]
            assert ring.route(key, live=live) == order[1]

    def test_route_without_live_backends_is_none(self):
        ring = ShardRing(BACKENDS)
        assert ring.route("key", live=[]) is None
        assert ring.route("key", live=["10.0.0.1:1"]) is None

    def test_validation_and_dedup(self):
        with pytest.raises(ValueError):
            ShardRing(())
        with pytest.raises(ValueError):
            ShardRing(BACKENDS, replicas=0)
        assert ShardRing(BACKENDS + BACKENDS[:1]).backends == BACKENDS

    def test_gateway_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(backends=())
        with pytest.raises(ValueError):
            GatewayConfig(backends=BACKENDS, probe_interval=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(backends=BACKENDS, replicas=0)


# --- unit: legacy → CAS cache migration --------------------------------------

KEYS = ("aabbccdd00112233", "aabbeeff44556677", "99887766deadbeef")


def write_legacy_entry(root, key, outcome):
    """Plant one entry in the pre-CAS ``<k[:2]>/<key>.pkl`` layout."""
    path = root / key[:2] / f"{key}.pkl"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as f:
        pickle.dump({"schema": CACHE_SCHEMA, "outcome": outcome}, f)
    return path


class TestCacheMigration:
    def test_store_uses_cas_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = KEYS[0]
        cache.store(key, {"v": 1})
        assert (tmp_path / CAS_DIR / key[:2] / key[2:4]
                / f"{key}.pkl").exists()
        assert not (tmp_path / key[:2] / f"{key}.pkl").exists()
        assert cache.load(key) == {"v": 1}

    def test_load_migrates_legacy_entry_in_place(self, tmp_path):
        key = KEYS[0]
        legacy = write_legacy_entry(tmp_path, key, {"v": "old"})
        cache = ResultCache(tmp_path)
        assert cache.load(key) == {"v": "old"}
        assert not legacy.exists()  # moved, not copied
        assert (tmp_path / CAS_DIR / key[:2] / key[2:4]
                / f"{key}.pkl").exists()
        assert cache.migrated == 1
        assert cache.load(key) == {"v": "old"}  # now a plain CAS hit
        assert cache.hits == 2 and cache.misses == 0

    def test_bulk_migrate_is_complete_and_idempotent(self, tmp_path):
        for index, key in enumerate(KEYS):
            write_legacy_entry(tmp_path, key, {"v": index})
        cache = ResultCache(tmp_path)
        cache.store("ffee00112233", {"v": "native"})
        assert cache.stats()["legacy_entries"] == len(KEYS)
        assert cache.migrate() == len(KEYS)
        stats = cache.stats()
        assert stats["legacy_entries"] == 0
        assert stats["entries"] == len(KEYS) + 1
        assert cache.migrate() == 0  # nothing left to move
        for index, key in enumerate(KEYS):
            assert cache.load(key) == {"v": index}


# --- integration: a real two-shard fleet -------------------------------------

GATEWAY_RE = re.compile(r"gateway on http://[^\s:]+:(\d+)")


class Fleet:
    """One ``repro serve --shards N`` subprocess tree."""

    def __init__(self, tmp_path, shards=2, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--shards", str(shards), "--port", "0", "--workers", "1",
             "--cache-dir", str(tmp_path / "cache"),
             "--journal-dir", str(tmp_path / "journal"),
             "--probe-interval", "0.3", "--drain-timeout", "30",
             *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(tmp_path))
        self.port = None
        self.lines = []
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            self.lines.append(line.rstrip("\n"))
            match = GATEWAY_RE.search(line)
            if match:
                self.port = int(match.group(1))
                break
        if self.port is None:
            self.close(kill=True)
            raise RuntimeError(
                "gateway never came up:\n" + "\n".join(self.lines))
        # Keep draining stdout so shard logs can't fill the pipe.
        self._pump = threading.Thread(target=self._drain_stdout,
                                      daemon=True)
        self._pump.start()
        self.client = ServeClient(f"http://127.0.0.1:{self.port}",
                                  timeout=60.0)

    def _drain_stdout(self):
        for line in self.process.stdout:
            self.lines.append(line.rstrip("\n"))

    def shard_pids(self):
        health = self.client.health()
        return {backend: entry["pid"]
                for backend, entry in health["shards"].items()}

    def close(self, kill=False):
        if self.process.poll() is not None:
            return
        if kill:
            self.process.kill()
        else:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=120)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10)


@pytest.fixture
def fleet(tmp_path):
    fleets = []

    def start(**kwargs):
        one = Fleet(tmp_path, **kwargs)
        fleets.append(one)
        return one

    yield start
    for one in fleets:
        one.close()


class TestGatewayFleet:
    def test_routing_dedup_and_aggregation(self, fleet):
        gw = fleet()
        client = gw.client
        health = client.health()
        assert health["role"] == "gateway"
        assert health["shards_alive"] == 2
        assert health["shards_total"] == 2

        # Identical payloads land on the same home shard and coalesce
        # fleet-wide; the shard that took them is surfaced per-request.
        status, headers, first = raw_request(
            gw.port, "POST", "/v2/jobs", estimate_payload(0.042))
        assert status == 202
        home = headers["X-Repro-Shard"]
        status, headers, second = raw_request(
            gw.port, "POST", "/v2/jobs", estimate_payload(0.042))
        assert headers["X-Repro-Shard"] == home
        assert second["id"] == first["id"]
        assert second["deduped"] is True

        # Distinct keys spread and every one completes through the
        # gateway's proxied status endpoint.
        accepted = [client.submit(estimate_payload(0.01 + 0.002 * i))
                    for i in range(8)]
        for entry in accepted:
            assert client.wait(entry["id"], timeout=60)["status"] == "done"

        jobs = client.jobs()["jobs"]
        assert {job["shard"] for job in jobs} <= set(
            client.health()["shards"])
        metrics = client.metrics()
        assert metrics["role"] == "gateway"
        assert metrics["gw_submitted"] == 10
        assert metrics["gw_routed"] == 10  # dedup hits still route
        assert metrics["aggregate"]["accepted"] == 9
        assert metrics["aggregate"]["deduped"] == 1
        assert set(metrics["shards"]) == set(client.health()["shards"])

    def test_v1_adapter_and_typed_errors_through_gateway(self, fleet):
        gw = fleet()
        status, headers, out = raw_request(gw.port, "GET",
                                           "/v1/jobs/ghost")
        assert status == 404
        assert isinstance(out["error"], str)  # flattened for v1
        assert "/v2/" in headers["Deprecation"]
        status, headers, out = raw_request(gw.port, "GET",
                                           "/v2/jobs/ghost")
        assert status == 404
        assert out["error"]["code"] == "job_not_found"
        assert "Deprecation" not in headers
        with pytest.raises(JobNotFound):
            gw.client.status("ghost")

    @pytest.mark.chaos
    def test_shard_kill_mid_campaign_loses_no_jobs(self, fleet):
        gw = fleet()
        client = gw.client
        accepted = [client.submit(run_payload(0.02 + 0.003 * i,
                                              label=f"chaos{i}"))
                    for i in range(4)]
        accepted += [client.submit(estimate_payload(0.03 + 0.003 * i))
                     for i in range(4)]
        victim_backend, victim_pid = next(
            iter(gw.shard_pids().items()))
        os.kill(victim_pid, signal.SIGKILL)

        # Every accepted job still reaches "done": jobs homed on the
        # dead shard are resubmitted to the survivor and old ids keep
        # resolving through the gateway's alias table.
        for entry in accepted:
            final = client.wait(entry["id"], timeout=240)
            assert final["status"] == "done", (entry, final)

        metrics = client.metrics()
        assert metrics["gw_shards_down"] >= 1
        health = client.health()
        assert health["shards_alive"] == 1
        assert health["shards"][victim_backend]["alive"] is False

    def test_sigterm_drains_fleet_and_exits_zero(self, fleet):
        gw = fleet()
        accepted = gw.client.submit(run_payload(0.02, label="drain"))
        assert accepted["status"] in ("queued", "running")
        gw.close()
        assert gw.process.returncode == 0, "\n".join(gw.lines)
        out = "\n".join(gw.lines)
        assert "gateway: drain started" in out
        assert "gateway: drain complete, exiting 0" in out
