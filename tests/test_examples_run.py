"""Smoke tests: the example scripts must run end-to-end.

Only the fast examples run here (the figure-scale studies are exercised
by the benchmark suite); each must exit cleanly and print its headline
output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout, check=False)


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "E_flit" in proc.stdout
        assert "total power" in proc.stdout

    def test_standalone_power_models(self):
        proc = run_example("standalone_power_models.py")
        assert proc.returncode == 0, proc.stderr
        assert "Technology scaling" in proc.stdout
        assert "Arbiter types" in proc.stdout

    def test_module_assembly(self):
        proc = run_example("module_assembly.py")
        assert proc.returncode == 0, proc.stderr
        assert "buffer_write" in proc.stdout
        assert "delta 0.00e+00" in proc.stdout  # matches analytic E_flit

    def test_ring_fabric(self):
        proc = run_example("ring_fabric.py")
        assert proc.returncode == 0, proc.stderr
        assert "all delivered" in proc.stdout
        assert "True" in proc.stdout  # visits == hops + messages
