"""Unit tests for the clock-power extension."""

import pytest

from repro import Orion, preset
from repro.core import events as ev
from repro.power import ClockPower
from repro.tech import Technology


def tech(f=2e9):
    return Technology(0.1, vdd=1.2, frequency_hz=f)


class TestClockModel:
    def test_energy_is_full_swing_per_cycle(self):
        model = ClockPower(tech(), registered_bits=1000, area_um2=1e5)
        assert model.energy_per_cycle() == pytest.approx(
            model.clock_cap * 1.2 * 1.2)

    def test_power_scales_with_frequency(self):
        slow = ClockPower(tech(1e9), registered_bits=1000, area_um2=1e5)
        fast = ClockPower(tech(2e9), registered_bits=1000, area_um2=1e5)
        assert fast.power_watts() == pytest.approx(2 * slow.power_watts())

    def test_more_registers_more_cap(self):
        small = ClockPower(tech(), registered_bits=100, area_um2=1e5)
        big = ClockPower(tech(), registered_bits=10000, area_um2=1e5)
        assert big.clock_cap > small.clock_cap

    def test_larger_area_longer_tree(self):
        small = ClockPower(tech(), registered_bits=100, area_um2=1e4)
        big = ClockPower(tech(), registered_bits=100, area_um2=1e8)
        assert big.clock_cap > small.clock_cap

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockPower(tech(), registered_bits=-1, area_um2=1e5)
        with pytest.raises(ValueError):
            ClockPower(tech(), registered_bits=10, area_um2=-1.0)

    def test_describe(self):
        d = ClockPower(tech(), registered_bits=10, area_um2=1e4).describe()
        assert d["power_w"] > 0


class TestEndToEnd:
    def test_clock_adds_constant_component(self):
        base = preset("VC16")
        on = Orion(base.with_(include_clock=True)).run_uniform(
            0.03, warmup_cycles=150, sample_packets=60)
        off = Orion(base).run_uniform(0.03, warmup_cycles=150,
                                      sample_packets=60)
        assert on.power_breakdown_w()[ev.CLOCK] > 0
        assert off.power_breakdown_w()[ev.CLOCK] == 0.0
        assert on.total_power_w > off.total_power_w

    def test_clock_power_is_rate_independent(self):
        cfg = preset("VC16").with_(include_clock=True)
        slow = Orion(cfg).run_uniform(0.02, warmup_cycles=150,
                                      sample_packets=60)
        fast = Orion(cfg).run_uniform(0.08, warmup_cycles=150,
                                      sample_packets=60)
        assert slow.power_breakdown_w()[ev.CLOCK] == pytest.approx(
            fast.power_breakdown_w()[ev.CLOCK], rel=0.01)

    def test_central_router_clock_model_builds(self):
        cfg = preset("CB").with_(include_clock=True)
        result = Orion(cfg).run_uniform(0.02, warmup_cycles=150,
                                        sample_packets=60)
        assert result.power_breakdown_w()[ev.CLOCK] > 0
