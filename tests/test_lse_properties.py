"""Property-based tests for the component framework and delay model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay import (
    arbiter_delay_fo4,
    buffer_access_delay_fo4,
    crossbar_delay_fo4,
    inverter,
    nand,
    nor,
    path_delay_tau,
)
from repro.lse import Message, build_full_router, build_ring_network, ring_route


class TestLogicalEffortProperties:
    @given(st.integers(1, 8), st.floats(1.0, 64.0), st.floats(0.1, 64.0))
    @settings(max_examples=60)
    def test_path_delay_positive_and_monotone_in_effort(self, n, b, h):
        gates = [inverter()] * n
        base = path_delay_tau(gates, branching=b, electrical=h)
        more = path_delay_tau(gates, branching=b * 2, electrical=h)
        assert base > 0
        assert more > base

    @given(st.integers(1, 16))
    @settings(max_examples=30)
    def test_wider_gates_slower(self, fan_in):
        base = path_delay_tau([nand(fan_in)])
        wider = path_delay_tau([nand(fan_in + 1)])
        assert wider > base
        assert path_delay_tau([nor(fan_in + 1)]) > \
            path_delay_tau([nor(fan_in)])

    @given(st.integers(2, 64), st.integers(2, 64))
    @settings(max_examples=40)
    def test_router_function_delays_monotone(self, a, b):
        lo, hi = sorted((a, b))
        if lo == hi:
            return
        assert arbiter_delay_fo4(hi) > arbiter_delay_fo4(lo)
        assert crossbar_delay_fo4(5, hi * 8) >= crossbar_delay_fo4(
            5, lo * 8)
        assert buffer_access_delay_fo4(hi * 8, 32) >= \
            buffer_access_delay_fo4(lo * 8, 32)


class TestRingProperties:
    @given(st.integers(2, 6), st.data())
    @settings(max_examples=15, deadline=None)
    def test_any_ring_any_message_delivered(self, size, data):
        pairs = data.draw(st.lists(
            st.tuples(st.integers(0, size - 1),
                      st.integers(0, size - 1)),
            min_size=1, max_size=6))
        schedules = [[] for _ in range(size)]
        expected = []
        for k, (src, dst) in enumerate(pairs):
            if src == dst:
                continue
            schedules[src].append((k % 3, Message(
                payload=k, route=ring_route(src, dst, size))))
            expected.append((dst, k))
        system = build_ring_network(schedules)
        for _ in range(40 * size):
            system.step()
        got = []
        for r in range(size):
            for _, message in system.module(f"R{r}.Sink").received:
                got.append((r, message.payload))
        assert sorted(got) == sorted(expected)


class TestFullRouterProperties:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_schedules_fully_delivered(self, data):
        ports = data.draw(st.integers(2, 5))
        schedules = []
        total = 0
        for i in range(ports):
            n = data.draw(st.integers(0, 4))
            schedule = []
            for k in range(n):
                out = data.draw(st.integers(0, ports - 1))
                schedule.append((k, Message(payload=i * 100 + k,
                                            out_port=out)))
                total += 1
            schedules.append(schedule)
        system = build_full_router(schedules)
        for _ in range(20 + 6 * total):
            system.step()
        delivered = sum(len(system.module(f"Sink{o}").received)
                        for o in range(ports))
        assert delivered == total
