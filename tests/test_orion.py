"""Unit tests for the Orion facade."""

import pytest

from repro import Orion, preset
from repro.core.report import SweepResult

from tests.conftest import small_config


def orion(kind="wormhole", **kwargs):
    return Orion(small_config(kind, **kwargs))


class TestRuns:
    def test_run_uniform(self):
        result = orion().run_uniform(0.02, warmup_cycles=100,
                                     sample_packets=40)
        assert result.sample_packets == 40
        assert result.total_power_w > 0

    def test_run_broadcast(self):
        result = orion().run_broadcast(source=6, rate=0.15,
                                       warmup_cycles=100,
                                       sample_packets=40)
        assert result.sample_packets == 40
        # Only node 6 injects: its router sees every buffer write first.
        powers = result.node_power_w()
        assert powers[6] == max(powers)

    def test_collect_power_false(self):
        result = orion().run_uniform(0.02, warmup_cycles=50,
                                     sample_packets=20,
                                     collect_power=False)
        assert result.accountant is None


class TestSweep:
    def test_sweep_uniform_produces_curve(self):
        sweep = orion().sweep_uniform([0.01, 0.03], warmup_cycles=80,
                                      sample_packets=30, label="test")
        assert isinstance(sweep, SweepResult)
        assert sweep.rates == [0.01, 0.03]
        assert len(sweep.latencies) == 2
        assert all(p > 0 for p in sweep.powers)

    def test_power_rises_with_rate(self):
        sweep = orion().sweep_uniform([0.01, 0.05], warmup_cycles=100,
                                      sample_packets=60)
        assert sweep.points[1].total_power_w > sweep.points[0].total_power_w

    def test_sweep_rejects_empty_rates(self):
        with pytest.raises(ValueError):
            orion().sweep_uniform([])

    def test_keep_results(self):
        sweep = orion().sweep_uniform([0.01], warmup_cycles=50,
                                      sample_packets=20, keep_results=True)
        assert sweep.points[0].result is not None


class TestWalkthrough:
    def test_flit_energy_decomposition(self):
        """Section 3.3: E_flit = E_wrt + E_arb + E_read + E_xb + E_link."""
        energies = Orion(preset("WH64")).flit_energy_walkthrough()
        parts = ("E_wrt", "E_arb", "E_read", "E_xb", "E_link")
        assert set(parts) <= set(energies)
        assert energies["E_flit"] == pytest.approx(
            sum(energies[p] for p in parts))
        assert all(energies[p] > 0 for p in parts)

    def test_arbiter_is_smallest_term(self):
        energies = Orion(preset("WH64")).flit_energy_walkthrough()
        assert energies["E_arb"] == min(
            v for k, v in energies.items() if k != "E_flit")

    def test_power_models_standalone(self):
        binding = Orion(preset("VC16")).power_models()
        assert binding.buffer_model.read_energy() > 0
        assert binding.crossbar_model.traversal_energy() > 0
