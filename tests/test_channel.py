"""Unit tests for the inter-router channel."""

import pytest

from repro.sim.message import Packet
from repro.sim.routers.base import Channel


def flit():
    return Packet(packet_id=0, src=0, dst=1, length_flits=1,
                  creation_cycle=0, route=[4]).make_flits()[0]


class TestDataPath:
    def test_flit_round_trip(self):
        ch = Channel(0, 0, 1, 1)
        f = flit()
        ch.send_flit(f)
        assert ch.busy
        assert ch.take_flit() is f
        assert not ch.busy

    def test_empty_take_returns_none(self):
        assert Channel(0, 0, 1, 1).take_flit() is None

    def test_single_flit_bandwidth(self):
        """One flit per cycle: a second send before the take is a
        protocol violation."""
        ch = Channel(0, 0, 1, 1)
        ch.send_flit(flit())
        with pytest.raises(RuntimeError):
            ch.send_flit(flit())

    def test_take_clears_slot_for_next_cycle(self):
        ch = Channel(0, 0, 1, 1)
        ch.send_flit(flit())
        ch.take_flit()
        ch.send_flit(flit())  # no error


class TestCreditPath:
    def test_credits_drain_in_order(self):
        ch = Channel(0, 0, 1, 1)
        ch.send_credit(2)
        ch.send_credit(0)
        assert ch.take_credits() == [2, 0]
        assert ch.take_credits() == []

    def test_credits_and_data_are_independent(self):
        ch = Channel(0, 0, 1, 1)
        ch.send_flit(flit())
        ch.send_credit(1)
        assert ch.take_credits() == [1]
        assert ch.busy
