"""Behavioural tests for the speculative VC router (Peh-Dally)."""

import pytest

from repro import Orion, preset
from repro.delay import RouterDelayModel
from repro.sim.network import Network
from repro.sim.stats import zero_load_latency_estimate

from tests.conftest import small_config


def spec_config(**kwargs):
    return small_config("vc", **kwargs).with_router(kind="speculative_vc")


def deliver(network, src, dst, max_cycles=300):
    packet = network.create_packet(src=src, dst=dst, cycle=network.cycle)
    for _ in range(max_cycles):
        network.step()
        if packet.eject_cycle is not None:
            return packet
    raise AssertionError("packet not delivered")


class TestPipeline:
    def test_zero_load_latency_matches_two_stage_model(self):
        """Successful speculation collapses VA+SA into one stage: heads
        move at wormhole speed while keeping virtual channels."""
        network = Network(spec_config())
        topo = network.topo
        packet = deliver(network, topo.node_at(0, 0), topo.node_at(0, 2))
        expected = zero_load_latency_estimate(
            avg_hops=2, pipeline_stages=2,
            packet_length_flits=network.config.packet_length_flits)
        assert packet.latency == expected

    def test_one_cycle_per_hop_faster_than_plain_vc(self):
        plain = Network(small_config("vc"))
        spec = Network(spec_config())
        src, dst = (0, 0), (0, 2)
        plain_lat = deliver(plain, plain.topo.node_at(*src),
                            plain.topo.node_at(*dst)).latency
        spec_lat = deliver(spec, spec.topo.node_at(*src),
                           spec.topo.node_at(*dst)).latency
        assert plain_lat - spec_lat == 3  # one cycle per router visited


class TestCorrectness:
    def test_delivers_under_load_with_conservation(self):
        network = Network(spec_config())
        packets = []
        for i in range(40):
            src, dst = i % 16, (i * 5 + 3) % 16
            if src != dst:
                packets.append(network.create_packet(src, dst, 0))
        for _ in range(1200):
            network.step()
            network.audit()
        assert all(p.eject_cycle is not None for p in packets)

    def test_speculation_never_displaces_confirmed_requests(self):
        """Throughput under contention matches the plain VC router —
        speculation only fills otherwise idle crossbar slots."""
        def drain_cycles(kind_cfg):
            network = Network(kind_cfg)
            for i in range(1, 16):
                network.create_packet(src=i, dst=0, cycle=0)
            for cycle in range(4000):
                network.step()
                if network.packets_delivered == 15:
                    return cycle
            raise AssertionError("packets stuck")

        spec = drain_cycles(spec_config())
        plain = drain_cycles(small_config("vc"))
        assert spec <= plain

    def test_credit_accounting_survives_speculation(self):
        network = Network(spec_config(buffer_depth=2))
        topo = network.topo
        packets = [network.create_packet(src=topo.node_at(2, 0),
                                         dst=topo.node_at(2, 2), cycle=0)
                   for _ in range(6)]
        for _ in range(600):
            network.step()
            network.audit()
        assert all(p.eject_cycle is not None for p in packets)


class TestEndToEnd:
    def test_speculative_preset_variant_runs(self):
        cfg = preset("VC16").with_router(kind="speculative_vc")
        result = Orion(cfg).run_uniform(0.05, warmup_cycles=300,
                                        sample_packets=200)
        plain = Orion(preset("VC16")).run_uniform(0.05, warmup_cycles=300,
                                                  sample_packets=200)
        # Lower latency at equal offered load ...
        assert result.avg_latency < plain.avg_latency
        # ... at essentially unchanged power (same modules switching).
        assert result.total_power_w == pytest.approx(plain.total_power_w,
                                                     rel=0.10)

    def test_delay_model_reports_two_stages(self):
        cfg = preset("VC16").with_router(kind="speculative_vc")
        model = RouterDelayModel(cfg)
        assert model.pipeline_depth == 2
        # The merged stage is at least as slow as plain SA.
        plain = RouterDelayModel(preset("VC16"))
        assert model.delays.switch_allocation >= \
            plain.delays.switch_allocation
