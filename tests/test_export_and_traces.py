"""Unit tests for result export and trace file I/O."""

import csv
import json

import pytest

from repro.core.export import (
    result_to_dict,
    result_to_json,
    spatial_to_csv,
    sweep_rows,
    sweep_to_csv,
)
from repro.core.orion import Orion
from repro.core.report import SweepResult
from repro.sim.tracefile import (
    load_trace,
    save_trace,
    synthesize_trace,
    trace_traffic_from_file,
)
from repro.sim.topology import Torus
from repro.sim.traffic import TraceTraffic, UniformRandomTraffic

from tests.conftest import small_config


def quick_result():
    return Orion(small_config("wormhole")).run_uniform(
        0.03, warmup_cycles=100, sample_packets=40)


class TestResultExport:
    def test_dict_has_key_metrics(self):
        d = result_to_dict(quick_result())
        for key in ("avg_latency_cycles", "total_power_w",
                    "power_breakdown_w", "node_power_w",
                    "throughput_flits_per_cycle"):
            assert key in d
        assert len(d["node_power_w"]) == 16

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        result_to_json(quick_result(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["router_kind"] == "wormhole"
        assert loaded["sample_packets"] == 40

    def test_dict_without_power(self):
        result = Orion(small_config("wormhole")).run_uniform(
            0.03, warmup_cycles=100, sample_packets=40,
            collect_power=False)
        d = result_to_dict(result)
        assert "total_power_w" not in d


class TestSweepExport:
    def sweep(self):
        return Orion(small_config("wormhole")).sweep_uniform(
            [0.02, 0.05], warmup_cycles=100, sample_packets=40,
            label="test")

    def test_rows_sorted_by_rate(self):
        rows = sweep_rows(self.sweep())
        assert [r["rate"] for r in rows] == [0.02, 0.05]
        assert all(r["label"] == "test" for r in rows)
        assert "power_input_buffer_w" in rows[0]

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(self.sweep(), str(path))
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2
        assert float(rows[0]["rate"]) == 0.02

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_to_csv(SweepResult("empty"), str(tmp_path / "x.csv"))

    def test_spatial_csv(self, tmp_path):
        path = tmp_path / "spatial.csv"
        spatial_to_csv(quick_result(), str(path))
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 16
        assert rows[5]["x"] == "1" and rows[5]["y"] == "1"


class TestTraceFiles:
    def test_save_load_round_trip(self, tmp_path):
        records = [(0, 1, 2), (3, 4, 5), (3, 0, 9)]
        path = tmp_path / "trace.csv"
        save_trace(records, str(path))
        assert sorted(load_trace(str(path))) == sorted(records)

    def test_load_validates_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,from,to\n0,1,2\n")
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_load_validates_fields(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("cycle,src,dst\n0,1\n")
        with pytest.raises(ValueError):
            load_trace(str(path))
        path.write_text("cycle,src,dst\n0,one,2\n")
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert load_trace(str(path)) == []

    def test_synthesize_freezes_a_pattern(self):
        pattern = UniformRandomTraffic(Torus(4), 0.2, seed=4)
        records = synthesize_trace(pattern, 50)
        assert records
        assert all(0 <= c < 50 for c, _, _ in records)
        # Replaying the synthesized trace gives identical packets.
        pattern.reset(seed=4)
        direct = []
        for cycle in range(50):
            for src, dst in pattern.packets_at(cycle):
                direct.append((cycle, src, dst))
        assert records == direct

    def test_trace_traffic_from_file_end_to_end(self, tmp_path):
        from repro.sim.engine import Simulation
        path = tmp_path / "trace.csv"
        save_trace([(0, 0, 5), (1, 3, 9), (2, 15, 0)], str(path))
        cfg = small_config("vc")
        traffic = trace_traffic_from_file(Torus(4), str(path))
        result = Simulation(cfg, traffic, warmup_cycles=0,
                            sample_packets=3).run()
        assert result.packets_delivered == 3

    def test_synthesize_validates_cycles(self):
        with pytest.raises(ValueError):
            synthesize_trace(UniformRandomTraffic(Torus(4), 0.1), 0)

    def test_header_is_case_and_space_insensitive(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("Cycle, SRC , dst\n0,1,2\n")
        assert load_trace(str(path)) == [(0, 1, 2)]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("cycle,src,dst\n0,1,2\n\n3,4,5\n")
        assert load_trace(str(path)) == [(0, 1, 2), (3, 4, 5)]

    def test_header_only_file_gives_empty_trace(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("cycle,src,dst\n")
        assert load_trace(str(path)) == []

    def test_file_round_trip_preserves_replay(self, tmp_path):
        """save -> load -> TraceTraffic replays the exact records."""
        pattern = UniformRandomTraffic(Torus(4), 0.1, seed=11)
        records = synthesize_trace(pattern, 60)
        path = tmp_path / "trace.csv"
        save_trace(records, str(path))
        traffic = trace_traffic_from_file(Torus(4), str(path))
        replayed = []
        for cycle in range(60):
            for src, dst in traffic.packets_at(cycle):
                replayed.append((cycle, src, dst))
        assert sorted(replayed) == sorted(records)

    def test_synthesized_replay_simulates_identically(self):
        """A live pattern and its synthesized trace produce the same
        simulation: same packets at the same cycles, hence identical
        latency — the guarantee behind repeatable cross-configuration
        trace studies."""
        from repro.core.config import RunProtocol
        cfg = small_config("vc")
        protocol = RunProtocol(warmup_cycles=0, sample_packets=40,
                               collect_power=False)
        live = UniformRandomTraffic(Torus(4), 0.05, seed=7)
        # 400 traced cycles vastly outlasts the ~60 cycles the sampled
        # window needs, so both runs see identical injections.
        trace = TraceTraffic(Torus(4), synthesize_trace(live, 400))
        live.reset(seed=7)
        res_live = Orion(cfg).run(live, protocol)
        res_trace = Orion(cfg).run(trace, protocol)
        assert res_trace.packets_delivered == res_live.packets_delivered
        assert res_trace.avg_latency == res_live.avg_latency
        assert res_trace.measured_cycles == res_live.measured_cycles
