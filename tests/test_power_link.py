"""Unit tests for the link power models."""

import pytest

from repro.power import ChipToChipLinkPower, OnChipLinkPower
from repro.tech import Technology


def tech(f=2e9):
    return Technology(0.1, vdd=1.2, frequency_hz=f)


class TestOnChipLink:
    def test_reproduces_paper_link_capacitance(self):
        # 1.08 pF per 3 mm at 0.1 um (section 4.2).
        link = OnChipLinkPower(tech(), length_mm=3.0, width_bits=256)
        assert link.wire_cap_per_bit == pytest.approx(1.08e-12)

    def test_traversal_energy_average(self):
        link = OnChipLinkPower(tech(), length_mm=3.0, width_bits=256)
        assert link.traversal_energy() == pytest.approx(
            128 * link.bit_energy)

    def test_traversal_energy_tracks_hamming(self):
        link = OnChipLinkPower(tech(), length_mm=3.0, width_bits=8)
        assert link.traversal_energy(0xFF, 0xFF) == 0.0
        assert link.traversal_energy(0, 0xFF) == pytest.approx(
            8 * link.bit_energy)

    def test_traffic_sensitive_with_no_idle_cost(self):
        link = OnChipLinkPower(tech(), length_mm=3.0, width_bits=256)
        assert link.is_traffic_sensitive
        assert link.idle_energy_per_cycle() == 0.0

    def test_energy_linear_in_length(self):
        short = OnChipLinkPower(tech(), length_mm=1.5, width_bits=32)
        long = OnChipLinkPower(tech(), length_mm=3.0, width_bits=32)
        assert long.traversal_energy() == pytest.approx(
            2 * short.traversal_energy())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            OnChipLinkPower(tech(), length_mm=0.0, width_bits=32)
        with pytest.raises(ValueError):
            OnChipLinkPower(tech(), length_mm=3.0, width_bits=0)


class TestChipToChipLink:
    def test_constant_power_independent_of_traffic(self):
        link = ChipToChipLinkPower(tech(1e9), power_watts=3.0, width_bits=32)
        assert not link.is_traffic_sensitive
        assert link.traversal_energy() == 0.0
        assert link.traversal_energy(0, 0xFFFF) == 0.0

    def test_energy_per_cycle_is_power_over_frequency(self):
        link = ChipToChipLinkPower(tech(1e9), power_watts=3.0, width_bits=32)
        assert link.idle_energy_per_cycle() == pytest.approx(3.0 / 1e9)

    def test_integrates_back_to_rated_power(self):
        """One simulated second of idle energy equals the rated watts."""
        f = 1e9
        link = ChipToChipLinkPower(tech(f), power_watts=3.0, width_bits=32)
        total = link.idle_energy_per_cycle() * f
        assert total == pytest.approx(3.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            ChipToChipLinkPower(tech(), power_watts=-1.0, width_bits=32)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ChipToChipLinkPower(tech(), power_watts=3.0, width_bits=0)
