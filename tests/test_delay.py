"""Unit tests for the Peh-Dally-style router delay model."""

import pytest

from repro import preset
from repro.delay import (
    RouterDelayModel,
    arbiter_delay_fo4,
    buffer_access_delay_fo4,
    crossbar_delay_fo4,
    fo4_to_ps,
    inverter,
    mux,
    nand,
    nor,
    path_delay_tau,
    switch_allocation_delay_fo4,
    tau_to_fo4,
    vc_allocation_delay_fo4,
)


class TestLogicalEffort:
    def test_fo4_inverter_is_five_tau(self):
        # d = g*h + p = 1*4 + 1 = 5 tau = 1 FO4.
        d = path_delay_tau([inverter()], electrical=4.0)
        assert tau_to_fo4(d) == pytest.approx(1.0)

    def test_gate_efforts(self):
        assert nand(2).effort == pytest.approx(4 / 3)
        assert nor(2).effort == pytest.approx(5 / 3)
        assert mux(4).effort == 2.0
        assert nand(3).parasitic == 3.0

    def test_delay_grows_with_effort(self):
        base = path_delay_tau([inverter(), nand(2)])
        loaded = path_delay_tau([inverter(), nand(2)], electrical=8.0)
        branched = path_delay_tau([inverter(), nand(2)], branching=4.0)
        assert loaded > base
        assert branched > base

    def test_validation(self):
        with pytest.raises(ValueError):
            path_delay_tau([])
        with pytest.raises(ValueError):
            path_delay_tau([inverter()], branching=0.5)
        with pytest.raises(ValueError):
            path_delay_tau([inverter()], electrical=0.0)
        with pytest.raises(ValueError):
            nand(0)

    def test_fo4_ps_scaling(self):
        # An FO4 is ~36 ps at 0.1 um and halves with the feature size.
        assert fo4_to_ps(1.0, 0.1) == pytest.approx(36.0)
        assert fo4_to_ps(1.0, 0.05) == pytest.approx(18.0)
        with pytest.raises(ValueError):
            fo4_to_ps(1.0, 0.0)


class TestFunctionDelays:
    def test_arbiter_delay_grows_with_requesters(self):
        delays = [arbiter_delay_fo4(r) for r in (2, 4, 8, 16, 32)]
        assert delays == sorted(delays)

    def test_va_slower_than_sa(self):
        """VA arbitrates over (P-1)*V requesters, SA over at most P-1."""
        assert vc_allocation_delay_fo4(5, 8) > \
            switch_allocation_delay_fo4(5, 8)

    def test_sa_with_vcs_adds_a_stage(self):
        assert switch_allocation_delay_fo4(5, 4) > \
            switch_allocation_delay_fo4(5, 1)

    def test_crossbar_delay_grows_with_ports_and_width(self):
        assert crossbar_delay_fo4(8, 64) > crossbar_delay_fo4(4, 64)
        assert crossbar_delay_fo4(5, 256) > crossbar_delay_fo4(5, 32)

    def test_buffer_delay_grows_with_array(self):
        assert buffer_access_delay_fo4(256, 64) > \
            buffer_access_delay_fo4(16, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            arbiter_delay_fo4(0)
        with pytest.raises(ValueError):
            vc_allocation_delay_fo4(1, 2)
        with pytest.raises(ValueError):
            crossbar_delay_fo4(5, 0)
        with pytest.raises(ValueError):
            buffer_access_delay_fo4(0, 8)


class TestRouterDelayModel:
    def test_pipeline_depths_match_the_paper(self):
        """Section 4.2: VC routers fit a 3-stage pipeline, wormhole a
        2-stage one."""
        assert RouterDelayModel(preset("WH64")).pipeline_depth == 2
        assert RouterDelayModel(preset("VC16")).pipeline_depth == 3
        assert RouterDelayModel(preset("CB")).pipeline_depth == 2

    def test_wormhole_cycle_shorter_than_vc(self):
        wh = RouterDelayModel(preset("WH64"))
        vc = RouterDelayModel(preset("VC64"))
        assert wh.min_cycle_fo4() < vc.min_cycle_fo4()

    def test_xb_sustains_its_configured_1ghz(self):
        model = RouterDelayModel(preset("XB"))
        assert model.fits_frequency(1.0e9)

    def test_more_vcs_slow_the_allocator(self):
        vc16 = RouterDelayModel(preset("VC16"))
        vc64 = RouterDelayModel(preset("VC64"))
        assert vc64.delays.vc_allocation > vc16.delays.vc_allocation
        assert vc64.max_frequency_hz() < vc16.max_frequency_hz()

    def test_max_frequency_plausible_at_point_one_micron(self):
        for name in ("WH64", "VC16", "VC64", "CB", "XB"):
            f = RouterDelayModel(preset(name)).max_frequency_hz()
            assert 0.5e9 < f < 20e9, name

    def test_report_mentions_all_stages(self):
        report = RouterDelayModel(preset("VC16")).report()
        for token in ("VA", "SA", "ST", "GHz"):
            assert token in report
