"""Unit tests for the traffic patterns."""

import pytest

from repro.sim.topology import Torus
from repro.sim.traffic import (
    BitComplementTraffic,
    BroadcastTraffic,
    HotspotTraffic,
    NearestNeighborTraffic,
    TraceTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)


def topo():
    return Torus(4)


def drain(pattern, cycles):
    pairs = []
    for c in range(cycles):
        pairs.extend(pattern.packets_at(c))
    return pairs


class TestUniformRandom:
    def test_rate_respected(self):
        pattern = UniformRandomTraffic(topo(), rate=0.1, seed=3)
        pairs = drain(pattern, 5000)
        per_node_per_cycle = len(pairs) / (16 * 5000)
        assert per_node_per_cycle == pytest.approx(0.1, rel=0.1)

    def test_never_self_addressed(self):
        pattern = UniformRandomTraffic(topo(), rate=0.5, seed=3)
        assert all(src != dst for src, dst in drain(pattern, 500))

    def test_destinations_cover_network(self):
        pattern = UniformRandomTraffic(topo(), rate=0.5, seed=3)
        dsts = {dst for _, dst in drain(pattern, 2000)}
        assert dsts == set(range(16))

    def test_deterministic_for_seed(self):
        a = drain(UniformRandomTraffic(topo(), 0.2, seed=9), 200)
        b = drain(UniformRandomTraffic(topo(), 0.2, seed=9), 200)
        assert a == b

    def test_reset_restarts_stream(self):
        pattern = UniformRandomTraffic(topo(), 0.2, seed=9)
        first = drain(pattern, 100)
        pattern.reset(seed=9)
        assert drain(pattern, 100) == first

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(topo(), rate=1.5)
        with pytest.raises(ValueError):
            UniformRandomTraffic(topo(), rate=-0.1)


class TestBroadcast:
    def test_single_source(self):
        t = topo()
        source = t.node_at(1, 2)
        pattern = BroadcastTraffic(t, source, rate=0.2, seed=3)
        pairs = drain(pattern, 3000)
        assert all(src == source for src, _ in pairs)

    def test_destinations_swept_evenly(self):
        """Round-robin destinations: every other node gets an equal
        share (within one packet)."""
        t = topo()
        source = t.node_at(1, 2)
        pattern = BroadcastTraffic(t, source, rate=1.0, seed=3)
        pairs = drain(pattern, 15 * 10)
        counts = {}
        for _, dst in pairs:
            counts[dst] = counts.get(dst, 0) + 1
        assert source not in counts
        assert len(counts) == 15
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_total_rate_matches_uniform_workload(self):
        """Section 4.3 keeps total network injection equal: one node at
        0.2 versus 16 nodes at 0.2/16."""
        t = topo()
        broadcast = BroadcastTraffic(t, 0, rate=0.2, seed=3)
        uniform = UniformRandomTraffic(t, rate=0.2 / 16, seed=3)
        nb = len(drain(broadcast, 20000))
        nu = len(drain(uniform, 20000))
        assert nb == pytest.approx(nu, rel=0.1)

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            BroadcastTraffic(topo(), 99, rate=0.2)


class TestTranspose:
    def test_destination_is_transposed(self):
        t = topo()
        pattern = TransposeTraffic(t, rate=1.0, seed=3)
        for src, dst in drain(pattern, 10):
            sx, sy = t.coords(src)
            assert t.coords(dst) == (sy, sx)

    def test_diagonal_nodes_silent(self):
        t = topo()
        pattern = TransposeTraffic(t, rate=1.0, seed=3)
        srcs = {src for src, _ in drain(pattern, 50)}
        diagonal = {t.node_at(i, i) for i in range(4)}
        assert srcs.isdisjoint(diagonal)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            TransposeTraffic(Torus(4, 2), rate=0.5)


class TestBitComplement:
    def test_destination_is_complement(self):
        t = topo()
        pattern = BitComplementTraffic(t, rate=1.0, seed=3)
        for src, dst in drain(pattern, 10):
            sx, sy = t.coords(src)
            assert t.coords(dst) == (3 - sx, 3 - sy)


class TestHotspot:
    def test_hotspot_receives_extra_share(self):
        t = topo()
        pattern = HotspotTraffic(t, rate=0.5, hotspot=5, hot_fraction=0.5,
                                 seed=3)
        pairs = drain(pattern, 3000)
        to_hot = sum(1 for _, dst in pairs if dst == 5)
        assert to_hot / len(pairs) > 0.3

    def test_hotspot_never_sends_to_itself(self):
        pattern = HotspotTraffic(topo(), rate=0.9, hotspot=5,
                                 hot_fraction=1.0, seed=3)
        assert all(src != dst for src, dst in drain(pattern, 300))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            HotspotTraffic(topo(), rate=0.5, hotspot=5, hot_fraction=1.5)


class TestNearestNeighbor:
    def test_distance_one_only(self):
        t = topo()
        pattern = NearestNeighborTraffic(t, rate=0.8, seed=3)
        for src, dst in drain(pattern, 100):
            assert t.manhattan_distance(src, dst) == 1


class TestTrace:
    def test_replays_exactly(self):
        trace = [(0, 1, 2), (0, 3, 4), (5, 2, 9)]
        pattern = TraceTraffic(topo(), trace)
        assert pattern.packets_at(0) == [(1, 2), (3, 4)]
        assert pattern.packets_at(1) == []
        assert pattern.packets_at(5) == [(2, 9)]
        assert pattern.last_cycle == 5

    def test_empty_trace(self):
        pattern = TraceTraffic(topo(), [])
        assert pattern.packets_at(0) == []
        assert pattern.last_cycle == 0

    def test_validates_records(self):
        with pytest.raises(ValueError):
            TraceTraffic(topo(), [(-1, 0, 1)])
        with pytest.raises(ValueError):
            TraceTraffic(topo(), [(0, 3, 3)])
        with pytest.raises(ValueError):
            TraceTraffic(topo(), [(0, 0, 99)])
