"""Chaos suite: orchestrator resilience under misbehaving workers.

Marked ``chaos`` so CI can exercise it standalone (``pytest -m chaos``).
Covers crash capture, bounded retry, per-point wall-clock timeouts and
hard worker death — the failure modes ``run_points`` must survive
without losing the rest of the sweep.
"""

import multiprocessing
import os

import pytest

from repro.core.config import RunProtocol
from repro.exp import RunPoint, TrafficSpec, run_points
from repro.sim.traffic import (
    TRAFFIC_REGISTRY,
    TrafficParam,
    UniformRandomTraffic,
    register_traffic,
)

from tests.conftest import small_config

pytestmark = pytest.mark.chaos

FAST = RunProtocol(warmup_cycles=100, sample_packets=40)


class _CrashingTraffic(UniformRandomTraffic):
    """Raises on construction: models a worker dying unexpectedly."""

    def __init__(self, topo, rate, seed=1):
        raise RuntimeError("chaos: worker crash")


class _FlakyOnceTraffic(UniformRandomTraffic):
    """Crashes on first construction, succeeds after: the ``marker``
    file records that the first attempt already burned."""

    def __init__(self, topo, rate, seed=1, marker=""):
        if marker and not os.path.exists(marker):
            open(marker, "w").close()
            raise RuntimeError("chaos: flaky failure")
        super().__init__(topo, rate, seed=seed)


class _ExitingTraffic(UniformRandomTraffic):
    """Kills the worker process outright — no exception to catch."""

    def __init__(self, topo, rate, seed=1):
        os._exit(3)


@pytest.fixture
def chaos_traffic():
    """Register test-only traffic kinds for one test, then unregister
    so the global registry stays clean for the rest of the suite."""
    registered = []

    def add(name, factory, params=()):
        register_traffic(name, factory, params=params,
                         description="chaos test pattern")
        registered.append(name)
        return name

    yield add
    for name in registered:
        TRAFFIC_REGISTRY.pop(name, None)


def point(traffic=None, rate=0.02, protocol=FAST):
    return RunPoint(config=small_config("wormhole"),
                    traffic=traffic or TrafficSpec.of("uniform"),
                    rate=rate, protocol=protocol)


class TestCrashCapture:
    def test_crash_recorded_and_sweep_continues(self, chaos_traffic):
        chaos_traffic("chaos_crash", _CrashingTraffic)
        pts = [point(), point(TrafficSpec.of("chaos_crash")),
               point(rate=0.03)]
        outcomes = run_points(pts)
        assert [o.status for o in outcomes] == ["ok", "crashed", "ok"]
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "RuntimeError: chaos: worker crash" in outcomes[1].error
        assert outcomes[1].attempts == 1
        assert outcomes[1].result is None

    def test_crash_propagates_with_on_error_raise(self, chaos_traffic):
        chaos_traffic("chaos_crash", _CrashingTraffic)
        with pytest.raises(RuntimeError, match="chaos"):
            run_points([point(TrafficSpec.of("chaos_crash"))],
                       on_error="raise")


class TestRetries:
    def test_retry_recovers_flaky_worker(self, chaos_traffic, tmp_path):
        chaos_traffic("chaos_flaky", _FlakyOnceTraffic,
                      params=(TrafficParam("marker", str, default=""),))
        spec = TrafficSpec.of("chaos_flaky",
                              marker=str(tmp_path / "burned"))
        outcome = run_points([point(spec)], retries=1,
                             retry_backoff=0.0)[0]
        assert outcome.ok and outcome.status == "ok"
        assert outcome.attempts == 2

    def test_retries_exhausted_record_crash(self, chaos_traffic):
        chaos_traffic("chaos_crash", _CrashingTraffic)
        outcome = run_points([point(TrafficSpec.of("chaos_crash"))],
                             retries=2, retry_backoff=0.0)[0]
        assert outcome.status == "crashed"
        assert outcome.attempts == 3

    def test_deterministic_failures_not_retried(self):
        # A SimulationTimeout is the point's deterministic verdict, not
        # a worker crash: retrying it would burn time for nothing.
        doomed = point(protocol=FAST.with_(max_cycles=30,
                                           sample_packets=5000))
        outcome = run_points([doomed], retries=3, retry_backoff=0.0)[0]
        assert not outcome.ok and outcome.status == "max_cycles"
        assert outcome.attempts == 1

    @pytest.mark.parametrize("kwargs", [dict(retries=-1),
                                        dict(retry_backoff=-0.5),
                                        dict(point_timeout=0.0)])
    def test_invalid_resilience_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_points([point()], **kwargs)


class TestPointTimeout:
    def test_runaway_point_terminated(self):
        runaway = point(protocol=FAST.with_(sample_packets=2_000_000,
                                            max_cycles=50_000_000))
        outcomes = run_points([point(), runaway, point(rate=0.03)],
                              point_timeout=0.5)
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]
        assert "exceeded" in outcomes[1].error
        assert outcomes[1].wall_seconds == pytest.approx(0.5)

    def test_fast_points_unaffected_by_timeout(self):
        outcomes = run_points([point(), point(rate=0.03)],
                              point_timeout=60.0)
        assert all(o.ok and o.status == "ok" for o in outcomes)
        assert all(o.result is None for o in outcomes)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="test traffic kinds only reach workers via fork")
    def test_dead_worker_recorded_with_exit_code(self, chaos_traffic):
        chaos_traffic("chaos_exit", _ExitingTraffic)
        outcomes = run_points([point(TrafficSpec.of("chaos_exit")),
                               point()], point_timeout=60.0)
        assert outcomes[0].status == "crashed"
        assert "exited with code 3" in outcomes[0].error
        assert outcomes[1].ok
