"""Behavioural tests for the wormhole router."""

import pytest

from repro.sim.network import Network
from repro.sim.stats import zero_load_latency_estimate
from repro.sim.topology import LOCAL

from tests.conftest import small_config


def net(**kwargs):
    return Network(small_config("wormhole", **kwargs))


def deliver(network, src, dst, max_cycles=200):
    packet = network.create_packet(src=src, dst=dst, cycle=network.cycle)
    start = network.cycle
    for _ in range(max_cycles):
        network.step()
        if packet.eject_cycle is not None:
            return packet
    raise AssertionError("packet not delivered")


class TestPipelineTiming:
    def test_zero_load_latency_matches_two_stage_model(self):
        """Head pays SA+ST+link per hop plus final SA+ST; the tail
        follows len-1 cycles behind — the paper's 2-stage wormhole
        pipeline [15]."""
        network = net()
        topo = network.topo
        src = topo.node_at(0, 0)
        dst = topo.node_at(0, 2)  # 2 hops
        packet = deliver(network, src, dst)
        expected = zero_load_latency_estimate(
            avg_hops=2, pipeline_stages=2,
            packet_length_flits=network.config.packet_length_flits)
        assert packet.latency == expected

    def test_longer_routes_cost_three_cycles_per_hop(self):
        network = net()
        topo = network.topo
        one = deliver(network, topo.node_at(0, 0), topo.node_at(0, 1))
        two = deliver(network, topo.node_at(0, 0), topo.node_at(0, 2))
        assert two.latency - one.latency == 3


class TestConnections:
    def test_connection_held_until_tail(self):
        """While a packet streams, its output port is owned by the input
        and released exactly when the tail traverses."""
        network = net()
        src = network.topo.node_at(0, 0)
        network.create_packet(src=src, dst=network.topo.node_at(0, 2),
                              cycle=0)
        router = network.routers[src]
        owned_cycles = 0
        for _ in range(40):
            network.step()
            if router.out_owner[0] is not None:  # NORTH output owned
                owned_cycles += 1
        # 3 flits stream => owned for ~3 cycles, then released.
        assert owned_cycles >= 3
        assert router.out_owner[0] is None

    def test_no_interleaving_on_one_output(self):
        """Two packets to the same output port serialize whole-packet:
        their flits never interleave on the link."""
        network = net()
        topo = network.topo
        src_a = topo.node_at(0, 0)
        src_b = topo.node_at(1, 0)
        # Both converge at (1, 1) then go north to (1, 2):
        dst = topo.node_at(1, 2)
        seen = []
        mid = topo.node_at(1, 1)
        original_accept = network.routers[topo.node_at(1, 2)].accept_flit

        def spy(port, flit):
            seen.append(flit.packet.packet_id)
            original_accept(port, flit)

        network.routers[topo.node_at(1, 2)].accept_flit = spy
        network.create_packet(src=src_a, dst=dst, cycle=0)
        network.create_packet(src=src_b, dst=dst, cycle=0)
        for _ in range(100):
            network.step()
        assert len(seen) == 6
        # Whole packets: first three ids equal, last three equal.
        assert len(set(seen[:3])) == 1
        assert len(set(seen[3:])) == 1


class TestCredits:
    def test_backpressure_blocks_at_full_buffer(self):
        """With a blocked downstream FIFO the sender stops exactly at
        zero credits — never overflows (the accept_flit guard would
        raise)."""
        network = net(buffer_depth=2)
        topo = network.topo
        # A long packet stream into one column saturates buffers.
        for _ in range(6):
            network.create_packet(src=topo.node_at(2, 0),
                                  dst=topo.node_at(2, 2), cycle=0)
        for _ in range(300):
            network.step()
            network.audit()
        assert network.packets_delivered == 6

    def test_credits_restored_after_drain(self):
        network = net()
        src = network.topo.node_at(0, 0)
        deliver(network, src, network.topo.node_at(0, 2))
        for _ in range(20):
            network.step()
        router = network.routers[src]
        depth = network.config.router.buffer_depth
        for port, credits in enumerate(router.out_credits):
            if router.out_channels[port] is not None:
                assert credits == depth


class TestArbitration:
    def test_contending_inputs_share_output(self):
        """Four sources all crossing one column: everything still
        delivers (fair arbitration, no starvation)."""
        network = net()
        topo = network.topo
        packets = []
        for x in range(4):
            for _ in range(2):
                packets.append(network.create_packet(
                    src=topo.node_at(x, 0), dst=topo.node_at(x, 2),
                    cycle=network.cycle))
        for _ in range(400):
            network.step()
        assert all(p.eject_cycle is not None for p in packets)


class TestInjectionPort:
    def test_injection_space_tracks_local_fifo(self):
        network = net(buffer_depth=4)
        router = network.routers[0]
        assert router.injection_space() == 4
        network.create_packet(src=0, dst=5, cycle=0)
        network.step()
        assert router.injection_space() <= 4
