"""Property-based tests over the configuration space: any valid config
must build, simulate a little traffic, and keep its invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    LinkConfig,
    NetworkConfig,
    RouterConfig,
    TechConfig,
)
from repro.core.events import EnergyAccountant
from repro.core.power_binding import PowerBinding
from repro.delay import RouterDelayModel
from repro.sim.network import Network

router_kinds = st.sampled_from(["wormhole", "vc", "speculative_vc",
                                "central"])
arbiter_types = st.sampled_from(["matrix", "round_robin", "queuing"])
crossbar_types = st.sampled_from(["matrix", "mux_tree"])
features = st.sampled_from([0.25, 0.18, 0.13, 0.10, 0.07])


@st.composite
def router_configs(draw):
    kind = draw(router_kinds)
    num_vcs = draw(st.integers(2, 4)) if kind in ("vc", "speculative_vc") \
        else 1
    return RouterConfig(
        kind=kind,
        flit_bits=draw(st.sampled_from([8, 16, 32, 64])),
        buffer_depth=draw(st.integers(2, 8)),
        num_vcs=num_vcs,
        arbiter_type=draw(arbiter_types),
        crossbar_type=draw(crossbar_types),
        cb_rows=draw(st.integers(8, 64)),
        cb_banks=draw(st.integers(1, 4)),
    )


@st.composite
def network_configs(draw):
    return NetworkConfig(
        topology=draw(st.sampled_from(["torus", "mesh"])),
        width=4, height=4,
        router=draw(router_configs()),
        link=LinkConfig(kind=draw(st.sampled_from(["on_chip",
                                                   "chip_to_chip"]))),
        tech=TechConfig(feature_size_um=draw(features), vdd=1.2,
                        frequency_hz=1e9),
        packet_length_flits=draw(st.integers(1, 4)),
        activity_mode=draw(st.sampled_from(["average", "data"])),
    )


class TestAnyConfigSimulates:
    @settings(max_examples=25, deadline=None)
    @given(network_configs(), st.data())
    def test_traffic_flows_and_energy_is_finite(self, cfg, data):
        accountant = EnergyAccountant(cfg.num_nodes)
        net = Network(cfg, PowerBinding(cfg, accountant))
        packets = []
        for _ in range(data.draw(st.integers(1, 6))):
            src = data.draw(st.integers(0, 15))
            dst = data.draw(st.integers(0, 15))
            if src != dst:
                packets.append(net.create_packet(src, dst, net.cycle))
        for _ in range(400):
            net.step()
            if all(p.eject_cycle is not None for p in packets):
                break
        net.audit()
        assert all(p.eject_cycle is not None for p in packets)
        total = accountant.total_energy()
        assert total >= 0.0
        if packets:
            assert total > 0.0

    @settings(max_examples=25, deadline=None)
    @given(network_configs())
    def test_delay_model_accepts_any_config(self, cfg):
        model = RouterDelayModel(cfg)
        assert model.pipeline_depth in (2, 3)
        assert model.min_cycle_fo4() > 0
        assert 0 < model.max_frequency_hz() < 1e12

    @settings(max_examples=25, deadline=None)
    @given(network_configs())
    def test_binding_energies_are_positive(self, cfg):
        binding = PowerBinding(cfg, EnergyAccountant(cfg.num_nodes))
        assert binding.buffer_model.read_energy() > 0
        assert binding.buffer_model.write_energy() > 0
        assert binding.crossbar_model.traversal_energy() > 0
        assert binding.switch_arbiter_model.arbitration_energy(2) > 0
        if cfg.router.kind == "central":
            assert binding.central_model.read_energy() > 0
