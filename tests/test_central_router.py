"""Behavioural tests for the central-buffered router."""

import pytest

from repro.sim.network import Network
from repro.sim.stats import zero_load_latency_estimate
from repro.sim.topology import LOCAL

from tests.conftest import small_config


def net(**kwargs):
    return Network(small_config("central", **kwargs))


def deliver(network, src, dst, max_cycles=300):
    packet = network.create_packet(src=src, dst=dst, cycle=network.cycle)
    for _ in range(max_cycles):
        network.step()
        if packet.eject_cycle is not None:
            return packet
    raise AssertionError("packet not delivered")


class TestPipelineTiming:
    def test_zero_load_latency_matches_vc_depth(self):
        """CB and VC routers are both three cycles deep at zero load,
        keeping the section 4.4 comparison fair."""
        network = net()
        topo = network.topo
        packet = deliver(network, topo.node_at(0, 0), topo.node_at(0, 2))
        expected = zero_load_latency_estimate(
            avg_hops=2, pipeline_stages=3,
            packet_length_flits=network.config.packet_length_flits)
        assert packet.latency == expected


class TestFabricPortLimits:
    def test_at_most_read_ports_reads_per_cycle(self):
        network = net(cb_read_ports=2, cb_write_ports=2)
        topo = network.topo
        # Five flows converge on one router from different inputs.
        mid = topo.node_at(1, 1)
        for x in range(4):
            for _ in range(3):
                src = topo.node_at(1, (1 + 1) % 4)
        # Direct check: the router never grants more than its port count.
        router = network.routers[mid]
        for i in range(16):
            if i != mid:
                network.create_packet(src=i, dst=mid, cycle=0)
        max_reads, max_writes = 0, 0
        for _ in range(300):
            network.step()
            max_reads = max(max_reads, len(router._read_grants))
            max_writes = max(max_writes, len(router._write_grants))
        assert max_reads <= 2
        assert max_writes <= 2
        assert network.packets_delivered == 15

    def test_single_port_fabric_is_slower(self):
        """Fewer fabric ports -> lower throughput under load (the
        Figure 7(a) mechanism)."""
        def drain_time(read_ports, write_ports):
            network = net(cb_read_ports=read_ports,
                          cb_write_ports=write_ports)
            for i in range(1, 16):
                network.create_packet(src=i, dst=0, cycle=0)
            for cycle in range(4000):
                network.step()
                if network.packets_delivered == 15:
                    return cycle
            raise AssertionError("packets stuck")

        assert drain_time(1, 1) > drain_time(2, 2)


class TestHeadOfLine:
    def test_no_hol_blocking_through_central_buffer(self):
        """Section 4.4: in a CB router, "packets from the same input port
        need not line up behind one another if they are destined for
        different output ports" — unlike a wormhole input FIFO.

        Packet A heads for a contended output of the middle router;
        packet B follows A through the same input but exits a free
        output.  In the CB network B's delivery is decoupled from A's;
        in a wormhole network B waits for A's tail.
        """
        def scenario(kind):
            extra = {"cb_rows": 4, "cb_banks": 2} if kind == "central" \
                else {}
            network = Network(small_config(kind, buffer_depth=4, **extra))
            topo = network.topo
            contested = topo.node_at(0, 2)
            # Converging streams oversubscribe the contested node's
            # ejection port, backing traffic up into its neighbours.
            for source in [(1, 2), (2, 2), (3, 2), (0, 3)]:
                for _ in range(6):
                    network.create_packet(src=topo.node_at(*source),
                                          dst=contested, cycle=0)
            for _ in range(15):
                network.step()
            a = network.create_packet(src=topo.node_at(0, 0),
                                      dst=contested, cycle=network.cycle)
            b = network.create_packet(src=topo.node_at(0, 0),
                                      dst=topo.node_at(1, 1),
                                      cycle=network.cycle)
            for _ in range(1500):
                network.step()
            assert a.eject_cycle is not None
            assert b.eject_cycle is not None
            return a, b

        cb_a, cb_b = scenario("central")
        wh_a, wh_b = scenario("wormhole")
        # Wormhole: B is stuck behind A in the shared input FIFO, so it
        # ejects after A despite A's congestion.
        assert wh_b.eject_cycle > wh_a.eject_cycle
        # Central buffer: B overtakes A inside the router.
        assert cb_b.eject_cycle < cb_a.eject_cycle

    def test_packets_to_same_output_stay_whole(self):
        """Per-output queues serialize packets: flits never interleave
        on a link."""
        network = net()
        topo = network.topo
        dst = topo.node_at(1, 2)
        seen = []
        router = network.routers[dst]
        original = router.accept_flit

        def spy(port, flit):
            seen.append(flit.packet.packet_id)
            original(port, flit)

        router.accept_flit = spy
        network.create_packet(src=topo.node_at(0, 0), dst=dst, cycle=0)
        network.create_packet(src=topo.node_at(1, 0), dst=dst, cycle=0)
        for _ in range(200):
            network.step()
        assert len(seen) == 6
        assert len(set(seen[:3])) == 1
        assert len(set(seen[3:])) == 1


class TestCapacity:
    def test_central_buffer_occupancy_bounded(self):
        network = net(cb_rows=4, cb_banks=2)  # tiny: 8 flits capacity
        for i in range(1, 16):
            network.create_packet(src=i, dst=0, cycle=0)
        router_max = 0
        for _ in range(600):
            network.step()
            network.audit()
            router_max = max(router_max,
                             max(r.occupancy for r in network.routers))
        assert router_max <= 8
        assert network.packets_delivered == 15

    def test_credit_backpressure(self):
        network = net(buffer_depth=2)
        topo = network.topo
        packets = [network.create_packet(src=topo.node_at(2, 0),
                                         dst=topo.node_at(2, 2), cycle=0)
                   for _ in range(5)]
        for _ in range(500):
            network.step()
            network.audit()
        assert all(p.eject_cycle is not None for p in packets)
