"""Property-based tests (hypothesis) on simulator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import Network
from repro.sim.routing import dimension_ordered_route, route_hops, route_nodes
from repro.sim.topology import Mesh, Torus

from tests.conftest import small_config

kinds = st.sampled_from(["wormhole", "vc", "central"])
nodes16 = st.integers(min_value=0, max_value=15)


class TestRoutingProperties:
    @given(st.integers(2, 8), st.integers(2, 8), st.data())
    @settings(max_examples=60)
    def test_routes_minimal_and_terminate_any_torus(self, w, h, data):
        topo = Torus(w, h)
        src = data.draw(st.integers(0, topo.num_nodes - 1))
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        if src == dst:
            return
        tie = data.draw(st.sampled_from(["avoid_wrap", "even"]))
        route = dimension_ordered_route(topo, src, dst, tie_break=tie)
        assert route_hops(route) == topo.manhattan_distance(src, dst)
        assert route_nodes(topo, src, route)[-1] == dst

    @given(st.integers(2, 8), st.integers(2, 8), st.data())
    @settings(max_examples=60)
    def test_routes_minimal_any_mesh(self, w, h, data):
        topo = Mesh(w, h)
        src = data.draw(st.integers(0, topo.num_nodes - 1))
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        if src == dst:
            return
        route = dimension_ordered_route(topo, src, dst)
        assert route_hops(route) == topo.manhattan_distance(src, dst)

    @given(st.integers(2, 8), st.integers(2, 8), st.data())
    @settings(max_examples=60)
    def test_dor_never_revisits_a_node(self, w, h, data):
        topo = Torus(w, h)
        src = data.draw(st.integers(0, topo.num_nodes - 1))
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        if src == dst:
            return
        route = dimension_ordered_route(topo, src, dst)
        nodes = route_nodes(topo, src, route)
        assert len(nodes) == len(set(nodes))


class TestTransportProperties:
    @given(kinds,
           st.lists(st.tuples(nodes16, nodes16), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_every_packet_delivered_and_conserved(self, kind, pairs):
        """Whatever the workload, all flits are delivered exactly once
        and conservation holds at every cycle."""
        net = Network(small_config(kind))
        packets = []
        for src, dst in pairs:
            if src != dst:
                packets.append(net.create_packet(src, dst, net.cycle))
        for _ in range(1200):
            net.step()
            if all(p.eject_cycle is not None for p in packets):
                break
        net.audit()
        assert all(p.eject_cycle is not None for p in packets)
        assert net.packets_delivered == len(packets)
        assert net.flits_ejected == len(packets) * 3

    @given(kinds, st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=25, deadline=None)
    def test_latency_at_least_zero_load_bound(self, kind, src, dst):
        """No packet beats the pipeline: latency >= hops * (stages+1) +
        serialization."""
        if src == dst:
            return
        net = Network(small_config(kind))
        packet = net.create_packet(src, dst, 0)
        for _ in range(300):
            net.step()
            if packet.eject_cycle is not None:
                break
        assert packet.eject_cycle is not None
        stages = 2 if kind == "wormhole" else 3
        hops = net.topo.manhattan_distance(src, dst)
        bound = hops * (stages + 1) + stages + (3 - 1)
        assert packet.latency >= bound

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_energy_equals_sum_of_parts(self, data):
        """Network energy == sum over nodes == sum over components."""
        from repro.core.events import EnergyAccountant
        from repro.core.power_binding import PowerBinding
        kind = data.draw(kinds)
        cfg = small_config(kind)
        acc = EnergyAccountant(cfg.num_nodes)
        net = Network(cfg, PowerBinding(cfg, acc))
        n = data.draw(st.integers(1, 8))
        for i in range(n):
            src = data.draw(nodes16)
            dst = data.draw(nodes16)
            if src != dst:
                net.create_packet(src, dst, 0)
        for _ in range(400):
            net.step()
        total = acc.total_energy()
        by_node = sum(acc.node_total(i) for i in range(16))
        by_component = sum(acc.breakdown().values())
        assert abs(total - by_node) <= 1e-18 + 1e-9 * total
        assert abs(total - by_component) <= 1e-18 + 1e-9 * total
