"""Fault-injection subsystem tests.

Covers the description side (specs, seeded schedules, the CLI grammar),
the application side (kills, flips, freezes, stuck VCs flowing through
the engine hook), both fault policies, the ``on_stall`` status plumbing,
and the telemetry counters faulted runs feed.
"""

import pytest

from repro.core.config import RunProtocol
from repro.core.orion import Orion
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSpec,
    build_schedule,
    parse_fault_specs,
)
from repro.sim.engine import DeadlockError, Simulation
from repro.sim.routing import EAST, NORTH
from repro.sim.topology import topology_for
from repro.sim.traffic import UniformRandomTraffic

from tests.conftest import small_config

#: on_stall="finish" so degraded runs report status instead of raising.
RESILIENT = RunProtocol(warmup_cycles=100, sample_packets=60,
                        on_stall="finish", livelock_cycles=5_000)


def run_faulted(config, spec, protocol=RESILIENT, rate=0.05, seed=1):
    return Orion(config).run_uniform(
        rate, protocol.with_(seed=seed, faults=spec))


# --- specs and events --------------------------------------------------------

class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meltdown", 0, 0)

    def test_negative_cycle_and_node_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent("router_freeze", -1, 0)
        with pytest.raises(ValueError, match="node"):
            FaultEvent("router_freeze", 0, -2)

    def test_link_events_need_a_port(self):
        with pytest.raises(ValueError, match="output port"):
            FaultEvent("link_kill", 0, 0)

    def test_vc_stuck_needs_a_vc(self):
        with pytest.raises(ValueError, match="VC index"):
            FaultEvent("vc_stuck", 0, 0, port=EAST)

    def test_describe_names_the_hardware(self):
        text = FaultEvent("vc_stuck", 80, 2, EAST, 1).describe()
        assert "vc_stuck@80" in text and "node=2" in text
        assert "port=2" in text and "vc=1" in text


class TestFaultSpec:
    def test_policy_validated(self):
        with pytest.raises(ValueError, match="unknown fault policy"):
            FaultSpec(policy="pray")

    @pytest.mark.parametrize("field", ["link_kills", "link_flips",
                                       "router_freezes", "stuck_vcs"])
    def test_negative_counts_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            FaultSpec(**{field: -1})

    def test_empty_onset_window_rejected(self):
        with pytest.raises(ValueError, match="onset"):
            FaultSpec(onset_start=100, onset_end=100)

    def test_events_normalised_to_tuple(self):
        spec = FaultSpec(events=[FaultEvent("router_freeze", 5, 0)])
        assert isinstance(spec.events, tuple)

    def test_has_faults(self):
        assert not FaultSpec().has_faults
        assert FaultSpec(link_kills=1).has_faults
        assert FaultSpec(
            events=(FaultEvent("router_freeze", 5, 0),)).has_faults

    def test_describe_summarises(self):
        spec = FaultSpec(seed=7, link_kills=2, policy="drop")
        assert "2 kill" in spec.describe()
        assert "seed=7" in spec.describe()


# --- schedule expansion ------------------------------------------------------

class TestBuildSchedule:
    def test_same_seed_same_schedule(self):
        config = small_config("vc")
        spec = FaultSpec(seed=5, link_kills=2, link_flips=1,
                         router_freezes=1, stuck_vcs=1)
        first = build_schedule(spec, config)
        second = build_schedule(spec, config)
        assert first.events == second.events

    def test_different_seeds_differ(self):
        config = small_config("vc")
        spec = FaultSpec(seed=5, link_kills=2, link_flips=1)
        assert build_schedule(spec, config).events != \
            build_schedule(spec.with_(seed=6), config).events

    def test_events_sorted_by_cycle(self):
        config = small_config("vc")
        spec = FaultSpec(seed=3, link_kills=3, router_freezes=2)
        cycles = [e.cycle for e in build_schedule(spec, config).events]
        assert cycles == sorted(cycles)

    def test_counts_expand_to_expected_kinds(self):
        config = small_config("vc")
        spec = FaultSpec(seed=1, link_kills=2, link_flips=1,
                         router_freezes=1, stuck_vcs=1)
        events = build_schedule(spec, config).events
        by_kind = {kind: sum(e.kind == kind for e in events)
                   for kind in FAULT_KINDS}
        assert by_kind == {"link_kill": 3, "link_restore": 1,
                           "vc_stuck": 1, "router_freeze": 1,
                           "router_thaw": 1}

    def test_transients_pair_with_their_duration(self):
        config = small_config("wormhole")
        spec = FaultSpec(seed=2, link_flips=1, flip_duration=123)
        events = build_schedule(spec, config).events
        kill = next(e for e in events if e.kind == "link_kill")
        restore = next(e for e in events if e.kind == "link_restore")
        assert (restore.node, restore.port) == (kill.node, kill.port)
        assert restore.cycle == kill.cycle + 123

    def test_more_kills_than_links_rejected(self):
        with pytest.raises(ValueError, match="directed links"):
            build_schedule(FaultSpec(link_kills=1000),
                           small_config("wormhole"))

    def test_stuck_vc_needs_vc_router(self):
        with pytest.raises(ValueError, match="VC router"):
            build_schedule(FaultSpec(stuck_vcs=1), small_config("wormhole"))

    def test_explicit_event_on_missing_node_rejected(self):
        spec = FaultSpec(events=(FaultEvent("router_freeze", 10, 99),))
        with pytest.raises(ValueError, match="node outside"):
            build_schedule(spec, small_config("wormhole"))

    def test_explicit_vc_out_of_range_rejected(self):
        spec = FaultSpec(events=(FaultEvent("vc_stuck", 10, 0, EAST, 7),))
        with pytest.raises(ValueError, match="VC outside"):
            build_schedule(spec, small_config("vc"))

    def test_schedule_describe_lists_events(self):
        config = small_config("wormhole")
        schedule = build_schedule(FaultSpec(seed=1, link_kills=1), config)
        assert "1 events" in schedule.describe()
        assert "link_kill@" in schedule.describe()


# --- CLI grammar -------------------------------------------------------------

class TestParseFaultSpecs:
    def test_link_kill_with_port_alias(self):
        spec = parse_fault_specs(["link_kill:node=5,port=east,at=1200"])
        assert spec.events == (FaultEvent("link_kill", 1200, 5, EAST),)

    def test_link_flip_expands_to_kill_and_restore(self):
        spec = parse_fault_specs(["link_flip:node=5,port=2,at=1000,for=300"])
        assert spec.events == (
            FaultEvent("link_kill", 1000, 5, 2),
            FaultEvent("link_restore", 1300, 5, 2),
        )

    def test_router_freeze_with_and_without_thaw(self):
        transient = parse_fault_specs(["router_freeze:node=3,at=500,for=800"])
        assert transient.events == (
            FaultEvent("router_freeze", 500, 3),
            FaultEvent("router_thaw", 1300, 3),
        )
        permanent = parse_fault_specs(["router_freeze:node=3,at=500"])
        assert permanent.events == (FaultEvent("router_freeze", 500, 3),)

    def test_vc_stuck(self):
        spec = parse_fault_specs(["vc_stuck:node=2,port=north,vc=1,at=800"])
        assert spec.events == (FaultEvent("vc_stuck", 800, 2, NORTH, 1),)

    def test_random_counts_and_window(self):
        spec = parse_fault_specs(
            ["random:kills=2,flips=1,freezes=1,stuck=1,"
             "seed=9,start=100,end=900"])
        assert (spec.link_kills, spec.link_flips, spec.router_freezes,
                spec.stuck_vcs) == (2, 1, 1, 1)
        assert (spec.seed, spec.onset_start, spec.onset_end) == (9, 100, 900)

    def test_seed_and_policy_defaults_flow_through(self):
        spec = parse_fault_specs(["random:kills=1"], seed=42, policy="drop")
        assert spec.seed == 42 and spec.policy == "drop"

    def test_multiple_specs_merge(self):
        spec = parse_fault_specs(["link_kill:node=1,port=0,at=100",
                                  "random:kills=1"])
        assert len(spec.events) == 1 and spec.link_kills == 1

    @pytest.mark.parametrize("text,match", [
        ("link_kill", "expected kind"),
        ("teleport:node=1,at=5", "unknown fault kind"),
        ("link_kill:node=1,at=5", "missing port="),
        ("link_kill:node=1,port=up,at=5", "bad port"),
        ("link_kill:node=x,port=0,at=5", "must be an integer"),
        ("link_kill:node=1,port=0,at=5,color=red", "unknown fields"),
        ("link_kill:node=1,port=0", "missing at="),
        ("random:kills", "expected name=value"),
    ])
    def test_bad_specs_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_fault_specs([text])


# --- faults through the engine ----------------------------------------------

class TestFaultedRuns:
    def test_empty_spec_is_bit_identical_to_no_faults(self):
        config = small_config("wormhole")
        clean = Orion(config).run_uniform(0.05, RESILIENT)
        gated = run_faulted(config, FaultSpec())
        assert clean.latency.latencies == gated.latency.latencies
        assert clean.total_cycles == gated.total_cycles
        assert clean.total_energy_j == gated.total_energy_j

    def test_misroute_detours_around_killed_link(self):
        # A y-phase (NORTH) kill always has an EAST/WEST detour whose
        # DOR continuation does not bounce back; x-phase kills may not.
        spec = FaultSpec(events=(
            FaultEvent("link_kill", 120, 5, NORTH),))
        result = run_faulted(small_config("wormhole"), spec)
        assert result.status == "ok"
        assert result.packets_misrouted > 0
        assert result.packets_dropped == 0
        assert result.sample_packets == 60
        assert result.avg_latency > 0

    def test_drop_policy_discards_and_counts(self):
        spec = FaultSpec(policy="drop", events=(
            FaultEvent("link_kill", 120, 5, EAST),))
        result = run_faulted(small_config("wormhole"), spec)
        assert result.status == "ok"
        assert result.packets_misrouted == 0
        assert result.packets_dropped > 0
        assert result.flits_dropped >= result.packets_dropped
        # Dropped sample packets count toward completion, not latency.
        assert result.sample_packets == 60
        assert result.sample_dropped > 0
        assert len(result.latency.latencies) == 60 - result.sample_dropped

    def test_link_flip_recovers(self):
        spec = FaultSpec(events=(
            FaultEvent("link_kill", 150, 5, EAST),
            FaultEvent("link_restore", 400, 5, EAST),))
        result = run_faulted(small_config("wormhole"), spec)
        assert result.status == "ok"

    def test_transient_freeze_recovers(self):
        spec = FaultSpec(events=(
            FaultEvent("router_freeze", 150, 5),
            FaultEvent("router_thaw", 400, 5),))
        result = run_faulted(small_config("vc"), spec)
        assert result.status == "ok"
        assert result.sample_packets == 60

    def test_permanent_freeze_stalls_with_finish(self):
        spec = FaultSpec(events=(FaultEvent("router_freeze", 150, 5),))
        result = run_faulted(small_config("wormhole"),
                             spec, RESILIENT.with_(livelock_cycles=800))
        assert result.status == "stalled"
        assert result.total_cycles > 150

    def test_permanent_freeze_raises_by_default(self):
        spec = FaultSpec(events=(FaultEvent("router_freeze", 150, 5),))
        protocol = RunProtocol(warmup_cycles=100, sample_packets=60,
                               livelock_cycles=800, faults=spec)
        with pytest.raises(DeadlockError):
            Orion(small_config("wormhole")).run_uniform(0.05, protocol)

    def test_max_cycles_status_with_finish(self):
        protocol = RESILIENT.with_(max_cycles=300, sample_packets=5000)
        result = Orion(small_config("wormhole")).run_uniform(0.05, protocol)
        assert result.status == "max_cycles"
        assert result.total_cycles <= 301

    def test_stuck_vc_degrades_but_delivers(self):
        spec = FaultSpec(events=(
            FaultEvent("vc_stuck", 120, 5, EAST, 0),))
        result = run_faulted(small_config("vc"), spec)
        assert result.status == "ok"
        assert result.sample_packets == 60

    def test_random_cocktail_with_audits(self):
        spec = FaultSpec(seed=4, link_kills=2, link_flips=1,
                         onset_start=110, onset_end=400)
        protocol = RESILIENT.with_(audit_every=25)
        result = run_faulted(small_config("wormhole"), spec, protocol)
        # The flit-conservation audit must hold on a degraded fabric
        # whatever the outcome; completion is policy-dependent.
        assert result.status in ("ok", "stalled", "max_cycles")

    def test_faulted_links_tracked_on_network(self):
        spec = FaultSpec(events=(FaultEvent("link_kill", 120, 5, EAST),))
        config = small_config("wormhole")
        topo = topology_for(config)
        sim = Simulation(config, UniformRandomTraffic(topo, 0.05, seed=1),
                         RESILIENT.with_(faults=spec))
        sim.run()
        assert (5, EAST) in sim.network.faulted_links


# --- telemetry integration ---------------------------------------------------

class TestFaultTelemetry:
    def test_window_counters_sum_to_result_counters(self):
        config = small_config("wormhole")
        spec = FaultSpec(policy="drop", events=(
            FaultEvent("link_kill", 140, 5, EAST),))
        result = run_faulted(config, spec,
                             RESILIENT.with_(telemetry_window=64))
        record = result.telemetry
        assert sum(record.dropped_totals()) == result.flits_dropped
        assert sum(record.misrouted_totals()) == result.packets_misrouted
        assert result.flits_dropped > 0

    def test_misroute_counters_in_windows(self):
        config = small_config("wormhole")
        spec = FaultSpec(events=(FaultEvent("link_kill", 140, 5, NORTH),))
        result = run_faulted(config, spec,
                             RESILIENT.with_(telemetry_window=64))
        record = result.telemetry
        assert sum(record.misrouted_totals()) == result.packets_misrouted
        assert result.packets_misrouted > 0
        assert sum(record.dropped_totals()) == 0
