"""The periodic ``audit()`` hook and the O(1) maintained counters.

``RunProtocol.audit_every`` wires :meth:`Network.audit` into the engine
loop every N cycles.  It is off by default (zero); when enabled it must
pass silently on a healthy network and raise on a genuine bookkeeping
violation — these tests corrupt a live network mid-run and check the
next audit catches it.
"""

import pytest

from repro.core.config import RunProtocol
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.topology import topology_for
from repro.sim.traffic import UniformRandomTraffic
from tests.conftest import small_config

KERNELS = ["dense", "sparse"]


def _simulation(kernel, audit_every, kind="vc"):
    config = small_config(kind)
    traffic = UniformRandomTraffic(topology_for(config), 0.05, seed=3)
    protocol = RunProtocol(warmup_cycles=40, sample_packets=25,
                           kernel=kernel, audit_every=audit_every)
    return Simulation(config, traffic, protocol)


def test_audit_off_by_default():
    assert RunProtocol().audit_every == 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_audit_clean_run(kernel):
    result = _simulation(kernel, audit_every=5).run()
    assert result.packets_delivered > 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_audit_catches_occupancy_corruption(kernel):
    """Desynchronising a router's O(1) occupancy counter from its
    buffers must be caught by the next periodic audit."""
    sim = _simulation(kernel, audit_every=1)
    network = sim.network
    original_step = network.step

    def corrupting_step():
        moved = original_step()
        if network.cycle == 30:
            network.routers[0]._buffered += 1
        return moved

    network.step = corrupting_step
    with pytest.raises(RuntimeError, match="occupancy counter"):
        sim.run()


@pytest.mark.parametrize("kernel", KERNELS)
def test_audit_catches_awaiting_counter_corruption(kernel):
    sim = _simulation(kernel, audit_every=1)
    network = sim.network
    original_step = network.step

    def corrupting_step():
        moved = original_step()
        if network.cycle == 30:
            network._awaiting += 1
        return moved

    network.step = corrupting_step
    with pytest.raises(RuntimeError, match="awaiting-injection"):
        sim.run()


def test_audit_catches_active_set_corruption():
    """A sparse-kernel router holding buffered flits must stay enrolled
    in the active set; audit flags one evicted behind the kernel's back."""
    sim = _simulation("sparse", audit_every=1)
    network = sim.network
    original_step = network.step

    def corrupting_step():
        moved = original_step()
        if network.cycle >= 30:
            for node in sorted(network._active):
                if network.routers[node]._buffered:
                    network._active.discard(node)
                    break
        return moved

    network.step = corrupting_step
    with pytest.raises(RuntimeError, match="active set"):
        sim.run()


def test_audit_not_called_when_disabled():
    sim = _simulation("sparse", audit_every=0)
    calls = []
    network = sim.network
    network.audit = lambda: calls.append(network.cycle)
    sim.run()
    assert calls == []


@pytest.mark.parametrize("kernel", KERNELS)
def test_awaiting_counter_tracks_queues(kernel):
    """``flits_awaiting_injection`` is a maintained O(1) counter; it must
    equal the actual source-queue population at every cycle."""
    config = small_config("wormhole")
    network = Network(config, kernel=kernel)
    traffic = UniformRandomTraffic(topology_for(config), 0.2, seed=9)
    for cycle in range(120):
        for src, dst in traffic.packets_at(cycle):
            network.create_packet(src, dst, cycle)
        network.step()
        assert network.flits_awaiting_injection == \
            sum(len(q) for q in network.source_queues)
    network.audit()
