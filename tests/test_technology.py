"""Unit tests for the technology substrate (Cg/Cd/Cw primitives)."""

import math

import pytest

from repro.tech import Technology
from repro.tech import constants as k


def tech(feature=0.1, vdd=1.2, f=2e9):
    return Technology(feature, vdd=vdd, frequency_hz=f)


class TestConstruction:
    def test_explicit_operating_point(self):
        t = tech()
        assert t.feature_size_um == 0.1
        assert t.vdd == 1.2
        assert t.frequency_hz == 2e9

    def test_default_vdd_from_feature_size(self):
        t = Technology(0.1)
        assert t.vdd == k.DEFAULT_VDD_BY_FEATURE[0.10]

    def test_default_frequency_from_feature_size(self):
        t = Technology(0.18)
        assert t.frequency_hz == k.DEFAULT_FREQ_BY_FEATURE[0.18]

    def test_defaults_use_nearest_known_node(self):
        t = Technology(0.09)  # nearest table entry is 0.10
        assert t.vdd == k.DEFAULT_VDD_BY_FEATURE[0.10]

    def test_rejects_nonpositive_feature_size(self):
        with pytest.raises(ValueError):
            Technology(0.0)
        with pytest.raises(ValueError):
            Technology(-0.1)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            Technology(0.1, vdd=-1.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Technology(0.1, vdd=1.2, frequency_hz=-5.0)

    def test_scale_relative_to_base(self):
        assert tech(0.1).scale == pytest.approx(0.1 / 0.8)
        assert Technology(0.8).scale == pytest.approx(1.0)


class TestGateCap:
    def test_matches_formula(self):
        t = tech()
        w = 2.0
        expected = k.CGATE_PER_AREA * w * t.leff_um + k.CPOLYWIRE_PER_UM * w
        assert t.gate_cap(w) == pytest.approx(expected)

    def test_pass_gate_uses_lower_per_area(self):
        t = tech()
        assert t.gate_cap(2.0, pass_gate=True) < t.gate_cap(2.0)

    def test_linear_in_width(self):
        t = tech()
        assert t.gate_cap(4.0) == pytest.approx(2.0 * t.gate_cap(2.0))

    def test_scales_down_with_feature_size(self):
        # Same drawn width, smaller Leff -> less gate cap.
        assert tech(0.07).gate_cap(2.0) < tech(0.18).gate_cap(2.0)


class TestDiffCap:
    def test_matches_formula(self):
        t = tech()
        w = 3.0
        dl = k.DIFF_LENGTH_FACTOR * t.feature_size_um
        expected = (k.CNDIFF_AREA * w * dl
                    + k.CNDIFF_SIDE * (w + 2 * dl)
                    + k.CNDIFF_OVERLAP * w)
        assert t.diff_cap(w) == pytest.approx(expected)

    def test_pmos_has_higher_area_cap(self):
        t = tech()
        assert t.diff_cap(3.0, pmos=True) > t.diff_cap(3.0)

    def test_monotone_in_width(self):
        t = tech()
        assert t.diff_cap(6.0) > t.diff_cap(3.0)

    def test_total_cap_is_gate_plus_diff(self):
        t = tech()
        assert t.total_cap(2.5) == pytest.approx(
            t.gate_cap(2.5) + t.diff_cap(2.5))


class TestWireCap:
    def test_linear_in_length(self):
        t = tech()
        assert t.wire_cap(200.0) == pytest.approx(2 * t.wire_cap(100.0))

    def test_bitline_layer_heavier_than_wordline(self):
        t = tech()
        assert t.wire_cap(100.0, layer="bit") > t.wire_cap(100.0, layer="word")

    def test_link_layer_reproduces_paper_value(self):
        # 1.08 pF per 3 mm at 0.1 um (section 4.2).
        t = tech(0.1)
        assert t.wire_cap(3000.0, layer="link") == pytest.approx(1.08e-12)

    def test_per_um_wire_cap_is_technology_independent(self):
        assert tech(0.07).wire_cap(100.0) == pytest.approx(
            tech(0.25).wire_cap(100.0))

    def test_zero_length_is_zero(self):
        assert tech().wire_cap(0.0) == 0.0

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            tech().wire_cap(-1.0)

    def test_rejects_unknown_layer(self):
        with pytest.raises(ValueError):
            tech().wire_cap(10.0, layer="copper")


class TestComposites:
    def test_inverter_cap_sums_both_devices(self):
        t = tech()
        total = t.inverter_cap(2.0, 4.0)
        assert total == pytest.approx(
            t.total_cap(2.0) + t.total_cap(4.0, pmos=True))

    def test_inverter_gate_plus_drain_equals_total(self):
        t = tech()
        assert t.inverter_gate_cap(2.0, 4.0) + t.inverter_drain_cap(2.0, 4.0) \
            == pytest.approx(t.inverter_cap(2.0, 4.0))

    def test_scaled_width_lookup(self):
        t = tech(0.1)
        base = k.BASE_WIDTHS["memcell_access"]
        assert t.scaled_width("memcell_access") == pytest.approx(
            base * 0.1 / 0.8)

    def test_scaled_width_unknown_name(self):
        with pytest.raises(KeyError):
            tech().scaled_width("flux_capacitor")

    def test_cell_geometry_scales(self):
        assert tech(0.1).cell_width_um == pytest.approx(
            k.BASE_CELL_WIDTH * 0.125)
        assert tech(0.1).wire_spacing_um == pytest.approx(
            k.BASE_WIRE_SPACING * 0.125)


class TestSwitchEnergy:
    def test_half_c_v_squared(self):
        t = tech(vdd=1.2)
        assert t.switch_energy(1e-12) == pytest.approx(0.5 * 1e-12 * 1.44)

    def test_quadratic_in_vdd(self):
        lo = Technology(0.1, vdd=1.0, frequency_hz=1e9)
        hi = Technology(0.1, vdd=2.0, frequency_hz=1e9)
        assert hi.switch_energy(1e-12) == pytest.approx(
            4.0 * lo.switch_energy(1e-12))
