"""Tests for the full plug-and-play router assembly and its plumbing."""

from collections import Counter

import pytest

from repro.core import events as ev
from repro.lse import (
    ArbiterModule,
    DemuxModule,
    MergeModule,
    Message,
    SinkModule,
    SourceModule,
    System,
    build_full_router,
)


class TestPlumbingModules:
    def test_demux_routes_by_out_port(self):
        system = System()
        src = system.add(SourceModule("s", [
            (0, Message(payload=1, out_port=0)),
            (0, Message(payload=2, out_port=2)),
        ]))
        demux = system.add(DemuxModule("d", outputs=3))
        sinks = [system.add(SinkModule(f"k{j}")) for j in range(3)]
        system.connect(src.out, demux.inp)
        for j in range(3):
            system.connect(demux.outs[j], sinks[j].inp)
        system.build()
        system.run(2)
        assert [m.payload for _, m in sinks[0].received] == [1]
        assert sinks[1].received == []
        assert [m.payload for _, m in sinks[2].received] == [2]

    def test_demux_rejects_unknown_output(self):
        system = System()
        src = system.add(SourceModule("s", [(0, Message(out_port=9))]))
        demux = system.add(DemuxModule("d", outputs=2))
        sink = system.add(SinkModule("k"))
        system.connect(src.out, demux.inp)
        system.connect(demux.outs[0], sink.inp)
        system.build()
        with pytest.raises(RuntimeError, match="unknown output"):
            system.run(1)

    def test_merge_funnels_all_inputs(self):
        system = System()
        srcs = [system.add(SourceModule(
            f"s{i}", [(0, Message(payload=i))])) for i in range(3)]
        merge = system.add(MergeModule("m", inputs=3))
        sink = system.add(SinkModule("k"))
        for i in range(3):
            system.connect(srcs[i].out, merge.ins[i])
        system.connect(merge.out, sink.inp)
        system.build()
        system.run(2)
        assert sorted(m.payload for _, m in sink.received) == [0, 1, 2]

    def test_plumbing_validation(self):
        with pytest.raises(ValueError):
            DemuxModule("d", outputs=0)
        with pytest.raises(ValueError):
            MergeModule("m", inputs=0)


class TestArbiterPerRequesterPorts:
    def test_request_port_index_sets_requester_id(self):
        system = System()
        src = system.add(SourceModule("s", [(0, Message())]))
        arb = system.add(ArbiterModule("a", requesters=3))
        grant_sink = system.add(SinkModule("g"))
        cfg_sink = system.add(SinkModule("c"))
        system.connect(src.out, arb.reqs[2])
        system.connect(arb.grants[2], grant_sink.inp)
        system.connect(arb.config, cfg_sink.inp)
        system.build()
        system.run(2)
        assert len(grant_sink.received) == 1
        assert grant_sink.received[0][1].input_id == 2

    def test_one_grant_per_cycle_under_contention(self):
        system = System()
        srcs = [system.add(SourceModule(f"s{i}", [(0, Message())]))
                for i in range(2)]
        arb = system.add(ArbiterModule("a", requesters=2))
        grant_sinks = [system.add(SinkModule(f"g{i}")) for i in range(2)]
        cfg_sink = system.add(SinkModule("c"))
        for i in range(2):
            system.connect(srcs[i].out, arb.reqs[i])
            system.connect(arb.grants[i], grant_sinks[i].inp)
        system.connect(arb.config, cfg_sink.inp)
        system.build()
        system.run(3)
        arrivals = sorted(cycle for sink in grant_sinks
                          for cycle, _ in sink.received)
        assert arrivals == [0, 1]  # serialized, one per cycle


class TestFullRouter:
    def schedules(self, ports=5, per_port=3):
        return [
            [(t, Message(payload=i * 100 + t,
                         out_port=(i + t + 1) % ports))
             for t in range(per_port)]
            for i in range(ports)
        ]

    def build(self, **kwargs):
        system = build_full_router(self.schedules(), **kwargs)
        system.bus.record = True
        return system

    def test_all_messages_delivered(self):
        system = self.build()
        system.run(40)
        total = sum(len(system.module(f"Sink{o}").received)
                    for o in range(5))
        assert total == 15

    def test_messages_reach_their_addressed_output(self):
        system = self.build()
        system.run(40)
        for o in range(5):
            for _, message in system.module(f"Sink{o}").received:
                assert message.out_port == o

    def test_event_counts_are_one_per_message_per_stage(self):
        system = self.build()
        system.run(40)
        counts = Counter(name for _, name, _ in system.bus.log)
        assert counts[ev.BUFFER_WRITE] == 15
        assert counts[ev.BUFFER_READ] == 15
        assert counts[ev.XBAR_TRAVERSAL] == 15
        assert counts[ev.LINK_TRAVERSAL] == 15
        assert counts[ev.ARBITRATION] >= 15

    def test_contention_serializes_per_output(self):
        """All five inputs targeting one output: grants one per cycle."""
        schedules = [[(0, Message(payload=i, out_port=2))]
                     for i in range(5)]
        system = build_full_router(schedules)
        system.run(20)
        arrivals = [cycle for cycle, _ in
                    system.module("Sink2").received]
        assert len(arrivals) == 5
        assert len(set(arrivals)) == 5  # strictly serialized

    def test_needs_two_ports(self):
        with pytest.raises(ValueError):
            build_full_router([[]])
